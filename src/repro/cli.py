"""Command-line interface: ``python -m repro <command>``.

Five commands cover the downstream workflow end to end:

* ``generate`` — synthesize a Table-I-shaped corpus to a JSON collection;
* ``search`` — one top-k semantic overlap search over a JSON/CSV
  collection (hashing embeddings + exact cosine index by default, q-gram
  Jaccard with ``--jaccard``);
* ``stats`` — shape statistics of a collection (the Table I columns);
* ``serve`` — long-lived JSON-lines query server over stdin/stdout,
  backed by the :mod:`repro.service` scheduler/cache/engine-pool stack;
* ``batch`` — answer a file of JSON-lines queries to a results file
  through the same serving stack (maximal batching and dedup).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.config import FilterConfig
from repro.core.koios import KoiosSearchEngine
from repro.datasets.collection import SetCollection
from repro.datasets.io import (
    load_collection_csv,
    load_collection_json,
    save_collection_json,
)
from repro.datasets.profiles import profile_by_name
from repro.datasets.synthetic import generate_dataset
from repro.embedding.hashing import HashingEmbeddingProvider
from repro.embedding.provider import VectorStore
from repro.index.lsh import PrefixJaccardIndex
from repro.index.vector_index import ExactCosineIndex
from repro.service import (
    EnginePool,
    QueryScheduler,
    ResultCache,
    run_batch,
    serve_lines,
)
from repro.sim.cosine import CosineSimilarity
from repro.sim.jaccard import QGramJaccardSimilarity


def _load_collection(path: str) -> SetCollection:
    if Path(path).suffix.lower() == ".csv":
        return load_collection_csv(path)
    return load_collection_json(path)


def _build_substrate(collection: SetCollection, args: argparse.Namespace):
    """The (token_index, sim) pair selected by ``--jaccard``/``--dim``."""
    if args.jaccard:
        sim = QGramJaccardSimilarity(q=3)
        index = PrefixJaccardIndex(
            collection.vocabulary, alpha=args.alpha, similarity=sim
        )
    else:
        provider = HashingEmbeddingProvider(dim=args.dim)
        store = VectorStore(provider, collection.vocabulary)
        index = ExactCosineIndex(store, provider)
        sim = CosineSimilarity(provider)
    return index, sim


def _build_scheduler(args: argparse.Namespace) -> QueryScheduler:
    """The serving stack shared by ``repro serve`` and ``repro batch``."""
    collection = _load_collection(args.collection)
    index, sim = _build_substrate(collection, args)
    pool = EnginePool(
        collection,
        index,
        sim,
        alpha=args.alpha,
        shards=args.shards,
        parallel_shards=args.parallel_shards,
        config=FilterConfig.koios(iub_mode=args.iub_mode),
    )
    cache = (
        ResultCache(capacity=args.cache_size) if args.cache_size > 0 else None
    )
    return QueryScheduler(
        pool,
        cache=cache,
        max_batch=args.max_batch,
        workers=args.workers,
    )


def cmd_generate(args: argparse.Namespace) -> int:
    """``repro generate``: synthesize a profile-shaped corpus to JSON."""
    profile = profile_by_name(args.profile, scale=args.scale)
    dataset = generate_dataset(profile, seed=args.seed)
    save_collection_json(dataset.collection, args.output)
    stats = dataset.collection.stats()
    print(
        f"wrote {stats.num_sets} sets "
        f"(max {stats.max_size}, avg {stats.avg_size:.1f}, "
        f"{stats.num_unique_elements} unique tokens) to {args.output}"
    )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """``repro stats``: print Table-I shape statistics as JSON."""
    stats = _load_collection(args.collection).stats()
    print(json.dumps(
        {
            "num_sets": stats.num_sets,
            "max_size": stats.max_size,
            "avg_size": round(stats.avg_size, 2),
            "num_unique_elements": stats.num_unique_elements,
        },
        indent=1,
    ))
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    """``repro search``: top-k semantic overlap search over a collection."""
    collection = _load_collection(args.collection)
    query = frozenset(args.token)
    index, sim = _build_substrate(collection, args)
    engine = KoiosSearchEngine(
        collection,
        index,
        sim,
        alpha=args.alpha,
        num_partitions=args.partitions,
        config=FilterConfig.koios(iub_mode=args.iub_mode),
    )
    result = engine.search(query, k=args.k)
    for entry in result.entries:
        print(f"{entry.score:10.4f}  {entry.name}")
    if args.verbose:
        stats = result.stats
        print(
            f"# candidates={stats.candidates} "
            f"refinement_pruned={stats.refinement_pruned} "
            f"no_em={stats.no_em} "
            f"em_early_terminated={stats.em_early_terminated} "
            f"em_full={stats.em_full} "
            f"time={stats.response_seconds:.3f}s",
            file=sys.stderr,
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: JSON-lines request loop on stdin/stdout."""
    with _build_scheduler(args) as scheduler:
        served = serve_lines(
            scheduler, sys.stdin, sys.stdout, linger=args.linger
        )
        snapshot = dict(scheduler.metrics.snapshot())
    print(
        f"# served {served} requests "
        f"(qps={snapshot['qps']}, "
        f"cache_hit_rate={snapshot['cache_hit_rate']}, "
        f"p95={snapshot['latency_p95']}s)",
        file=sys.stderr,
    )
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    """``repro batch``: answer a query file through the serving stack."""
    with open(args.queries, encoding="utf-8") as handle:
        lines = handle.readlines()
    with _build_scheduler(args) as scheduler:
        responses = run_batch(scheduler, lines)
        snapshot = dict(scheduler.metrics.snapshot())
    payload = "".join(response.to_json() + "\n" for response in responses)
    if args.output is None or args.output == "-":
        sys.stdout.write(payload)
    else:
        Path(args.output).write_text(payload, encoding="utf-8")
    errors = sum(1 for response in responses if response.error is not None)
    print(
        f"# answered {len(responses)} requests ({errors} errors, "
        f"cache_hit_rate={snapshot['cache_hit_rate']}, "
        f"mean_batch_occupancy={snapshot['mean_batch_occupancy']})",
        file=sys.stderr,
    )
    return 0 if errors == 0 else 1


def _add_substrate_arguments(parser: argparse.ArgumentParser) -> None:
    """Options shared by every command that builds a search stack."""
    parser.add_argument("--alpha", type=float, default=0.8)
    parser.add_argument(
        "--jaccard", action="store_true",
        help="q-gram Jaccard similarity instead of hashing embeddings",
    )
    parser.add_argument(
        "--dim", type=int, default=64,
        help="hashing-embedding dimensionality",
    )
    parser.add_argument(
        "--iub-mode", default="paper", choices=["paper", "safe"]
    )


def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    """Options shared by ``serve`` and ``batch``."""
    parser.add_argument("collection", help="JSON or long-CSV collection")
    _add_substrate_arguments(parser)
    parser.add_argument(
        "--shards", type=int, default=1,
        help="engine-pool shards over the collection",
    )
    parser.add_argument(
        "--parallel-shards", action="store_true",
        help="fan one query's shards out on a thread pool",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="scheduler worker threads",
    )
    parser.add_argument(
        "--cache-size", type=int, default=1024,
        help="result-cache capacity (0 disables caching)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=8,
        help="micro-batch occupancy that triggers dispatch",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Koios: top-k semantic overlap set search",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="synthesize a Table-I-shaped corpus"
    )
    generate.add_argument(
        "--profile", default="opendata",
        choices=["dblp", "opendata", "twitter", "wdc"],
    )
    generate.add_argument(
        "--scale", default="small", choices=["tiny", "small", "full"]
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True)
    generate.set_defaults(func=cmd_generate)

    stats = commands.add_parser(
        "stats", help="shape statistics of a collection"
    )
    stats.add_argument("collection")
    stats.set_defaults(func=cmd_stats)

    search = commands.add_parser(
        "search", help="top-k semantic overlap search"
    )
    search.add_argument("collection", help="JSON or long-CSV collection")
    search.add_argument(
        "token", nargs="+", help="query set elements"
    )
    search.add_argument("-k", type=int, default=10)
    _add_substrate_arguments(search)
    search.add_argument("--partitions", type=int, default=1)
    search.add_argument("--verbose", action="store_true")
    search.set_defaults(func=cmd_search)

    serve = commands.add_parser(
        "serve", help="JSON-lines query server on stdin/stdout"
    )
    _add_service_arguments(serve)
    serve.add_argument(
        "--linger", type=int, default=1,
        help="requests to accumulate before flushing a micro-batch",
    )
    serve.set_defaults(func=cmd_serve)

    batch = commands.add_parser(
        "batch", help="answer a JSON-lines query file via the service"
    )
    _add_service_arguments(batch)
    batch.add_argument("queries", help="JSON-lines request file")
    batch.add_argument(
        "--output", default="-",
        help="responses file ('-' = stdout)",
    )
    batch.set_defaults(func=cmd_batch)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
