"""Command-line interface: ``python -m repro <command>``.

Three commands cover the downstream workflow end to end:

* ``generate`` — synthesize a Table-I-shaped corpus to a JSON collection;
* ``search`` — top-k semantic overlap search over a JSON/CSV collection
  (hashing embeddings + exact cosine index by default, q-gram Jaccard
  with ``--jaccard``);
* ``stats`` — shape statistics of a collection (the Table I columns).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.config import FilterConfig
from repro.core.koios import KoiosSearchEngine
from repro.datasets.collection import SetCollection
from repro.datasets.io import (
    load_collection_csv,
    load_collection_json,
    save_collection_json,
)
from repro.datasets.profiles import profile_by_name
from repro.datasets.synthetic import generate_dataset
from repro.embedding.hashing import HashingEmbeddingProvider
from repro.embedding.provider import VectorStore
from repro.index.lsh import PrefixJaccardIndex
from repro.index.vector_index import ExactCosineIndex
from repro.sim.cosine import CosineSimilarity
from repro.sim.jaccard import QGramJaccardSimilarity


def _load_collection(path: str) -> SetCollection:
    if Path(path).suffix.lower() == ".csv":
        return load_collection_csv(path)
    return load_collection_json(path)


def cmd_generate(args: argparse.Namespace) -> int:
    """``repro generate``: synthesize a profile-shaped corpus to JSON."""
    profile = profile_by_name(args.profile, scale=args.scale)
    dataset = generate_dataset(profile, seed=args.seed)
    save_collection_json(dataset.collection, args.output)
    stats = dataset.collection.stats()
    print(
        f"wrote {stats.num_sets} sets "
        f"(max {stats.max_size}, avg {stats.avg_size:.1f}, "
        f"{stats.num_unique_elements} unique tokens) to {args.output}"
    )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """``repro stats``: print Table-I shape statistics as JSON."""
    stats = _load_collection(args.collection).stats()
    print(json.dumps(
        {
            "num_sets": stats.num_sets,
            "max_size": stats.max_size,
            "avg_size": round(stats.avg_size, 2),
            "num_unique_elements": stats.num_unique_elements,
        },
        indent=1,
    ))
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    """``repro search``: top-k semantic overlap search over a collection."""
    collection = _load_collection(args.collection)
    query = frozenset(args.token)
    if args.jaccard:
        sim = QGramJaccardSimilarity(q=3)
        index = PrefixJaccardIndex(
            collection.vocabulary, alpha=args.alpha, similarity=sim
        )
    else:
        provider = HashingEmbeddingProvider(dim=args.dim)
        store = VectorStore(provider, collection.vocabulary)
        index = ExactCosineIndex(store, provider)
        sim = CosineSimilarity(provider)
    engine = KoiosSearchEngine(
        collection,
        index,
        sim,
        alpha=args.alpha,
        num_partitions=args.partitions,
        config=FilterConfig.koios(iub_mode=args.iub_mode),
    )
    result = engine.search(query, k=args.k)
    for entry in result.entries:
        print(f"{entry.score:10.4f}  {entry.name}")
    if args.verbose:
        stats = result.stats
        print(
            f"# candidates={stats.candidates} "
            f"refinement_pruned={stats.refinement_pruned} "
            f"no_em={stats.no_em} "
            f"em_early_terminated={stats.em_early_terminated} "
            f"em_full={stats.em_full} "
            f"time={stats.response_seconds:.3f}s",
            file=sys.stderr,
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Koios: top-k semantic overlap set search",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="synthesize a Table-I-shaped corpus"
    )
    generate.add_argument(
        "--profile", default="opendata",
        choices=["dblp", "opendata", "twitter", "wdc"],
    )
    generate.add_argument(
        "--scale", default="small", choices=["tiny", "small", "full"]
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True)
    generate.set_defaults(func=cmd_generate)

    stats = commands.add_parser(
        "stats", help="shape statistics of a collection"
    )
    stats.add_argument("collection")
    stats.set_defaults(func=cmd_stats)

    search = commands.add_parser(
        "search", help="top-k semantic overlap search"
    )
    search.add_argument("collection", help="JSON or long-CSV collection")
    search.add_argument(
        "token", nargs="+", help="query set elements"
    )
    search.add_argument("-k", type=int, default=10)
    search.add_argument("--alpha", type=float, default=0.8)
    search.add_argument(
        "--jaccard", action="store_true",
        help="q-gram Jaccard similarity instead of hashing embeddings",
    )
    search.add_argument(
        "--dim", type=int, default=64,
        help="hashing-embedding dimensionality",
    )
    search.add_argument("--partitions", type=int, default=1)
    search.add_argument(
        "--iub-mode", default="paper", choices=["paper", "safe"]
    )
    search.add_argument("--verbose", action="store_true")
    search.set_defaults(func=cmd_search)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
