"""Command-line interface: ``python -m repro <command>``.

Commands cover the downstream workflow end to end:

* ``generate`` — synthesize a Table-I-shaped corpus to a JSON collection;
* ``search`` — one top-k semantic overlap search over a JSON/CSV
  collection or snapshot (hashing embeddings + exact cosine index by
  default, q-gram Jaccard with ``--jaccard``);
* ``stats`` — shape statistics of a collection (the Table I columns);
* ``index build|inspect|compact`` — snapshot lifecycle: persist a
  collection + substrate, read a manifest, fold a write-ahead log back
  into a fresh snapshot;
* ``serve`` — long-lived JSON-lines query server over stdin/stdout,
  backed by the :mod:`repro.service` scheduler/cache/engine-pool stack,
  with live insert/delete/replace (optionally WAL-durable);
* ``batch`` — answer a file of JSON-lines queries to a results file
  through the same serving stack (maximal batching and dedup);
* ``explain`` — answer a query file and print each request's EXPLAIN
  report: the pruning funnel as a table (merged and per partition),
  per-phase seconds, verification cost estimates, cache attribution;
* ``cluster serve|bench`` — the same JSON-lines protocol over the
  multi-process scatter-gather backend of :mod:`repro.cluster` (one
  worker process per partition of the set-id space), and its scaling
  benchmark against the threaded single-process baseline;
* ``gateway serve`` — the asyncio network front end of
  :mod:`repro.gateway`: multi-tenant named collections from a JSON
  config, per-tenant token-bucket quotas with ``retry_after_seconds``
  rejections, bounded admission queues with oldest-first load
  shedding, pluggable auth, TCP JSON-lines + minimal HTTP POST on one
  port (plus ``GET /metrics`` Prometheus exposition);
* ``trace tail|show|top`` — the trace inspector of :mod:`repro.obs`:
  reconstruct and pretty-print span trees from the JSON-lines sink
  the ``--trace`` flag of the serving commands writes.

``serve``, ``cluster serve``, and ``gateway serve`` accept ``--trace
PATH`` (plus ``--trace-sample`` and ``--trace-slow-ms``) to emit
request spans — gateway root, admission queue wait, scheduler,
engine phases, cluster scatter/worker — to a bounded, rotating sink.

``serve`` and ``cluster serve`` shut down gracefully on SIGINT/SIGTERM:
in-flight scheduler work drains, pending responses are emitted, the
write-ahead log is flushed and closed, and the process exits 0.

User errors exit with a distinct non-zero code per error family (see
``ERROR_EXIT_CODES``) instead of a traceback.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from pathlib import Path

from repro.core.config import FilterConfig
from repro.core.koios import KoiosSearchEngine
from repro.datasets.collection import SetCollection
from repro.datasets.io import load_collection_auto, save_collection_json
from repro.datasets.profiles import profile_by_name
from repro.datasets.synthetic import generate_dataset
from repro.errors import (
    ClusterError,
    EmptyQueryError,
    GatewayError,
    InvalidParameterError,
    ReproError,
    SnapshotError,
    VocabularyError,
    WalError,
)
from repro.service import (
    GracefulShutdown,
    QueryScheduler,
    ResultCache,
    run_batch,
    serve_lines,
)
from repro.service.bootstrap import (
    build_serving_stack,
    build_substrate,
    load_serving_stack,
    substrate_descriptor,
)
from repro.store.snapshot import (
    SNAPSHOT_SUFFIXES,
    inspect_snapshot,
    save_snapshot,
)
from repro.store.wal import WriteAheadLog, compact, pending_records

#: Exit code per user-error family, most specific first. Unexpected
#: exceptions still traceback — those are bugs, not usage errors.
ERROR_EXIT_CODES: list[tuple[type, int]] = [
    (InvalidParameterError, 2),
    (EmptyQueryError, 3),
    (VocabularyError, 4),
    (SnapshotError, 5),
    (WalError, 6),
    (ClusterError, 8),
    (GatewayError, 9),
    (ReproError, 7),
]

#: Exit code for OS-level input problems (missing/unreadable files).
EX_NOINPUT = 66


def package_version() -> str:
    """The installed distribution version, falling back to the in-tree
    constant when running from a source checkout."""
    try:
        from importlib import metadata

        return metadata.version("repro-koios")
    except Exception:
        import repro

        return repro.__version__


def _load_collection(path: str) -> SetCollection:
    """Shared format-sniffing loader (JSON / long CSV / snapshot)."""
    return load_collection_auto(path)


def _substrate_descriptor(args: argparse.Namespace) -> dict:
    """See :func:`repro.service.bootstrap.substrate_descriptor`."""
    return substrate_descriptor(
        jaccard=args.jaccard, dim=args.dim, alpha=args.alpha
    )


def _build_substrate(collection: SetCollection, args: argparse.Namespace):
    """See :func:`repro.service.bootstrap.build_substrate`."""
    return build_substrate(
        collection, jaccard=args.jaccard, dim=args.dim, alpha=args.alpha
    )


def _load_serving_stack(args: argparse.Namespace):
    """See :func:`repro.service.bootstrap.load_serving_stack`."""
    return load_serving_stack(
        args.collection,
        alpha=args.alpha,
        jaccard=args.jaccard,
        dim=args.dim,
    )


def _load_stack(args: argparse.Namespace):
    """``(collection, token_index, sim)`` — see :func:`_load_serving_stack`."""
    collection, index, sim, _, _ = _load_serving_stack(args)
    return collection, index, sim


def _configure_tracing(args: argparse.Namespace) -> None:
    """Enable span tracing when the serving command asked for it.

    Runs before any backend construction, so cluster worker specs
    capture the configuration and spawned processes append to the
    same sink.
    """
    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        return
    from repro import obs

    obs.configure(
        trace_path,
        sample_rate=args.trace_sample,
        slow_threshold_ms=args.trace_slow_ms,
    )


def _install_shutdown_handlers() -> None:
    """SIGINT/SIGTERM raise :class:`GracefulShutdown` in the main
    thread. The first signal starts the graceful drain; handlers then
    revert to the OS default so a second signal force-terminates a
    drain that is stuck (e.g. waiting out a hung worker's timeout)
    instead of being ignored."""

    def handler(signum, frame):
        signal.signal(signal.SIGINT, signal.SIG_DFL)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        raise GracefulShutdown()

    signal.signal(signal.SIGINT, handler)
    signal.signal(signal.SIGTERM, handler)


def _build_scheduler(args: argparse.Namespace) -> QueryScheduler:
    """The serving stack shared by ``repro serve`` and ``repro batch``."""
    stack = build_serving_stack(
        args.collection,
        alpha=args.alpha,
        jaccard=args.jaccard,
        dim=args.dim,
        iub_mode=args.iub_mode,
        engine=args.engine,
        shards=args.shards,
        parallel_shards=args.parallel_shards,
        workers=args.workers,
        max_batch=args.max_batch,
        cache_size=args.cache_size if args.cache_size > 0 else None,
        wal_path=getattr(args, "wal", None),
    )
    if stack.replayed:
        print(
            f"# replayed {stack.replayed} WAL records "
            f"(collection version {stack.collection.version})",
            file=sys.stderr,
        )
    return stack.scheduler


def cmd_generate(args: argparse.Namespace) -> int:
    """``repro generate``: synthesize a profile-shaped corpus to JSON."""
    profile = profile_by_name(args.profile, scale=args.scale)
    dataset = generate_dataset(profile, seed=args.seed)
    save_collection_json(dataset.collection, args.output)
    stats = dataset.collection.stats()
    print(
        f"wrote {stats.num_sets} sets "
        f"(max {stats.max_size}, avg {stats.avg_size:.1f}, "
        f"{stats.num_unique_elements} unique tokens) to {args.output}"
    )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """``repro stats``: print Table-I shape statistics as JSON."""
    stats = _load_collection(args.collection).stats()
    print(json.dumps(
        {
            "num_sets": stats.num_sets,
            "max_size": stats.max_size,
            "avg_size": round(stats.avg_size, 2),
            "num_unique_elements": stats.num_unique_elements,
        },
        indent=1,
    ))
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    """``repro search``: top-k semantic overlap search over a collection."""
    collection, index, sim = _load_stack(args)
    query = frozenset(args.token)
    engine = KoiosSearchEngine(
        collection,
        index,
        sim,
        alpha=args.alpha,
        num_partitions=args.partitions,
        config=FilterConfig.koios(iub_mode=args.iub_mode, engine=args.engine),
        inverted_factory=getattr(collection, "delta_index", None),
    )
    result = engine.search(query, k=args.k)
    for entry in result.entries:
        print(f"{entry.score:10.4f}  {entry.name}")
    if args.verbose:
        stats = result.stats
        print(
            f"# candidates={stats.candidates} "
            f"refinement_pruned={stats.refinement_pruned} "
            f"no_em={stats.no_em} "
            f"em_early_terminated={stats.em_early_terminated} "
            f"em_full={stats.em_full} "
            f"time={stats.response_seconds:.3f}s",
            file=sys.stderr,
        )
    return 0


def _run_serve_loop(scheduler: QueryScheduler, linger: int) -> int:
    """The shared serve loop with graceful SIGINT/SIGTERM shutdown:
    drain in-flight work, emit pending responses, flush/close the WAL
    (via ``scheduler.shutdown``), and report — exit code 0 either way."""
    _install_shutdown_handlers()
    try:
        served = serve_lines(
            scheduler, sys.stdin, sys.stdout, linger=linger
        )
    except GracefulShutdown:
        # The signal landed outside the serve loop's own handling
        # (e.g. between setup and the first read); nothing was dropped.
        served = scheduler.metrics.completed
    finally:
        scheduler.shutdown()
    snapshot = dict(scheduler.metrics.snapshot())
    print(
        f"# served {served} requests "
        f"(qps={snapshot['qps']}, "
        f"cache_hit_rate={snapshot['cache_hit_rate']}, "
        f"p95={snapshot['latency_p95']}s)",
        file=sys.stderr,
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: JSON-lines request loop on stdin/stdout."""
    _configure_tracing(args)
    with _build_scheduler(args) as scheduler:
        return _run_serve_loop(scheduler, args.linger)


def cmd_batch(args: argparse.Namespace) -> int:
    """``repro batch``: answer a query file through the serving stack."""
    with open(args.queries, encoding="utf-8") as handle:
        lines = handle.readlines()
    with _build_scheduler(args) as scheduler:
        responses = run_batch(scheduler, lines)
        snapshot = dict(scheduler.metrics.snapshot())
    payload = "".join(response.to_json() + "\n" for response in responses)
    if args.output is None or args.output == "-":
        sys.stdout.write(payload)
    else:
        Path(args.output).write_text(payload, encoding="utf-8")
    errors = sum(1 for response in responses if response.error is not None)
    print(
        f"# answered {len(responses)} requests ({errors} errors, "
        f"cache_hit_rate={snapshot['cache_hit_rate']}, "
        f"mean_batch_occupancy={snapshot['mean_batch_occupancy']})",
        file=sys.stderr,
    )
    return 0 if errors == 0 else 1


def cmd_explain(args: argparse.Namespace) -> int:
    """``repro explain``: run queries and print each one's EXPLAIN
    report — the pruning funnel (per partition and merged), per-phase
    seconds, verification cost estimates, and cache attribution."""
    from repro.obs.explain import render_explain
    from repro.service.request import SearchRequest

    with open(args.queries, encoding="utf-8") as handle:
        lines = [
            line.strip() for line in handle
            if line.strip() and not line.strip().startswith("#")
        ]
    failures = 0
    with _build_scheduler(args) as scheduler:
        for number, line in enumerate(lines, start=1):
            if number > 1:
                print()
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise InvalidParameterError(
                    f"bad request JSON on line {number}: {exc}"
                ) from exc
            if isinstance(obj, list):
                obj = {"query": obj}
            if not isinstance(obj, dict):
                raise InvalidParameterError(
                    f"line {number}: request must be a JSON object or "
                    "token array"
                )
            obj["explain"] = True
            response = scheduler.answer(SearchRequest.from_obj(obj))
            if response.error is not None:
                print(f"# {response.request_id}: {response.error}")
                failures += 1
                continue
            for hit_line in response.result_lines():
                print(hit_line)
            print(render_explain(response.explain))
    return 0 if failures == 0 else 1


def cmd_cluster_serve(args: argparse.Namespace) -> int:
    """``repro cluster serve``: the JSON-lines protocol over worker
    processes (one per partition of the set-id space)."""
    from repro.cluster import ClusterPool
    from repro.store.mutable import MutableSetCollection

    _configure_tracing(args)  # before spawn: worker specs capture it
    collection, index, sim, descriptor, snapshot_path = (
        _load_serving_stack(args)
    )
    wal = None
    bootstrap_records = ()
    if args.wal is not None:
        if not hasattr(collection, "insert"):
            collection = MutableSetCollection(collection)
        wal = WriteAheadLog(args.wal)
        # Prior mutations replay through the cluster's bootstrap path,
        # so worker replicas and the coordinator derive identical state.
        # Records the snapshot already folded (compaction handshake) are
        # excluded so a crash between snapshot replace and WAL reset
        # cannot double-apply them.
        manifest = (
            inspect_snapshot(snapshot_path)
            if snapshot_path is not None else None
        )
        bootstrap_records = pending_records(wal, manifest)
    cluster = ClusterPool(
        collection,
        index,
        sim,
        alpha=args.alpha,
        workers=args.workers,
        replicas=args.replicas,
        shards=args.shards,
        config=FilterConfig.koios(iub_mode=args.iub_mode, engine=args.engine),
        snapshot_path=snapshot_path,
        substrate=descriptor,
        bootstrap_records=bootstrap_records,
        start_method=args.start_method,
        request_timeout=args.request_timeout,
    )
    if bootstrap_records:
        print(
            f"# replayed {len(bootstrap_records)} WAL records across "
            f"{args.workers} workers (version {collection.version})",
            file=sys.stderr,
        )
    cache = (
        ResultCache(capacity=args.cache_size) if args.cache_size > 0 else None
    )
    with cluster:
        with QueryScheduler(
            cluster,
            cache=cache,
            max_batch=args.max_batch,
            workers=args.scheduler_workers,
            wal=wal,
        ) as scheduler:
            return _run_serve_loop(scheduler, args.linger)


def cmd_cluster_bench(args: argparse.Namespace) -> int:
    """``repro cluster bench``: multi-process vs threaded throughput."""
    from repro.cluster.bench import (
        format_report,
        run_scaling_bench,
        zipf_queries,
    )

    collection = _load_collection(args.collection)
    descriptor = _substrate_descriptor(args)
    try:
        worker_counts = sorted(
            {int(part) for part in args.workers.split(",") if part.strip()}
        )
    except ValueError:
        raise InvalidParameterError(
            f"--workers must be a comma-separated int list, got "
            f"{args.workers!r}"
        ) from None
    if not worker_counts or any(count < 1 for count in worker_counts):
        raise InvalidParameterError("--workers counts must be >= 1")
    queries = zipf_queries(
        collection,
        distinct=args.distinct,
        requests=args.requests,
        seed=args.seed,
    )
    results = run_scaling_bench(
        collection,
        descriptor,
        queries,
        k=args.k,
        alpha=args.alpha,
        worker_counts=worker_counts,
        start_method=args.start_method,
        config=FilterConfig.koios(iub_mode=args.iub_mode, engine=args.engine),
    )
    for line in format_report(results):
        print(line, file=sys.stderr)
    print(json.dumps(results, separators=(",", ":")))
    return 0


def cmd_cluster_chaos(args: argparse.Namespace) -> int:
    """``repro cluster chaos``: replay a randomized workload under a
    deterministic fault plan; non-degraded answers must match the
    single-process baseline bitwise. Exit 0 only when nothing hung,
    nothing failed, and nothing mismatched."""
    from repro.cluster.faults import (
        FaultPlan,
        format_chaos_report,
        run_chaos,
    )

    collection = _load_collection(args.collection)
    descriptor = _substrate_descriptor(args)
    if args.smoke:
        # The CI shape: short workload, 2 kills + 1 slow worker, tight
        # deadline — enough to exercise failover, background restart,
        # and the timeout path in under a minute.
        ops, kills, drops, slows = 40, 2, 0, 1
    else:
        ops, kills, drops, slows = args.ops, args.kills, args.drops, args.slows
    plan = FaultPlan.from_seed(
        args.fault_seed,
        ops=ops,
        partitions=args.workers,
        replicas=args.replicas,
        kills=kills,
        drops=drops,
        slows=slows,
        bootstrap_failures=args.bootstrap_failures,
        slow_duration=args.slow_duration,
    )
    report = run_chaos(
        collection,
        descriptor,
        plan=plan,
        workers=args.workers,
        replicas=args.replicas,
        ops=ops,
        k=args.k,
        seed=args.seed,
        request_timeout=args.request_timeout,
        start_method=args.start_method,
    )
    for line in format_chaos_report(report):
        print(line, file=sys.stderr)
    print(json.dumps(report, separators=(",", ":")))
    return 0 if report["ok"] else 1


def cmd_gateway_serve(args: argparse.Namespace) -> int:
    """``repro gateway serve``: the asyncio multi-tenant front end."""
    import asyncio

    from repro.gateway import TenantRegistry
    from repro.gateway.server import run_gateway

    _configure_tracing(args)  # before tenant builds: cluster tenants
    registry = TenantRegistry.from_config(args.config)

    def announce(server) -> None:
        print(
            f"# gateway listening on {server.host}:{server.port} "
            f"(tenants: {', '.join(server.registry.names)})",
            file=sys.stderr,
            flush=True,
        )

    try:
        server = asyncio.run(
            run_gateway(
                registry,
                host=args.host,
                port=args.port,
                executor_workers=args.executor_workers,
                announce=announce,
            )
        )
    except KeyboardInterrupt:
        # The loop was torn down before the graceful path could run
        # (second signal); tenant WALs still flush on close.
        registry.close()
        return 0
    except Exception:
        registry.close()
        raise
    totals = server.stats()["totals"]
    print(
        f"# gateway drained: {totals['completed']} completed, "
        f"{totals['rejected']} rejected, {totals['shed']} shed "
        f"across {len(registry)} tenants",
        file=sys.stderr,
    )
    return 0


def cmd_trace_tail(args: argparse.Namespace) -> int:
    """``repro trace tail``: the most recent span trees in a sink."""
    from repro.obs.inspect import tail_traces

    shown = 0
    for tree in tail_traces(args.file, args.count):
        if shown:
            print()
        print(tree)
        shown += 1
    if not shown:
        print("(no traces)", file=sys.stderr)
    return 0


def cmd_trace_show(args: argparse.Namespace) -> int:
    """``repro trace show``: one trace's span tree by (prefix of) id."""
    from repro.obs.inspect import show_trace

    tree = show_trace(args.file, args.trace_id)
    if tree is None:
        raise InvalidParameterError(
            f"no trace matching {args.trace_id!r} in {args.file} "
            f"(prefixes must be unambiguous)"
        )
    print(tree)
    return 0


def cmd_trace_top(args: argparse.Namespace) -> int:
    """``repro trace top``: where did the milliseconds go?"""
    from repro.obs.inspect import format_top, top_spans

    print(format_top(top_spans(args.file, by=args.by, limit=args.limit)))
    return 0


def cmd_index_build(args: argparse.Namespace) -> int:
    """``repro index build``: persist collection + substrate to a snapshot."""
    output = Path(args.output)
    if output.suffix.lower() not in SNAPSHOT_SUFFIXES:
        raise InvalidParameterError(
            f"snapshot output should end in .snap or .snapshot, got "
            f"{output.name!r}"
        )
    collection = _load_collection(args.collection)
    index, _, descriptor = _build_substrate(collection, args)
    manifest = save_snapshot(
        output,
        collection,
        store=getattr(index, "store", None),
        substrate=descriptor,
    )
    print(
        f"wrote {output}: {manifest.num_sets} sets, "
        f"{manifest.num_tokens} tokens, "
        f"{manifest.total_postings} postings, "
        f"fingerprint {manifest.fingerprint[:12]}"
    )
    return 0


def cmd_index_inspect(args: argparse.Namespace) -> int:
    """``repro index inspect``: print a snapshot manifest as JSON."""
    manifest = inspect_snapshot(args.snapshot)
    print(json.dumps(manifest.to_obj(), indent=1, sort_keys=True))
    return 0


def cmd_index_compact(args: argparse.Namespace) -> int:
    """``repro index compact``: fold a WAL into a fresh snapshot."""
    if not Path(args.wal).exists():
        raise InvalidParameterError(
            f"write-ahead log not found: {args.wal}"
        )
    wal = WriteAheadLog(args.wal)
    manifest, applied = compact(args.snapshot, wal, output=args.output)
    target = args.output or args.snapshot
    print(
        f"folded {applied} WAL records into {target}: "
        f"{manifest.num_sets} sets, {manifest.num_tokens} tokens"
    )
    return 0


def _add_substrate_arguments(parser: argparse.ArgumentParser) -> None:
    """Options shared by every command that builds a search stack."""
    parser.add_argument("--alpha", type=float, default=0.8)
    parser.add_argument(
        "--jaccard", action="store_true",
        help="q-gram Jaccard similarity instead of hashing embeddings",
    )
    parser.add_argument(
        "--dim", type=int, default=64,
        help="hashing-embedding dimensionality",
    )
    parser.add_argument(
        "--iub-mode", default="paper", choices=["paper", "safe"]
    )
    parser.add_argument(
        "--engine",
        default="columnar",
        choices=["columnar", "reference"],
        help="search engine for refinement AND verification: the "
        "vectorized columnar fast paths (default) or the per-candidate "
        "reference loops (both return bitwise-identical results)",
    )


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    """Tracing options shared by the serving commands."""
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="emit request spans as JSON lines to this sink file "
        "(inspect with 'repro trace')",
    )
    parser.add_argument(
        "--trace-sample", type=float, default=1.0,
        help="fraction of traces to keep (deterministic per trace_id; "
        "errors and slow requests are always kept)",
    )
    parser.add_argument(
        "--trace-slow-ms", type=float, default=None,
        help="always keep traces whose root span exceeds this many "
        "milliseconds (the slow-query log)",
    )


def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    """Options shared by ``serve`` and ``batch``."""
    parser.add_argument("collection", help="JSON or long-CSV collection")
    _add_substrate_arguments(parser)
    parser.add_argument(
        "--shards", type=int, default=1,
        help="engine-pool shards over the collection",
    )
    parser.add_argument(
        "--parallel-shards", action="store_true",
        help="fan one query's shards out on a thread pool",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="scheduler worker threads",
    )
    parser.add_argument(
        "--cache-size", type=int, default=1024,
        help="result-cache capacity (0 disables caching)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=8,
        help="micro-batch occupancy that triggers dispatch",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Koios: top-k semantic overlap set search",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {package_version()}",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="synthesize a Table-I-shaped corpus"
    )
    generate.add_argument(
        "--profile", default="opendata",
        choices=["dblp", "opendata", "twitter", "wdc"],
    )
    generate.add_argument(
        "--scale", default="small", choices=["tiny", "small", "full"]
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True)
    generate.set_defaults(func=cmd_generate)

    stats = commands.add_parser(
        "stats", help="shape statistics of a collection"
    )
    stats.add_argument("collection")
    stats.set_defaults(func=cmd_stats)

    search = commands.add_parser(
        "search", help="top-k semantic overlap search"
    )
    search.add_argument("collection", help="JSON or long-CSV collection")
    search.add_argument(
        "token", nargs="+", help="query set elements"
    )
    search.add_argument("-k", type=int, default=10)
    _add_substrate_arguments(search)
    search.add_argument("--partitions", type=int, default=1)
    search.add_argument("--verbose", action="store_true")
    search.set_defaults(func=cmd_search)

    index = commands.add_parser(
        "index", help="snapshot lifecycle: build, inspect, compact"
    )
    index_commands = index.add_subparsers(
        dest="index_command", required=True
    )
    build = index_commands.add_parser(
        "build", help="persist a collection + substrate to a snapshot"
    )
    build.add_argument("collection", help="JSON or long-CSV collection")
    build.add_argument("output", help="snapshot path (.snap)")
    _add_substrate_arguments(build)
    build.set_defaults(func=cmd_index_build)
    inspect = index_commands.add_parser(
        "inspect", help="print a snapshot manifest as JSON"
    )
    inspect.add_argument("snapshot")
    inspect.set_defaults(func=cmd_index_inspect)
    compact_cmd = index_commands.add_parser(
        "compact", help="fold a write-ahead log into a fresh snapshot"
    )
    compact_cmd.add_argument("snapshot")
    compact_cmd.add_argument(
        "--wal", required=True, help="write-ahead log to fold in"
    )
    compact_cmd.add_argument(
        "--output", default=None,
        help="write the compacted snapshot here (default: in place)",
    )
    compact_cmd.set_defaults(func=cmd_index_compact)

    serve = commands.add_parser(
        "serve", help="JSON-lines query server on stdin/stdout"
    )
    _add_service_arguments(serve)
    serve.add_argument(
        "--linger", type=int, default=1,
        help="requests to accumulate before flushing a micro-batch",
    )
    serve.add_argument(
        "--wal", default=None,
        help="write-ahead log for insert/delete/replace durability "
        "(replayed on start)",
    )
    _add_trace_arguments(serve)
    serve.set_defaults(func=cmd_serve)

    explain = commands.add_parser(
        "explain",
        help="run queries through the serving stack and print each "
        "one's EXPLAIN report (pruning funnel, phases, cost estimates)",
    )
    _add_service_arguments(explain)
    explain.add_argument(
        "queries",
        help="JSON-lines query file (same format as 'repro batch')",
    )
    explain.set_defaults(func=cmd_explain)

    batch = commands.add_parser(
        "batch", help="answer a JSON-lines query file via the service"
    )
    _add_service_arguments(batch)
    batch.add_argument("queries", help="JSON-lines request file")
    batch.add_argument(
        "--output", default="-",
        help="responses file ('-' = stdout)",
    )
    batch.set_defaults(func=cmd_batch)

    cluster = commands.add_parser(
        "cluster",
        help="multi-process scatter-gather serving and its benchmark",
    )
    cluster_commands = cluster.add_subparsers(
        dest="cluster_command", required=True
    )
    cluster_serve = cluster_commands.add_parser(
        "serve",
        help="JSON-lines query server over worker processes",
    )
    cluster_serve.add_argument(
        "collection", help="JSON, long-CSV, or snapshot collection"
    )
    _add_substrate_arguments(cluster_serve)
    cluster_serve.add_argument(
        "--workers", type=int, default=2,
        help="worker processes (one partition of the set-id space each)",
    )
    cluster_serve.add_argument(
        "--replicas", type=int, default=1,
        help="processes per partition slot; >1 enables failover reads "
        "(a dead primary fails over to a live replica instead of "
        "blocking on a restart)",
    )
    cluster_serve.add_argument(
        "--shards", type=int, default=1,
        help="engines per worker partition",
    )
    cluster_serve.add_argument(
        "--scheduler-workers", type=int, default=1,
        help="coordinator-side scheduler threads",
    )
    cluster_serve.add_argument(
        "--cache-size", type=int, default=1024,
        help="result-cache capacity (0 disables caching)",
    )
    cluster_serve.add_argument(
        "--max-batch", type=int, default=8,
        help="micro-batch occupancy that triggers dispatch",
    )
    cluster_serve.add_argument(
        "--linger", type=int, default=1,
        help="requests to accumulate before flushing a micro-batch",
    )
    cluster_serve.add_argument(
        "--wal", default=None,
        help="write-ahead log for mutation durability (replayed on "
        "start across the whole fleet)",
    )
    cluster_serve.add_argument(
        "--request-timeout", type=float, default=120.0,
        help="seconds before a silent worker is declared failed",
    )
    cluster_serve.add_argument(
        "--start-method", default="spawn",
        choices=["spawn", "fork", "forkserver"],
        help="multiprocessing start method (spawn is the portable "
        "default)",
    )
    _add_trace_arguments(cluster_serve)
    cluster_serve.set_defaults(func=cmd_cluster_serve)
    cluster_bench = cluster_commands.add_parser(
        "bench",
        help="cluster vs threaded-pool scaling benchmark",
    )
    cluster_bench.add_argument(
        "collection", help="JSON, long-CSV, or snapshot collection"
    )
    _add_substrate_arguments(cluster_bench)
    cluster_bench.add_argument(
        "--workers", default="1,2,4",
        help="comma-separated worker counts to sweep",
    )
    cluster_bench.add_argument(
        "--requests", type=int, default=60,
        help="Zipf-skewed requests per configuration",
    )
    cluster_bench.add_argument(
        "--distinct", type=int, default=30,
        help="distinct queries underlying the Zipf stream",
    )
    cluster_bench.add_argument("-k", type=int, default=10)
    cluster_bench.add_argument("--seed", type=int, default=13)
    cluster_bench.add_argument(
        "--start-method", default="spawn",
        choices=["spawn", "fork", "forkserver"],
    )
    cluster_bench.set_defaults(func=cmd_cluster_bench)
    cluster_chaos = cluster_commands.add_parser(
        "chaos",
        help="deterministic fault-injection run: kills/drops/slow "
        "workers against a replicated cluster, gated on bitwise "
        "equivalence and zero hung requests",
    )
    cluster_chaos.add_argument(
        "collection", help="JSON, long-CSV, or snapshot collection"
    )
    _add_substrate_arguments(cluster_chaos)
    cluster_chaos.add_argument(
        "--workers", type=int, default=2,
        help="partitions (worker slots)",
    )
    cluster_chaos.add_argument(
        "--replicas", type=int, default=2,
        help="processes per partition slot",
    )
    cluster_chaos.add_argument(
        "--ops", type=int, default=110,
        help="workload length (queries + mutations)",
    )
    cluster_chaos.add_argument(
        "--kills", type=int, default=3,
        help="SIGKILLed workers over the run",
    )
    cluster_chaos.add_argument(
        "--drops", type=int, default=1,
        help="coordinator-side pipe drops over the run",
    )
    cluster_chaos.add_argument(
        "--slows", type=int, default=1,
        help="delayed worker replies over the run",
    )
    cluster_chaos.add_argument(
        "--bootstrap-failures", type=int, default=0,
        help="injected bootstrap failures (holds a slot down)",
    )
    cluster_chaos.add_argument(
        "--slow-duration", type=float, default=1.0,
        help="seconds a slow reply is delayed",
    )
    cluster_chaos.add_argument(
        "--fault-seed", type=int, default=7,
        help="seed of the fault schedule (same seed, same timeline)",
    )
    cluster_chaos.add_argument(
        "--seed", type=int, default=31, help="workload seed"
    )
    cluster_chaos.add_argument("-k", type=int, default=10)
    cluster_chaos.add_argument(
        "--request-timeout", type=float, default=30.0,
        help="per-op deadline before failover/degradation",
    )
    cluster_chaos.add_argument(
        "--smoke", action="store_true",
        help="short CI shape: 40 ops, 2 kills + 1 slow worker",
    )
    cluster_chaos.add_argument(
        "--start-method", default="spawn",
        choices=["spawn", "fork", "forkserver"],
    )
    cluster_chaos.set_defaults(func=cmd_cluster_chaos)

    gateway = commands.add_parser(
        "gateway",
        help="asyncio multi-tenant network front end",
    )
    gateway_commands = gateway.add_subparsers(
        dest="gateway_command", required=True
    )
    gateway_serve = gateway_commands.add_parser(
        "serve",
        help="serve tenants from a JSON config over TCP (JSON-lines "
        "+ HTTP POST)",
    )
    gateway_serve.add_argument(
        "--config", required=True,
        help="tenant config JSON (see docs/gateway.md for the schema)",
    )
    gateway_serve.add_argument(
        "--host", default="127.0.0.1",
        help="listen address (default loopback)",
    )
    gateway_serve.add_argument(
        "--port", type=int, default=7207,
        help="listen port (0 = pick a free one, announced on stderr)",
    )
    gateway_serve.add_argument(
        "--executor-workers", type=int, default=None,
        help="threads executing admitted requests (default: the "
        "config's max_inflight)",
    )
    _add_trace_arguments(gateway_serve)
    gateway_serve.set_defaults(func=cmd_gateway_serve)

    trace = commands.add_parser(
        "trace",
        help="inspect a span sink: tail recent traces, show one, "
        "aggregate hot spans",
    )
    trace_commands = trace.add_subparsers(
        dest="trace_command", required=True
    )
    trace_tail = trace_commands.add_parser(
        "tail", help="pretty-print the most recent span trees"
    )
    trace_tail.add_argument(
        "file", help="trace sink path (a server's --trace)"
    )
    trace_tail.add_argument(
        "--count", type=int, default=5,
        help="how many of the most recent traces to show",
    )
    trace_tail.set_defaults(func=cmd_trace_tail)
    trace_show = trace_commands.add_parser(
        "show", help="one trace's span tree by trace id"
    )
    trace_show.add_argument(
        "file", help="trace sink path (a server's --trace)"
    )
    trace_show.add_argument(
        "trace_id", help="full trace id or an unambiguous prefix"
    )
    trace_show.set_defaults(func=cmd_trace_show)
    trace_top = trace_commands.add_parser(
        "top", help="aggregate span durations across the sink"
    )
    trace_top.add_argument(
        "file", help="trace sink path (a server's --trace)"
    )
    trace_top.add_argument(
        "--by", default="name", choices=["name", "phase"],
        help="group over span names or engine phases only",
    )
    trace_top.add_argument(
        "--limit", type=int, default=20,
        help="rows to print",
    )
    trace_top.set_defaults(func=cmd_trace_top)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Library :class:`ReproError`\\ s and missing-file ``OSError``\\ s are
    user errors: they print one ``repro: error:`` line and exit with the
    family's code from :data:`ERROR_EXIT_CODES` / :data:`EX_NOINPUT`.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        for error_type, code in ERROR_EXIT_CODES:
            if isinstance(exc, error_type):
                return code
        return ERROR_EXIT_CODES[-1][1]
    except OSError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return EX_NOINPUT


if __name__ == "__main__":
    raise SystemExit(main())
