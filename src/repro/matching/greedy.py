"""Greedy bipartite matching.

The greedy algorithm repeatedly picks the heaviest edge between two
unmatched nodes. Its score is a 1/2-approximation of the optimal matching
(Lemma 3 cites [18]) and is the cheap lower bound Koios uses; it is also
the ``GreedyMatching`` comparator of Fig. 1 that demonstrably mis-ranks
results, motivating exact verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class GreedyMatching:
    """Result of a greedy matching: total score and matched index pairs."""

    score: float
    pairs: list[tuple[int, int]] = field(default_factory=list)


def greedy_matching(weights: np.ndarray) -> GreedyMatching:
    """Greedy maximum matching on a dense weight matrix.

    Edges with zero weight are never matched (the matching is optional).
    Ties are broken by (row, col) order for determinism. Runs in
    O(E log E) for E non-zero edges.
    """
    rows, cols = np.nonzero(weights)
    if rows.size == 0:
        return GreedyMatching(score=0.0)
    values = weights[rows, cols]
    # Sort by descending weight, then ascending (row, col) for determinism.
    order = np.lexsort((cols, rows, -values))
    row_used = np.zeros(weights.shape[0], dtype=bool)
    col_used = np.zeros(weights.shape[1], dtype=bool)
    score = 0.0
    pairs: list[tuple[int, int]] = []
    for idx in order:
        i = int(rows[idx])
        j = int(cols[idx])
        if row_used[i] or col_used[j]:
            continue
        row_used[i] = True
        col_used[j] = True
        score += float(values[idx])
        pairs.append((i, j))
    return GreedyMatching(score=score, pairs=pairs)
