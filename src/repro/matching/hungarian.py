"""Kuhn–Munkres (Hungarian) maximum-weight bipartite matching with the
label-sum early-termination filter of the paper's Lemma 8.

The algorithm maintains a feasible labeling ``l`` with
``l(q) + l(c) >= w(q, c)`` and grows alternating trees in the equality
subgraph. Two properties drive Koios:

* for any feasible labeling, ``sum_v l(v)`` upper-bounds the weight of
  every matching, hence upper-bounds ``SO(Q, C)``;
* every labeling update decreases the label sum (the alternating tree has
  one more left vertex than right vertices), so the bound tightens
  monotonically and converges to the optimal score.

Therefore the matching of a candidate can be aborted as soon as the label
sum drops below the current pruning threshold ``theta_lb`` — that is the
EM-Early-Terminated filter. The threshold is read through a callable so a
global, concurrently-improving ``theta_lb`` (shared across partitions and
verification threads) is supported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import MatchingError

_EPS = 1e-9


@dataclass
class MatchingResult:
    """Outcome of a (possibly early-terminated) Hungarian run.

    Attributes
    ----------
    score:
        The maximum matching score; only meaningful when ``pruned`` is
        False.
    pairs:
        Matched ``(row, col)`` index pairs with non-zero weight.
    pruned:
        True when the run was aborted by the early-termination bound;
        ``label_sum`` is then a certified upper bound on the true score.
    label_sum:
        Final value of ``sum_v l(v)``; equals ``score`` for completed
        runs.
    label_updates:
        Number of labeling improvements performed (used to measure how
        early terminations save work).
    """

    score: float
    pairs: list[tuple[int, int]] = field(default_factory=list)
    pruned: bool = False
    label_sum: float = 0.0
    label_updates: int = 0


def initial_label_sum(weights: np.ndarray) -> float:
    """Label sum of the canonical initial feasible labeling (row maxima).

    Computed exactly as :func:`hungarian_matching` computes it before its
    first labeling update — the row maxima of the zero-padded square
    matrix, summed over the padded length — so the returned float is
    bitwise-identical to the ``label_sum`` a run on ``weights`` starts
    from. The columnar verification engine uses this to apply the
    Lemma-8 initial check without paying for the padded matrix.
    """
    num_rows, num_cols = weights.shape
    size = max(num_rows, num_cols)
    labels = np.zeros(size, dtype=np.float64)
    if num_rows and num_cols:
        # Weights are non-negative, so the padded row maxima equal the
        # raw row maxima; padding rows stay 0.
        labels[:num_rows] = weights.max(axis=1)
    return float(labels.sum())


def hungarian_matching(
    weights: np.ndarray,
    *,
    bound: float | Callable[[], float] | None = None,
) -> MatchingResult:
    """Maximum-weight (optional) bipartite matching of a dense matrix.

    Parameters
    ----------
    weights:
        Non-negative dense weight matrix; zero entries are non-edges.
        Because all weights are >= 0, a maximum-weight perfect matching
        on the zero-padded square matrix restricted to positive-weight
        edges is a maximum-weight optional matching.
    bound:
        The EM-early-termination threshold ``theta_lb`` — a float or a
        zero-argument callable re-read after every labeling update. When
        the label sum falls below the bound, the run aborts with
        ``pruned=True`` (the candidate's true score is certainly below
        ``theta_lb``; Lemma 8).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise MatchingError("weights must be a 2-d matrix")
    if weights.size and float(weights.min()) < 0.0:
        raise MatchingError("weights must be non-negative")

    num_rows, num_cols = weights.shape
    if num_rows == 0 or num_cols == 0:
        return MatchingResult(score=0.0, label_sum=0.0)

    read_bound = _as_callable(bound)

    size = max(num_rows, num_cols)
    padded = np.zeros((size, size), dtype=np.float64)
    padded[:num_rows, :num_cols] = weights

    labels_row = padded.max(axis=1).copy()
    labels_col = np.zeros(size, dtype=np.float64)
    label_sum = float(labels_row.sum())
    label_updates = 0

    # Lemma 8 applies to any feasible labeling, including the initial
    # one: if the sum of row maxima is already below the threshold, the
    # candidate's score certainly is too — abort before any work.
    threshold = read_bound()
    if threshold is not None and label_sum < threshold - _EPS:
        return MatchingResult(
            score=0.0, pruned=True, label_sum=label_sum, label_updates=0
        )

    match_of_row = np.full(size, -1, dtype=np.int64)
    match_of_col = np.full(size, -1, dtype=np.int64)

    for root in range(size):
        if match_of_row[root] != -1:
            continue
        # Grow an alternating tree from `root` in the equality subgraph.
        in_tree_row = np.zeros(size, dtype=bool)
        in_tree_col = np.zeros(size, dtype=bool)
        in_tree_row[root] = True
        slack = labels_row[root] + labels_col - padded[root]
        slack_row = np.full(size, root, dtype=np.int64)
        parent_col = np.full(size, -1, dtype=np.int64)

        while True:
            # Find a tight column outside the tree.
            candidates = np.where(~in_tree_col & (slack <= _EPS))[0]
            if candidates.size == 0:
                outside = np.where(~in_tree_col)[0]
                delta = float(slack[outside].min())
                labels_row[in_tree_row] -= delta
                labels_col[in_tree_col] += delta
                slack[outside] -= delta
                # |tree rows| = |tree cols| + 1, so the sum drops by delta.
                label_sum -= delta
                label_updates += 1
                threshold = read_bound()
                if threshold is not None and label_sum < threshold - _EPS:
                    return MatchingResult(
                        score=0.0,
                        pruned=True,
                        label_sum=label_sum,
                        label_updates=label_updates,
                    )
                candidates = np.where(~in_tree_col & (slack <= _EPS))[0]
            col = int(candidates[0])
            parent_col[col] = slack_row[col]
            if match_of_col[col] == -1:
                # Augment along the alternating path ending at `col`.
                while col != -1:
                    row = int(parent_col[col])
                    previous_col = int(match_of_row[row])
                    match_of_col[col] = row
                    match_of_row[row] = col
                    col = previous_col
                break
            in_tree_col[col] = True
            next_row = int(match_of_col[col])
            in_tree_row[next_row] = True
            # The new tree row may tighten slacks of outside columns.
            new_slack = labels_row[next_row] + labels_col - padded[next_row]
            tighter = new_slack < slack
            slack[tighter] = new_slack[tighter]
            slack_row[tighter] = next_row

    pairs = [
        (row, int(match_of_row[row]))
        for row in range(num_rows)
        if 0 <= match_of_row[row] < num_cols
        and weights[row, match_of_row[row]] > 0.0
    ]
    score = float(sum(weights[i, j] for i, j in pairs))
    return MatchingResult(
        score=score,
        pairs=pairs,
        pruned=False,
        label_sum=label_sum,
        label_updates=label_updates,
    )


def _as_callable(
    bound: float | Callable[[], float] | None,
) -> Callable[[], float | None]:
    if bound is None:
        return lambda: None
    if callable(bound):
        return bound
    value = float(bound)
    return lambda: value
