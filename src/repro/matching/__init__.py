"""Bipartite matching substrate: graph construction, greedy 1/2-approx
matching, and the Hungarian algorithm with label-sum early termination."""

from repro.matching.graph import BipartiteGraph, build_graph
from repro.matching.greedy import GreedyMatching, greedy_matching
from repro.matching.hungarian import MatchingResult, hungarian_matching

__all__ = [
    "BipartiteGraph",
    "GreedyMatching",
    "MatchingResult",
    "build_graph",
    "greedy_matching",
    "hungarian_matching",
]
