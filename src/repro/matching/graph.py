"""Bipartite similarity graph construction.

The semantic overlap of ``Q`` and ``C`` is the maximum matching score of
the weighted bipartite graph whose edge ``(q_i, c_j)`` carries
``sim_alpha(q_i, c_j)``. We materialize that graph as a dense weight
matrix (queries on rows, candidate elements on columns); zero entries are
non-edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.sim.base import SimilarityFunction


@dataclass
class BipartiteGraph:
    """A dense weighted bipartite graph between two token lists."""

    query_tokens: list[str]
    candidate_tokens: list[str]
    weights: np.ndarray  # shape (len(query_tokens), len(candidate_tokens))

    @property
    def num_edges(self) -> int:
        """Number of non-zero-weight edges."""
        return int(np.count_nonzero(self.weights))

    def edge_weight(self, qi: int, cj: int) -> float:
        return float(self.weights[qi, cj])


def build_graph(
    query_tokens: Sequence[str],
    candidate_tokens: Sequence[str],
    sim: SimilarityFunction,
    alpha: float,
    *,
    cached_scores: Mapping[tuple[str, str], float] | None = None,
) -> BipartiteGraph:
    """Build the ``sim_alpha`` weight matrix between two token lists.

    ``cached_scores`` maps ``(query_token, candidate_token)`` to scores
    already retrieved from the token stream during refinement; the paper
    reuses those cached similarities when initializing the matrix for
    graph matching (§VIII-A3), and so do we — cached entries overwrite
    recomputed ones (they are equal for exact indexes, and the cache wins
    for approximate ones, keeping refinement and verification consistent).
    """
    rows = list(query_tokens)
    cols = list(candidate_tokens)
    weights = sim.matrix(rows, cols)
    weights = np.asarray(weights, dtype=np.float64)
    weights[weights < alpha] = 0.0
    if cached_scores:
        col_index: dict[str, list[int]] = {}
        for j, token in enumerate(cols):
            col_index.setdefault(token, []).append(j)
        row_index: dict[str, list[int]] = {}
        for i, token in enumerate(rows):
            row_index.setdefault(token, []).append(i)
        for (q_token, c_token), score in cached_scores.items():
            value = score if score >= alpha else 0.0
            for i in row_index.get(q_token, ()):
                for j in col_index.get(c_token, ()):
                    weights[i, j] = value
    return BipartiteGraph(rows, cols, weights)
