"""Admission control: bounded per-tenant queues over a shared executor.

The gateway's event loop must never block on engine work, and one hot
tenant must never starve the rest. Both properties live here:

* every tenant owns a **bounded FIFO queue** (``max_queue_depth`` from
  its spec). When a job arrives at a full queue the *oldest* waiting
  job is shed — under overload the requests most likely to have been
  abandoned by their client are the stalest ones, and shedding them
  keeps tail latency for everything still queued bounded instead of
  letting the backlog grow without limit;
* a **global in-flight cap** bounds how many jobs occupy executor
  threads at once, and dispatch walks tenants **round-robin**, so a
  tenant with a thousand queued jobs gets the same dispatch cadence as
  one with two (an optional per-tenant ``max_inflight`` tightens this
  further);
* jobs run via ``loop.run_in_executor`` on the gateway's thread pool —
  the (threaded) scheduler stack underneath is blocking by design, and
  the executor is the bridge that keeps the asyncio front end
  non-blocking.

A shed job's awaiter receives :class:`AdmissionShed` carrying the
tenant's ``retry_after_seconds`` hint; the server turns it into the
same structured rejection shape quota refusals use.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import GatewayError
from repro.gateway.tenants import Tenant
from repro.obs import Stopwatch, get_tracer


class AdmissionShed(GatewayError):
    """An accepted job was evicted from its queue under overload."""

    def __init__(self, tenant: str, retry_after_seconds: float) -> None:
        super().__init__(
            f"request shed under load (tenant {tenant!r}); retry in "
            f"{retry_after_seconds:.3f}s"
        )
        self.tenant = tenant
        self.retry_after_seconds = retry_after_seconds


@dataclass
class _Job:
    tenant: Tenant
    fn: Callable[[], Any]
    future: "asyncio.Future[Any]"
    #: The request's span context (None when untraced) and the stopwatch
    #: timing its wait in the queue — emitted as a retroactive
    #: ``gateway.queue`` span at dispatch (or, with an error, at shed).
    trace: Any = None
    waited: Stopwatch | None = None


@dataclass
class _TenantLane:
    queue: deque = field(default_factory=deque)
    inflight: int = 0


class AdmissionController:
    """Queues, sheds, and dispatches jobs for every tenant.

    Single-event-loop object: every method except the executor-side job
    body runs on the loop thread, so plain attributes need no locking.
    """

    def __init__(
        self,
        *,
        max_inflight: int = 8,
        executor: ThreadPoolExecutor | None = None,
    ) -> None:
        if max_inflight < 1:
            raise GatewayError("max_inflight must be >= 1")
        self._max_inflight = max_inflight
        self._executor = executor
        self._lanes: dict[str, _TenantLane] = {}
        self._order: deque[str] = deque()
        self._inflight = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()

    # -- bookkeeping -------------------------------------------------------

    @property
    def inflight(self) -> int:
        return self._inflight

    def queue_depth(self, tenant_name: str) -> int:
        lane = self._lanes.get(tenant_name)
        return len(lane.queue) if lane else 0

    def _lane(self, tenant_name: str) -> _TenantLane:
        lane = self._lanes.get(tenant_name)
        if lane is None:
            lane = self._lanes[tenant_name] = _TenantLane()
            self._order.append(tenant_name)
        return lane

    def _note_depth(self, tenant: Tenant, lane: _TenantLane) -> None:
        tenant.metrics.set_queue_depth(len(lane.queue))

    @staticmethod
    def _note_queue_span(job: _Job, *, error: str | None = None) -> None:
        """Emit the job's queue-wait as a retroactive span (a shed job
        carries the error, so the sink always keeps its trace)."""
        if job.trace is None or job.waited is None:
            return
        tracer = get_tracer()
        if not tracer.enabled:
            return
        tracer.record(
            "gateway.queue",
            job.waited.stop(),
            parent=job.trace,
            tags={"tenant": job.tenant.name},
            error=error,
        )

    # -- admission ---------------------------------------------------------

    def submit(
        self, tenant: Tenant, fn: Callable[[], Any], *, trace: Any = None
    ) -> "asyncio.Future[Any]":
        """Queue ``fn`` for ``tenant``; resolve with its return value.

        When the tenant's queue is full the oldest queued job is shed
        (its future fails with :class:`AdmissionShed`) to make room —
        the new job is always accepted, so a client that just arrived
        is never punished for a backlog it didn't create.

        ``trace`` (a span context) attributes the job's queue wait to
        its request trace as a retroactive ``gateway.queue`` span.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future[Any] = loop.create_future()
        if self._draining:
            future.set_exception(
                AdmissionShed(tenant.name, retry_after_seconds=1.0)
            )
            return future
        lane = self._lane(tenant.name)
        if len(lane.queue) >= tenant.spec.max_queue_depth:
            oldest: _Job = lane.queue.popleft()
            tenant.metrics.record_shed()
            self._note_queue_span(oldest, error="AdmissionShed: shed")
            if not oldest.future.done():
                oldest.future.set_exception(
                    AdmissionShed(
                        tenant.name,
                        tenant.quota.shed_retry_after(len(lane.queue)),
                    )
                )
        waited = Stopwatch() if trace is not None else None
        lane.queue.append(
            _Job(tenant=tenant, fn=fn, future=future,
                 trace=trace, waited=waited)
        )
        self._idle.clear()
        self._note_depth(tenant, lane)
        self._pump(loop)
        return future

    # -- dispatch ----------------------------------------------------------

    def _tenant_cap(self, job: _Job) -> int:
        per_tenant = job.tenant.spec.max_inflight
        return self._max_inflight if per_tenant is None else per_tenant

    def _next_job(self) -> _Job | None:
        """The next dispatchable job, scanning tenants round-robin."""
        for _ in range(len(self._order)):
            name = self._order[0]
            self._order.rotate(-1)
            lane = self._lanes[name]
            if not lane.queue:
                continue
            if lane.inflight >= self._tenant_cap(lane.queue[0]):
                continue
            return lane.queue.popleft()
        return None

    def _pump(self, loop: asyncio.AbstractEventLoop) -> None:
        while self._inflight < self._max_inflight:
            job = self._next_job()
            if job is None:
                break
            lane = self._lanes[job.tenant.name]
            lane.inflight += 1
            self._inflight += 1
            self._note_depth(job.tenant, lane)
            self._note_queue_span(job)
            loop.create_task(self._run(loop, job))
        if self._inflight == 0 and not any(
            lane.queue for lane in self._lanes.values()
        ):
            self._idle.set()

    async def _run(self, loop: asyncio.AbstractEventLoop, job: _Job) -> None:
        try:
            result = await loop.run_in_executor(self._executor, job.fn)
        except Exception as exc:  # noqa: BLE001 — delivered to the awaiter
            if not job.future.done():
                job.future.set_exception(exc)
        else:
            if not job.future.done():
                job.future.set_result(result)
        finally:
            lane = self._lanes[job.tenant.name]
            lane.inflight -= 1
            self._inflight -= 1
            self._pump(loop)

    # -- shutdown ----------------------------------------------------------

    async def drain(self) -> None:
        """Stop accepting, then wait for queues and in-flight work to
        empty — every already-admitted job still runs and answers (the
        graceful-drain contract)."""
        self._draining = True
        await self._idle.wait()
