"""The asyncio network front end: TCP JSON-lines + a minimal HTTP POST
adapter, multi-tenant, quota-checked, admission-controlled.

Wire protocol (TCP, newline-delimited JSON — a superset of the stdin
protocol of ``repro serve``)::

    {"op": "hello", "tenant": "alpha", "token": "s3cret"}
                      -> {"ok": true, "tenant": "alpha"}  (binds the
                         connection; optional when one tenant exists)
    {"id": "q1", "query": ["LA", "NYC"], "k": 5}
                      -> a SearchResponse line, or a structured
                         rejection {"id": "q1", "error": ...,
                         "rejected": true, "retry_after_seconds": r}
    {"op": "insert"|"delete"|"replace", ...}
                      -> the mutation ack (quota-checked against the
                         tenant's mutation bucket)
    {"op": "metrics"} -> the bound tenant's metrics snapshot
    {"op": "prometheus"}
                      -> the bound tenant's Prometheus exposition text
    {"op": "stats"}   -> the gateway rollup (per-tenant + totals)
    {"op": "slo"}     -> the bound tenant's burn-rate snapshot
    {"op": "explain", "query": [...], ...}
                      -> run the search (quota/admission like any
                         search) and attach the EXPLAIN report
    {"op": "flush"|"invalidate"}
                      -> tenant-scoped scheduler controls

A search line may carry ``"trace_id"`` to join the request into a
caller-owned trace; with tracing enabled (``--trace``) the gateway
opens a ``gateway.request`` root span either way and threads its
context through admission, the scheduler, the engine phases, and —
for cluster-backed tenants — across the worker wire.

Every request line may carry ``"tenant": "name"`` to address a tenant
explicitly (re-authenticated against the connection's token). Requests
on one connection are answered **in arrival order**; searches execute
concurrently, and a mutation op waits for the connection's in-flight
searches first, so earlier requests observe the pre-mutation state —
the same ordering contract ``serve_lines`` keeps on stdin.

The HTTP/1.1 adapter shares the listener: a request whose first bytes
look like an HTTP method is parsed as ``POST /`` (body = one JSON
object or many JSON lines; tenant from ``X-Repro-Tenant`` or the
``/tenant/<name>`` path; token from ``Authorization: Bearer``) or
``GET /stats``, ``GET /metrics`` (Prometheus text exposition),
``GET /healthz`` (liveness), ``GET /readyz`` (readiness — 503 while
draining, while any tenant's admission queue is saturated, while a
cluster worker is down, or while a WAL will not flush), or ``GET
/slo`` (per-tenant burn-rate snapshots). An
``X-Trace-Id`` header maps onto the ``trace_id`` field of each body
line. A single rejected request maps to ``429`` with a ``Retry-After``
header; everything else answers ``200`` with one JSON response per
line.

Shutdown (SIGINT/SIGTERM or :meth:`GatewayServer.request_shutdown`)
reuses the cluster's graceful-drain semantics: stop accepting, let
every admitted job finish and its response flush, then close each
tenant's scheduler and WAL, and return — exit code 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import GatewayError, ReproError
from repro.gateway.admission import AdmissionController, AdmissionShed
from repro.gateway.auth import AuthPolicy, policy_from_tokens
from repro.gateway.metrics import gateway_rollup
from repro.gateway.quota import MUTATION, SEARCH
from repro.gateway.tenants import Tenant, TenantRegistry
from repro.obs import PromRegistry, get_tracer
from repro.obs.adapters import cluster_to_registry, gateway_to_registry
from repro.service.request import SearchRequest, SearchResponse
from repro.service.server import control_line

_COMPACT = {"separators": (",", ":")}

#: HTTP methods the adapter recognizes on a fresh connection.
_HTTP_METHODS = (b"POST ", b"GET ", b"PUT ", b"HEAD ")

#: Ops the JSON-lines handler accepts (superset of ``serve_lines``).
_TENANT_OPS = {"metrics", "prometheus", "flush", "invalidate", "slo"}
_MUTATION_OPS = {"insert", "delete", "replace"}


def _error_line(message: str, **extra: Any) -> str:
    return json.dumps({"error": message, **extra}, **_COMPACT)


@dataclass(eq=False)  # identity semantics: connections live in sets
class _Connection:
    """Per-connection state: the bound tenant, the presented token, and
    the ordered-response machinery."""

    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    tenant: Tenant | None = None
    token: str | None = None
    out_queue: "asyncio.Queue[asyncio.Task | None]" = field(
        default_factory=asyncio.Queue
    )
    searches: list[asyncio.Task] = field(default_factory=list)

    async def drain_searches(self) -> None:
        """Wait for this connection's in-flight searches (the barrier a
        mutation op crosses so earlier requests see the old state)."""
        pending = [task for task in self.searches if not task.done()]
        if pending:
            await asyncio.wait(pending)
        self.searches.clear()


class GatewayServer:
    """The asyncio front end over a :class:`TenantRegistry`."""

    def __init__(
        self,
        registry: TenantRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        auth: AuthPolicy | None = None,
        executor_workers: int | None = None,
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self.auth = auth or policy_from_tokens(registry.auth_tokens())
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers or registry.max_inflight,
            thread_name_prefix="repro-gateway",
        )
        self.admission = AdmissionController(
            max_inflight=registry.max_inflight, executor=self._executor
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[_Connection] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._shutdown_requested = asyncio.Event()
        self._started = time.monotonic()
        # One registry for the server's lifetime: Prometheus counters
        # must be monotone across scrapes, and the set_at_least
        # projection in the adapters guarantees that only against a
        # long-lived registry.
        self._prom = PromRegistry()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener; ``self.port`` carries the real port after
        a ``port=0`` bind (tests and smoke runs)."""
        try:
            self._server = await asyncio.start_server(
                self._on_connection, host=self.host, port=self.port
            )
        except OSError as exc:
            raise GatewayError(
                f"cannot bind {self.host}:{self.port}: {exc}"
            ) from exc
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Begin the graceful drain (signal-handler safe: just an event)."""
        self._shutdown_requested.set()

    async def serve_until_shutdown(self, *, install_signals: bool = False):
        """Serve until :meth:`request_shutdown`, then drain and close."""
        if self._server is None:
            await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass  # non-unix loop: rely on KeyboardInterrupt
        try:
            await self._shutdown_requested.wait()
        finally:
            await self.shutdown()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish every admitted job and
        flush its response, then close tenant schedulers and WALs."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.admission.drain()
        # In-flight responses are being written by per-connection writer
        # tasks; give them a moment, then cut idle connections loose
        # (their readers block on clients that may never speak again).
        if self._conn_tasks:
            await asyncio.wait(self._conn_tasks, timeout=0.25)
        for conn in list(self._connections):
            conn.writer.close()
        if self._conn_tasks:
            await asyncio.wait(self._conn_tasks, timeout=5.0)
        self._executor.shutdown(wait=True)
        self.registry.close()

    # -- connection handling ----------------------------------------------

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(reader=reader, writer=writer)
        task = asyncio.get_running_loop().create_task(
            self._handle_connection(conn)
        )
        self._connections.add(conn)
        self._conn_tasks.add(task)

        def _done(finished: asyncio.Task) -> None:
            self._connections.discard(conn)
            self._conn_tasks.discard(task)
            finished.exception()  # retrieve; the handler already coped

        task.add_done_callback(_done)

    async def _handle_connection(self, conn: _Connection) -> None:
        try:
            first = await conn.reader.readline()
            if not first:
                return
            if any(first.startswith(method) for method in _HTTP_METHODS):
                await self._serve_http(conn, first)
            else:
                await self._serve_jsonl(conn, first)
        except (
            ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError
        ):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            try:
                conn.writer.close()
                await conn.writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # -- JSON-lines transport ---------------------------------------------

    async def _serve_jsonl(self, conn: _Connection, first: bytes) -> None:
        writer_task = asyncio.get_running_loop().create_task(
            self._write_ordered(conn)
        )
        try:
            line: bytes | None = first
            while line:
                await self._accept_line(conn, line)
                if self._shutdown_requested.is_set():
                    break
                line = await conn.reader.readline()
        finally:
            await conn.out_queue.put(None)
            await writer_task

    async def _write_ordered(self, conn: _Connection) -> None:
        """Emit responses in arrival order (tasks complete out of order;
        the queue restores the wire order)."""
        while True:
            task = await conn.out_queue.get()
            if task is None:
                return
            try:
                text = await task
            except Exception as exc:  # noqa: BLE001 — keep the conn alive
                text = _error_line(
                    f"internal error: {type(exc).__name__}: {exc}"
                )
            if text is None:
                continue
            try:
                conn.writer.write(text.encode("utf-8") + b"\n")
                await conn.writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                return  # client is gone; drain remaining tasks silently

    async def _accept_line(self, conn: _Connection, raw: bytes) -> None:
        """Parse one line and enqueue its (concurrent) handling."""
        loop = asyncio.get_running_loop()
        stripped = raw.strip()
        if not stripped or stripped.startswith(b"#"):
            return
        try:
            obj = json.loads(stripped)
        except json.JSONDecodeError as exc:
            obj = SearchResponse.failure(
                "parse", f"bad request JSON: {exc}"
            )
            task = loop.create_task(_immediate(obj.to_json()))
            await conn.out_queue.put(task)
            return
        if isinstance(obj, dict) and isinstance(obj.get("op"), str):
            # Ops are barriers: like serve_lines, a mutation (or any
            # control op) first waits for the connection's in-flight
            # searches, so earlier requests observe the old state.
            await conn.drain_searches()
            task = loop.create_task(self._handle_op(conn, obj))
        else:
            task = loop.create_task(self._handle_search(conn, obj))
            conn.searches.append(task)
        await conn.out_queue.put(task)

    # -- tenant resolution -------------------------------------------------

    def _resolve_tenant(
        self, conn: _Connection, obj: dict | None
    ) -> Tenant | str:
        """The tenant a request addresses, or an error line (str)."""
        name = None
        if isinstance(obj, dict):
            raw_name = obj.get("tenant")
            if raw_name is not None:
                if not isinstance(raw_name, str):
                    return _error_line('"tenant" must be a string')
                name = raw_name
        if name is None:
            if conn.tenant is not None:
                return conn.tenant
            sole = self.registry.sole_tenant
            if sole is None:
                return _error_line(
                    'tenant required: bind one with {"op": "hello", '
                    '"tenant": ...} or add a "tenant" field '
                    f"(configured: {self.registry.names})"
                )
            tenant = sole
        else:
            found = self.registry.get(name)
            if found is None:
                return _error_line(
                    f"unknown tenant {name!r} "
                    f"(configured: {self.registry.names})"
                )
            tenant = found
        if not self.auth.authenticate(tenant.name, conn.token):
            tenant.metrics.record_rejected()
            return _error_line(
                f"authentication failed for tenant {tenant.name!r}",
                auth=False,
            )
        return tenant

    # -- request handlers --------------------------------------------------

    async def _handle_search(self, conn: _Connection, obj: Any) -> str:
        tracer = get_tracer()
        if not tracer.enabled:
            return await self._answer_search(conn, obj, root=None)
        # The root span of the whole request tree. A client-supplied
        # trace_id (the line's "trace_id" field; the HTTP adapter maps
        # X-Trace-Id onto it) joins the gateway into the caller's
        # trace; otherwise a fresh one is issued here.
        trace_id = None
        if isinstance(obj, dict):
            raw = obj.get("trace_id")
            if isinstance(raw, str) and raw:
                trace_id = raw
        with tracer.span("gateway.request", trace_id=trace_id) as root:
            return await self._answer_search(conn, obj, root=root)

    async def _answer_search(
        self, conn: _Connection, obj: Any, *, root: Any
    ) -> str:
        try:
            request = SearchRequest.from_obj(
                {k: v for k, v in obj.items() if k != "tenant"}
                if isinstance(obj, dict)
                else obj
            )
        except ReproError as exc:
            if root is not None:
                root.annotate(outcome="parse_error")
            return SearchResponse.failure("parse", str(exc)).to_json()
        resolved = self._resolve_tenant(
            conn, obj if isinstance(obj, dict) else None
        )
        if isinstance(resolved, str):
            if root is not None:
                root.annotate(outcome="tenant_error")
            return resolved
        tenant = resolved
        trace_context = None
        if root is not None:
            root.annotate(tenant=tenant.name, request_id=request.request_id)
            # Downstream layers (admission queue, scheduler, engine,
            # cluster) parent under the gateway's root span; the
            # context rides the request object (never its equality).
            trace_context = root.context
            request = replace(request, trace=trace_context)
        rejection = tenant.quota.check(SEARCH)
        if rejection is not None:
            tenant.metrics.record_rejected()
            if root is not None:
                root.annotate(outcome="rejected")
            return json.dumps(
                rejection.to_obj(request.request_id), **_COMPACT
            )
        scheduler = tenant.scheduler
        try:
            response = await self.admission.submit(
                tenant,
                lambda: scheduler.answer(request),
                trace=trace_context,
            )
        except AdmissionShed as shed:
            if root is not None:
                root.annotate(outcome="shed")
            return json.dumps(
                {
                    "id": request.request_id,
                    "error": "request shed under load",
                    "rejected": True,
                    "shed": True,
                    "retry_after_seconds": round(
                        shed.retry_after_seconds, 6
                    ),
                },
                **_COMPACT,
            )
        except ReproError as exc:
            if root is not None:
                root.annotate(outcome="error")
            return SearchResponse.failure(
                request.request_id, str(exc)
            ).to_json()
        return response.to_json()

    async def _handle_op(self, conn: _Connection, obj: dict) -> str:
        op = obj["op"]
        if op == "hello":
            return self._handle_hello(conn, obj)
        if op == "stats":
            return json.dumps(self.stats(), **_COMPACT)
        if op == "explain":
            # A real search wearing an op hat: route it through the
            # search path so quota, admission, and tracing all apply.
            spec = {key: value for key, value in obj.items() if key != "op"}
            spec["explain"] = True
            return await self._handle_search(conn, spec)
        resolved = self._resolve_tenant(conn, obj)
        if isinstance(resolved, str):
            return resolved
        tenant = resolved
        scheduler = tenant.scheduler
        if op in _MUTATION_OPS:
            rejection = tenant.quota.check(MUTATION)
            if rejection is not None:
                tenant.metrics.record_rejected()
                return json.dumps(rejection.to_obj(), **_COMPACT)
            try:
                return await self.admission.submit(
                    tenant, lambda: control_line(scheduler, obj)
                )
            except AdmissionShed as shed:
                return json.dumps(
                    {
                        "error": "mutation shed under load",
                        "op": op,
                        "rejected": True,
                        "shed": True,
                        "retry_after_seconds": round(
                            shed.retry_after_seconds, 6
                        ),
                    },
                    **_COMPACT,
                )
        if op in _TENANT_OPS:
            # Cheap scheduler controls: total by construction (the
            # hardened _control_line never raises).
            return control_line(scheduler, obj)
        return _error_line(f"unknown op: {op}", op=op)

    def _handle_hello(self, conn: _Connection, obj: dict) -> str:
        name = obj.get("tenant")
        if not isinstance(name, str):
            sole = self.registry.sole_tenant
            if sole is None:
                return _error_line(
                    'hello needs a "tenant" name '
                    f"(configured: {self.registry.names})"
                )
            name = sole.name
        tenant = self.registry.get(name)
        if tenant is None:
            return _error_line(
                f"unknown tenant {name!r} "
                f"(configured: {self.registry.names})"
            )
        token = obj.get("token")
        if token is not None and not isinstance(token, str):
            return _error_line('"token" must be a string')
        if not self.auth.authenticate(name, token):
            tenant.metrics.record_rejected()
            return _error_line(
                f"authentication failed for tenant {name!r}", auth=False
            )
        conn.tenant = tenant
        conn.token = token
        return json.dumps({"ok": True, "tenant": name}, **_COMPACT)

    def stats(self) -> dict:
        """The gateway rollup (the ``stats`` op and ``GET /stats``)."""
        return gateway_rollup(
            self.registry,
            extra={
                "gateway": {
                    "uptime_seconds": round(
                        time.monotonic() - self._started, 6
                    ),
                    "inflight": self.admission.inflight,
                    "connections": len(self._connections),
                    "max_inflight": self.registry.max_inflight,
                }
            },
        )

    def slo(self) -> dict:
        """Per-tenant SLO snapshots (``GET /slo`` and ``{"op": "slo"}``
        without a bound tenant answer the whole fleet)."""
        tenants = {
            tenant.name: tenant.metrics.slo.snapshot()
            for tenant in self.registry
        }
        return {
            "tenants": tenants,
            "alerting": any(t["alerting"] for t in tenants.values()),
        }

    def readiness(self) -> dict:
        """Can this gateway usefully accept work right now?

        Degrades *before* errors surface: a dead cluster worker or a
        saturated admission queue flips ``ready`` even though the next
        request might still be served (by restart-on-demand or shed
        respectively) — that request would pay the repair latency or be
        dropped, which is exactly what a load balancer should route
        around. Checks: not draining, every tenant's admission queue
        below its bound, every cluster worker alive (observed without
        restarting — see ``ClusterPool.liveness``), and every WAL
        flushable.
        """
        checks: dict[str, Any] = {
            "accepting": not self._shutdown_requested.is_set(),
        }
        saturated = []
        workers_down = []
        wal_failed = []
        for tenant in self.registry:
            if tenant.metrics.queue_depth >= tenant.spec.max_queue_depth:
                saturated.append(tenant.name)
            liveness = getattr(tenant.scheduler.pool, "liveness", None)
            if callable(liveness):
                for status in liveness():
                    if not status["alive"]:
                        worker = status.get(
                            "worker", status["worker_id"]
                        )
                        workers_down.append(
                            f"{tenant.name}/worker-{worker}"
                        )
            wal = tenant.stack.wal
            if wal is not None:
                try:
                    wal.flush()
                except OSError:
                    wal_failed.append(tenant.name)
        checks["queues_unsaturated"] = not saturated
        if saturated:
            checks["saturated_tenants"] = saturated
        checks["cluster_workers_alive"] = not workers_down
        if workers_down:
            checks["workers_down"] = workers_down
        checks["wal_flushable"] = not wal_failed
        if wal_failed:
            checks["wal_failed_tenants"] = wal_failed
        ready = (
            checks["accepting"]
            and checks["queues_unsaturated"]
            and checks["cluster_workers_alive"]
            and checks["wal_flushable"]
        )
        return {"ready": ready, "checks": checks}

    def prometheus_text(self) -> str:
        """The Prometheus exposition (``GET /metrics``): every tenant's
        scheduler metrics, quota balances, and — for tenants served by
        a cluster backend — the fleet rollup and per-worker counters."""
        gateway_to_registry(
            self._prom, self.registry, connections=len(self._connections)
        )
        for tenant in self.registry:
            cluster_metrics = getattr(
                tenant.scheduler.pool, "cluster_metrics", None
            )
            if callable(cluster_metrics):
                cluster_to_registry(
                    self._prom,
                    cluster_metrics().snapshot(),
                    tenant=tenant.name,
                )
        return self._prom.render()

    # -- HTTP adapter ------------------------------------------------------

    async def _serve_http(self, conn: _Connection, first: bytes) -> None:
        try:
            parts = first.decode("latin-1").split()
            method, target = parts[0].upper(), parts[1]
        except (IndexError, UnicodeDecodeError):
            await _http_reply(conn, 400, [_error_line("bad request line")])
            return
        headers: dict[str, str] = {}
        while True:
            raw = await conn.reader.readline()
            if not raw.strip():
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        auth_header = headers.get("authorization", "")
        if auth_header.lower().startswith("bearer "):
            conn.token = auth_header[7:].strip()
        tenant_name = headers.get("x-repro-tenant")
        path = target.split("?", 1)[0]
        if tenant_name is None and path.startswith("/tenant/"):
            tenant_name = path[len("/tenant/"):].strip("/")
        if method == "GET":
            if path in ("/stats", "/"):
                await _http_reply(
                    conn, 200, [json.dumps(self.stats(), **_COMPACT)]
                )
            elif path == "/metrics":
                await _http_reply(
                    conn,
                    200,
                    [self.prometheus_text().rstrip("\n")],
                    content_type=PromRegistry.CONTENT_TYPE,
                )
            elif path == "/healthz":
                # Liveness: the event loop answered; nothing else to
                # prove (readiness is the demanding probe).
                await _http_reply(
                    conn,
                    200,
                    [json.dumps(
                        {
                            "ok": True,
                            "uptime_seconds": round(
                                time.monotonic() - self._started, 6
                            ),
                        },
                        **_COMPACT,
                    )],
                )
            elif path == "/readyz":
                readiness = self.readiness()
                await _http_reply(
                    conn,
                    200 if readiness["ready"] else 503,
                    [json.dumps(readiness, **_COMPACT)],
                )
            elif path == "/slo":
                await _http_reply(
                    conn, 200, [json.dumps(self.slo(), **_COMPACT)]
                )
            else:
                await _http_reply(
                    conn, 404, [_error_line(f"no such resource: {path}")]
                )
            return
        if method != "POST":
            await _http_reply(
                conn, 405, [_error_line(f"method {method} not allowed")]
            )
            return
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            await _http_reply(
                conn, 400, [_error_line("bad Content-Length")]
            )
            return
        body = (
            await conn.reader.readexactly(length) if length else b""
        )
        if tenant_name is not None:
            resolved = self._resolve_tenant(conn, {"tenant": tenant_name})
            if isinstance(resolved, str):
                status = 401 if '"auth":false' in resolved else 404
                await _http_reply(conn, status, [resolved])
                return
            conn.tenant = resolved
        trace_header = headers.get("x-trace-id")
        lines = [ln for ln in body.splitlines() if ln.strip()]
        responses: list[str] = []
        for raw_line in lines:
            try:
                obj = json.loads(raw_line)
            except json.JSONDecodeError as exc:
                responses.append(
                    SearchResponse.failure(
                        "parse", f"bad request JSON: {exc}"
                    ).to_json()
                )
                continue
            if isinstance(obj, dict) and isinstance(obj.get("op"), str):
                responses.append(await self._handle_op(conn, obj))
            else:
                if (
                    trace_header
                    and isinstance(obj, dict)
                    and "trace_id" not in obj
                ):
                    # X-Trace-Id maps onto the wire-level trace_id
                    # field, so both transports share one join rule.
                    obj["trace_id"] = trace_header
                responses.append(await self._handle_search(conn, obj))
        status = 200
        retry_after: float | None = None
        warning: str | None = None
        degraded_ids: list[str] = []
        for response in responses:
            try:
                decoded = json.loads(response)
            except json.JSONDecodeError:
                continue
            if not isinstance(decoded, dict):
                continue
            if len(responses) == 1 and decoded.get("rejected"):
                status = 429
                retry_after = decoded.get("retry_after_seconds")
            if decoded.get("degraded"):
                degraded_ids.append(str(decoded.get("id")))
        if degraded_ids:
            # RFC 7234-style Warning: the answer is valid but partial
            # (>= 1 partition had no live replica). Status stays 200 —
            # the body says which requests, the header lets a proxy or
            # client flag the response without parsing it.
            warning = (
                '214 repro-gateway "degraded: partial partition '
                f'coverage ({", ".join(degraded_ids)})"'
            )
        await _http_reply(
            conn, status, responses,
            retry_after=retry_after, warning=warning,
        )


async def _immediate(text: str) -> str:
    return text


_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    503: "Service Unavailable",
}


async def _http_reply(
    conn: _Connection,
    status: int,
    lines: list[str],
    *,
    retry_after: float | None = None,
    warning: str | None = None,
    content_type: str = "application/json",
) -> None:
    body = ("\n".join(lines) + "\n").encode("utf-8")
    reason = _HTTP_REASONS.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
    )
    if retry_after is not None:
        head += f"Retry-After: {max(1, round(retry_after))}\r\n"
    if warning is not None:
        head += f"Warning: {warning}\r\n"
    conn.writer.write(head.encode("latin-1") + b"\r\n" + body)
    await conn.writer.drain()


async def run_gateway(
    registry: TenantRegistry,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    auth: AuthPolicy | None = None,
    executor_workers: int | None = None,
    ready: "asyncio.Event | None" = None,
    announce=None,
) -> GatewayServer:
    """Start a gateway, announce its port, serve until shutdown.

    ``announce(server)`` (if given) runs once the port is bound —
    the CLI prints the listen line there, tests capture the port.
    ``ready`` is set at the same moment for in-process callers.
    """
    server = GatewayServer(
        registry,
        host=host,
        port=port,
        auth=auth,
        executor_workers=executor_workers,
    )
    await server.start()
    if announce is not None:
        announce(server)
    if ready is not None:
        ready.set()
    await server.serve_until_shutdown(install_signals=True)
    return server
