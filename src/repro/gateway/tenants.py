"""Multi-tenant collections: the gateway's tenant registry.

One *tenant* is one named, fully isolated serving stack: its own
collection (JSON/CSV/snapshot), its own optional write-ahead log, its
own engine pool and scheduler, its own quotas and admission queue — and
its own cache *namespace* inside the gateway's one shared
:class:`~repro.service.cache.ResultCache`. Sharing the cache pools its
capacity across tenants while the namespace tag in every key (see
``QueryScheduler(cache_namespace=...)``) keeps entries unreachable
across tenant boundaries: tenant A's mutations bump only A's version
component, so B's warm results survive untouched.

The registry is built from a JSON config file::

    {
      "cache_size": 4096,            # shared across tenants (0 = off)
      "max_inflight": 8,             # global admission cap
      "tenants": [
        {
          "name": "alpha",
          "collection": "alpha.snap",      # .json / .csv / .snap
          "wal": "alpha.wal",              # optional durability
          "alpha": 0.8,                    # + jaccard/dim/engine/iub_mode
          "shards": 1, "workers": 1, "max_batch": 8,
          "cluster_workers": 2,            # optional multi-process backend
          "qps": 50, "burst": 10,          # search token bucket
          "mutations_per_second": 5, "mutation_burst": 5,
          "max_queue_depth": 64,           # admission queue bound
          "max_inflight": 4,               # optional per-tenant cap
          "auth_token": "s3cret",          # optional bearer token
          "slo": {"availability": 0.999,   # optional objectives (a
                  "latency_p99_ms": 250}   #  top-level "slo" block is
        }                                  #  the fleet-wide default)
      ]
    }

Malformed configuration raises
:class:`~repro.errors.TenantConfigError` before anything binds a port.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping

from repro.errors import InvalidParameterError, TenantConfigError
from repro.gateway.quota import TenantQuota
from repro.obs.slo import SLOMonitor
from repro.service.bootstrap import ServingStack, build_serving_stack
from repro.service.cache import ResultCache
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import QueryScheduler

#: Spec fields accepted from the config file (anything else is a loud
#: error — silently ignored keys hide typos like "pqs" forever).
_SPEC_KEYS = {
    "name", "collection", "wal", "alpha", "jaccard", "dim", "engine",
    "iub_mode", "shards", "workers", "max_batch", "qps", "burst",
    "mutations_per_second", "mutation_burst", "max_queue_depth",
    "max_inflight", "auth_token", "cluster_workers", "slo",
}


@dataclass(frozen=True)
class TenantSpec:
    """Everything the config file may say about one tenant."""

    name: str
    collection: str
    wal: str | None = None
    alpha: float = 0.8
    jaccard: bool = False
    dim: int = 64
    engine: str = "columnar"
    iub_mode: str = "paper"
    shards: int = 1
    workers: int = 1
    max_batch: int = 8
    qps: float | None = None
    burst: float | None = None
    mutations_per_second: float | None = None
    mutation_burst: float | None = None
    max_queue_depth: int = 64
    max_inflight: int | None = None
    auth_token: str | None = None
    #: Serve this tenant over a multi-process cluster backend with this
    #: many worker processes (None = in-process engine pool).
    cluster_workers: int | None = None
    #: SLO objectives (``{"availability": ..., "latency_p99_ms": ...,
    #: "latency_ratio": ...}``); None inherits the gateway-level "slo"
    #: block, or the monitor's defaults when neither is given.
    slo: Mapping | None = None

    def __post_init__(self) -> None:
        if self.slo is not None and not isinstance(self.slo, Mapping):
            raise TenantConfigError(
                f"tenant {self.name!r}: \"slo\" must be an object"
            )
        if not self.name or not isinstance(self.name, str):
            raise TenantConfigError("tenant needs a non-empty string name")
        if not self.collection:
            raise TenantConfigError(
                f"tenant {self.name!r} needs a collection path"
            )
        if self.max_queue_depth < 1:
            raise TenantConfigError(
                f"tenant {self.name!r}: max_queue_depth must be >= 1"
            )
        if self.max_inflight is not None and self.max_inflight < 1:
            raise TenantConfigError(
                f"tenant {self.name!r}: max_inflight must be >= 1"
            )
        if self.cluster_workers is not None and self.cluster_workers < 1:
            raise TenantConfigError(
                f"tenant {self.name!r}: cluster_workers must be >= 1"
            )
        for rate_field in (
            "qps", "burst", "mutations_per_second", "mutation_burst"
        ):
            value = getattr(self, rate_field)
            if value is not None and value <= 0:
                raise TenantConfigError(
                    f"tenant {self.name!r}: {rate_field} must be positive "
                    f"(omit it for unlimited)"
                )

    @classmethod
    def from_obj(cls, obj: object) -> "TenantSpec":
        if not isinstance(obj, dict):
            raise TenantConfigError(
                f"each tenant must be a JSON object, got {type(obj).__name__}"
            )
        unknown = set(obj) - _SPEC_KEYS
        if unknown:
            raise TenantConfigError(
                f"unknown tenant config keys: {sorted(unknown)} "
                f"(known: {sorted(_SPEC_KEYS)})"
            )
        try:
            return cls(**obj)
        except TypeError as exc:
            raise TenantConfigError(f"bad tenant config: {exc}") from exc


@dataclass
class Tenant:
    """One live tenant: its serving stack plus gateway-side state."""

    spec: TenantSpec
    stack: ServingStack
    quota: TenantQuota
    metrics: ServiceMetrics = field(init=False)

    def __post_init__(self) -> None:
        self.metrics = self.scheduler.metrics

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def scheduler(self) -> QueryScheduler:
        return self.stack.scheduler

    def stats(self) -> dict:
        """This tenant's rollup row: the scheduler's metrics snapshot
        (which already carries accepted/rejected/shed/queue-depth and
        latency quantiles) plus backend identity."""
        snapshot = dict(self.metrics.snapshot())
        snapshot["tenant"] = self.name
        snapshot["slo_alerting"] = self.metrics.slo.alerting
        backend_stats = getattr(
            self.scheduler.pool, "stats_snapshot", None
        )
        if callable(backend_stats):
            snapshot["backend"] = backend_stats()
        return snapshot

    def close(self) -> None:
        self.stack.close()


class TenantRegistry:
    """The gateway's named-tenant table.

    Builds every tenant's stack up front (a gateway that cannot load a
    tenant should fail at start, not at first request) around one
    shared result cache, and owns their shutdown order on the way out.
    """

    def __init__(
        self,
        tenants: Iterable[Tenant],
        *,
        cache: ResultCache | None = None,
        max_inflight: int = 8,
    ) -> None:
        self._tenants: dict[str, Tenant] = {}
        for tenant in tenants:
            if tenant.name in self._tenants:
                raise TenantConfigError(
                    f"duplicate tenant name: {tenant.name!r}"
                )
            self._tenants[tenant.name] = tenant
        if not self._tenants:
            raise TenantConfigError("gateway needs at least one tenant")
        self.cache = cache
        self.max_inflight = max_inflight

    # -- lookup ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self):
        return iter(self._tenants.values())

    @property
    def names(self) -> list[str]:
        return list(self._tenants)

    def get(self, name: str) -> Tenant | None:
        return self._tenants.get(name)

    @property
    def sole_tenant(self) -> Tenant | None:
        """The implicit default when exactly one tenant is configured
        (single-tenant deployments shouldn't need a ``hello``)."""
        if len(self._tenants) == 1:
            return next(iter(self._tenants.values()))
        return None

    def auth_tokens(self) -> dict[str, str]:
        """Per-tenant bearer tokens declared in the config."""
        return {
            tenant.name: tenant.spec.auth_token
            for tenant in self
            if tenant.spec.auth_token is not None
        }

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drain every tenant's scheduler and flush/close its WAL."""
        for tenant in self:
            tenant.close()

    def __enter__(self) -> "TenantRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_config(
        cls,
        config: Mapping | str | Path,
        *,
        base_dir: str | Path | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "TenantRegistry":
        """Build a registry from a config mapping or a JSON file path.

        Relative collection/WAL paths resolve against ``base_dir``
        (defaulting to the config file's directory, so a config ships
        next to its snapshots).
        """
        if isinstance(config, (str, Path)):
            path = Path(config)
            if base_dir is None:
                base_dir = path.parent
            try:
                config = json.loads(path.read_text(encoding="utf-8"))
            except OSError as exc:
                raise TenantConfigError(
                    f"cannot read tenant config {path}: {exc}"
                ) from exc
            except json.JSONDecodeError as exc:
                raise TenantConfigError(
                    f"tenant config {path} is not valid JSON: {exc}"
                ) from exc
        if not isinstance(config, Mapping):
            raise TenantConfigError("tenant config must be a JSON object")
        known = {"tenants", "cache_size", "max_inflight", "slo"}
        unknown = set(config) - known
        if unknown:
            raise TenantConfigError(
                f"unknown gateway config keys: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        specs_obj = config.get("tenants")
        if not isinstance(specs_obj, list) or not specs_obj:
            raise TenantConfigError(
                'tenant config needs a non-empty "tenants" list'
            )
        specs = [TenantSpec.from_obj(obj) for obj in specs_obj]
        slo_default = config.get("slo")
        if slo_default is not None and not isinstance(slo_default, Mapping):
            raise TenantConfigError('gateway "slo" must be an object')
        cache_size = config.get("cache_size", 1024)
        if not isinstance(cache_size, int) or isinstance(cache_size, bool):
            raise TenantConfigError("cache_size must be an integer")
        max_inflight = config.get("max_inflight", 8)
        if (
            not isinstance(max_inflight, int)
            or isinstance(max_inflight, bool)
            or max_inflight < 1
        ):
            raise TenantConfigError("max_inflight must be an integer >= 1")
        return cls.build(
            specs,
            cache_size=cache_size,
            max_inflight=max_inflight,
            base_dir=base_dir,
            clock=clock,
            slo_default=slo_default,
        )

    @classmethod
    def build(
        cls,
        specs: Iterable[TenantSpec],
        *,
        cache_size: int = 1024,
        max_inflight: int = 8,
        base_dir: str | Path | None = None,
        clock: Callable[[], float] = time.monotonic,
        slo_default: Mapping | None = None,
    ) -> "TenantRegistry":
        """Wire every spec into a live tenant around one shared cache."""
        cache = ResultCache(capacity=cache_size) if cache_size else None
        tenants = []
        try:
            for spec in specs:
                tenants.append(
                    build_tenant(spec, cache=cache, base_dir=base_dir,
                                 clock=clock, slo_default=slo_default)
                )
        except Exception:
            for tenant in tenants:
                tenant.close()
            raise
        return cls(tenants, cache=cache, max_inflight=max_inflight)


def _resolve(path: str, base_dir: str | Path | None) -> str:
    if base_dir is None:
        return path
    candidate = Path(path)
    if candidate.is_absolute():
        return path
    return str(Path(base_dir) / candidate)


def build_tenant(
    spec: TenantSpec,
    *,
    cache: ResultCache | None = None,
    base_dir: str | Path | None = None,
    clock: Callable[[], float] = time.monotonic,
    slo_default: Mapping | None = None,
) -> Tenant:
    """One tenant's full serving stack from its spec.

    The stack construction is the shared
    :func:`~repro.service.bootstrap.build_serving_stack` — byte-for-byte
    the pipeline ``repro serve`` uses, so a tenant behind the gateway
    answers exactly what a dedicated server over the same collection
    would. The tenant's name becomes its cache namespace. The SLO
    monitor shares the registry clock (the one the token buckets use),
    so tests drive quota refills and burn-rate windows together.
    """
    slo_spec = spec.slo if spec.slo is not None else slo_default
    try:
        monitor = SLOMonitor.from_spec(slo_spec, clock=clock)
    except InvalidParameterError as exc:
        raise TenantConfigError(
            f"tenant {spec.name!r}: bad slo spec: {exc}"
        ) from exc
    metrics = ServiceMetrics(slo=monitor)
    stack = build_serving_stack(
        _resolve(spec.collection, base_dir),
        alpha=spec.alpha,
        jaccard=spec.jaccard,
        dim=spec.dim,
        iub_mode=spec.iub_mode,
        engine=spec.engine,
        shards=spec.shards,
        workers=spec.workers,
        max_batch=spec.max_batch,
        cache=cache,
        cache_size=None,
        wal_path=(
            None if spec.wal is None else _resolve(spec.wal, base_dir)
        ),
        cache_namespace=spec.name,
        cluster_workers=spec.cluster_workers,
        metrics=metrics,
    )
    quota = TenantQuota(
        search_rate=spec.qps,
        search_burst=spec.burst,
        mutation_rate=spec.mutations_per_second,
        mutation_burst=spec.mutation_burst,
        clock=clock,
    )
    return Tenant(spec=spec, stack=stack, quota=quota)
