"""Per-tenant rate limiting: token buckets refilled on the event loop.

A :class:`TokenBucket` is the classic leaky-bucket dual — ``rate``
tokens per second of sustained budget plus ``burst`` tokens of
headroom. Acquisition is non-blocking by design: the gateway never
holds a connection hostage waiting for budget. An exhausted bucket
answers with *how long until one token exists*, which travels to the
client verbatim as the ``retry_after_seconds`` field of a structured
``429``-style rejection — the retry-after contract of
``docs/gateway.md``.

Buckets refill lazily on a caller-supplied monotonic clock (injectable
for deterministic tests), so there is no refill task to schedule and a
bucket costs nothing while its tenant is idle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import InvalidParameterError

#: Quota kinds a tenant carries — searches and mutations are budgeted
#: independently (a bulk loader must not starve its own queries).
SEARCH = "search"
MUTATION = "mutation"


class TokenBucket:
    """A lazily refilled token bucket.

    Parameters
    ----------
    rate:
        Sustained tokens per second. ``None`` (or ``<= 0`` is rejected;
        use ``None``) disables limiting — every acquire succeeds.
    burst:
        Bucket capacity: how many tokens may be spent instantaneously
        above the sustained rate. Defaults to ``max(rate, 1)`` so a
        1-QPS tenant can still send its one request without shaping.
    clock:
        Monotonic seconds source (injected by tests).
    """

    def __init__(
        self,
        rate: float | None,
        burst: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise InvalidParameterError(
                "token-bucket rate must be positive (use None to disable "
                "limiting)"
            )
        if burst is not None and burst <= 0:
            raise InvalidParameterError("token-bucket burst must be positive")
        self._rate = rate
        self._burst = (
            None if rate is None else float(burst if burst else max(rate, 1.0))
        )
        self._clock = clock
        self._tokens = self._burst
        self._refilled_at = clock()

    @property
    def unlimited(self) -> bool:
        return self._rate is None

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._refilled_at
        self._refilled_at = now
        if elapsed > 0:
            self._tokens = min(
                self._burst, self._tokens + elapsed * self._rate
            )

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Spend ``tokens`` if available.

        Returns ``0.0`` on success, else the seconds until the bucket
        will hold ``tokens`` again (the wire's ``retry_after_seconds``).
        Never blocks; never goes negative.
        """
        if self._rate is None:
            return 0.0
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self._rate

    def available(self) -> float:
        """Current token balance (refills first); ``inf`` if unlimited."""
        if self._rate is None:
            return float("inf")
        self._refill()
        return self._tokens


@dataclass(frozen=True)
class QuotaRejection:
    """A structured refusal: which budget ran out and when to retry.

    This is *data*, not an exception — rejections are the normal
    operating mode of an overloaded gateway, and they flow through the
    response path like any other line.
    """

    kind: str
    retry_after_seconds: float

    def to_obj(self, request_id: str | None = None) -> dict:
        obj = {
            "error": f"{self.kind} quota exhausted",
            "rejected": True,
            "retry_after_seconds": round(self.retry_after_seconds, 6),
        }
        if request_id is not None:
            obj["id"] = request_id
        return obj


class TenantQuota:
    """The two budgets one tenant holds: searches and mutations.

    ``check(kind)`` returns ``None`` when admitted or a
    :class:`QuotaRejection` carrying the bucket's retry-after. A bucket
    configured with ``rate=None`` admits everything of its kind.
    """

    def __init__(
        self,
        *,
        search_rate: float | None = None,
        search_burst: float | None = None,
        mutation_rate: float | None = None,
        mutation_burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._buckets = {
            SEARCH: TokenBucket(search_rate, search_burst, clock=clock),
            MUTATION: TokenBucket(mutation_rate, mutation_burst, clock=clock),
        }
        self._search_rate = search_rate

    def available(self, kind: str) -> float:
        """Current token balance for ``kind`` (``inf`` when unlimited)
        — the gateway's per-tenant quota gauges read this."""
        bucket = self._buckets.get(kind)
        if bucket is None:
            raise InvalidParameterError(f"unknown quota kind: {kind!r}")
        return bucket.available()

    def check(self, kind: str) -> QuotaRejection | None:
        bucket = self._buckets.get(kind)
        if bucket is None:
            raise InvalidParameterError(f"unknown quota kind: {kind!r}")
        retry_after = bucket.try_acquire()
        if retry_after == 0.0:
            return None
        return QuotaRejection(kind=kind, retry_after_seconds=retry_after)

    def shed_retry_after(self, queue_depth: int) -> float:
        """The retry hint attached to a load-shed response: roughly how
        long the current backlog takes to drain at the sustained rate
        (bounded below so clients never busy-spin), or a flat beat when
        the tenant is unlimited and simply outran the executor."""
        if self._search_rate:
            return max(0.05, queue_depth / self._search_rate)
        return max(0.05, 0.01 * queue_depth)
