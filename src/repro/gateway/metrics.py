"""Gateway observability: the per-tenant rollup behind the ``stats`` op.

Each tenant's :class:`~repro.service.metrics.ServiceMetrics` already
carries the full serving schema — accepted/completed/rejected/shed
counters, queue-depth gauge and peak, latency p50/p95/p99, cache and
batching rates — because the gateway records admission outcomes into
the *same* object the scheduler times requests into. The rollup here
is therefore a projection, not a second bookkeeping system: one row per
tenant (``Tenant.stats()``), plus totals summed across the fleet, in
exactly the schema the in-process ``stats`` wire op of ``repro serve``
emits per field.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover — import cycle guard only
    from repro.gateway.tenants import Tenant

#: Counter fields summed into the gateway-wide totals row.
_TOTAL_FIELDS = (
    "requests",
    "completed",
    "errors",
    "rejected",
    "shed",
    "queue_depth",
    "cache_hits",
    "deduplicated",
)


def gateway_rollup(
    tenants: "Iterable[Tenant]", *, extra: dict | None = None
) -> dict:
    """The ``{"op": "stats"}`` payload: per-tenant rows + fleet totals.

    Each row carries the tenant's resource-accounting snapshot (its
    scheduler metrics embed the ledger) and its SLO alert flag; the
    totals section sums the ledgers fleet-wide so a capacity view needs
    no client-side arithmetic.
    """
    rows = [tenant.stats() for tenant in tenants]
    totals: dict = {name: 0 for name in _TOTAL_FIELDS}
    resource_totals: dict = {}
    worst_p99 = 0.0
    alerting = False
    for row in rows:
        for name in _TOTAL_FIELDS:
            totals[name] += row.get(name, 0)
        for name, value in row.get("resources", {}).items():
            resource_totals[name] = resource_totals.get(name, 0) + value
        worst_p99 = max(worst_p99, row.get("latency_p99", 0.0))
        alerting = alerting or bool(row.get("slo_alerting"))
    totals["latency_p99_worst"] = worst_p99
    payload = {
        "backend": "gateway",
        "tenants": {row["tenant"]: row for row in rows},
        "totals": totals,
        "resources": resource_totals,
        "slo_alerting": alerting,
    }
    if extra:
        payload.update(extra)
    return payload
