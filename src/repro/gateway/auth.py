"""Pluggable per-connection authentication.

The gateway authenticates a connection *to a tenant*: the ``hello``
wire op (or the HTTP ``Authorization`` header) presents an optional
bearer token, and the policy decides whether that token may act as the
named tenant. The default is :class:`AllowAll` — a gateway whose config
declares no ``auth_token`` anywhere behaves exactly like the local
``repro serve`` loop, just over a socket.

Policies are deliberately tiny objects satisfying :class:`AuthPolicy`;
a deployment embedding the gateway as a library can hand
:class:`GatewayServer` anything with an ``authenticate`` method (an
LDAP hook, a JWT verifier, ...). What the gateway guarantees is only
*where* the hook runs: once per tenant binding, before any quota or
admission work is spent on the connection.
"""

from __future__ import annotations

import hmac
from typing import Mapping, Protocol, runtime_checkable


@runtime_checkable
class AuthPolicy(Protocol):
    """Decides whether ``token`` may act as ``tenant``."""

    def authenticate(self, tenant: str, token: str | None) -> bool:
        ...


class AllowAll:
    """The default policy: every connection may act as every tenant."""

    def authenticate(self, tenant: str, token: str | None) -> bool:
        return True


class StaticTokenAuth:
    """Per-tenant shared-secret tokens (the config's ``auth_token``).

    Tenants absent from the mapping are open (their spec declared no
    token); tenants present require an exact match, compared in
    constant time. A ``None`` token never matches a required one.
    """

    def __init__(self, tokens: Mapping[str, str]) -> None:
        self._tokens = dict(tokens)

    def authenticate(self, tenant: str, token: str | None) -> bool:
        expected = self._tokens.get(tenant)
        if expected is None:
            return True
        if token is None:
            return False
        return hmac.compare_digest(expected, token)


def policy_from_tokens(tokens: Mapping[str, str]) -> AuthPolicy:
    """The policy implied by a config: token-checking when any tenant
    declared an ``auth_token``, allow-all otherwise."""
    if tokens:
        return StaticTokenAuth(tokens)
    return AllowAll()
