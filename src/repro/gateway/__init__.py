"""The multi-tenant network front end (``repro gateway serve``).

Puts a real socket in front of the serving stack::

    asyncio TCP/HTTP listener
        -> auth hook (per connection)
        -> tenant registry (named collections; own snapshot/WAL/cache
           namespace per tenant)
        -> token-bucket quotas (QPS + mutation rate, retry-after on
           rejection)
        -> admission control (bounded per-tenant queues, oldest-first
           load shedding, global in-flight cap, round-robin dispatch)
        -> run_in_executor -> QueryScheduler -> EnginePool / ClusterPool

* :class:`TenantRegistry` / :class:`TenantSpec` / :class:`Tenant` —
  named, isolated serving stacks from one JSON config
* :class:`TokenBucket` / :class:`TenantQuota` — event-loop-refilled
  rate limits with structured ``retry_after_seconds`` rejections
* :class:`AdmissionController` — backpressure and fairness
* :class:`AuthPolicy` / :class:`AllowAll` / :class:`StaticTokenAuth` —
  pluggable per-connection token checks
* :class:`GatewayServer` / :func:`run_gateway` — the asyncio server
  (JSON-lines TCP + minimal HTTP/1.1 POST adapter, graceful drain)
* :func:`gateway_rollup` — the per-tenant ``stats`` projection

See ``docs/gateway.md`` for the wire protocol and semantics.
"""

from repro.gateway.admission import AdmissionController, AdmissionShed
from repro.gateway.auth import (
    AllowAll,
    AuthPolicy,
    StaticTokenAuth,
    policy_from_tokens,
)
from repro.gateway.metrics import gateway_rollup
from repro.gateway.quota import (
    MUTATION,
    SEARCH,
    QuotaRejection,
    TenantQuota,
    TokenBucket,
)
from repro.gateway.server import GatewayServer, run_gateway
from repro.gateway.tenants import (
    Tenant,
    TenantRegistry,
    TenantSpec,
    build_tenant,
)

__all__ = [
    "AdmissionController",
    "AdmissionShed",
    "AllowAll",
    "AuthPolicy",
    "GatewayServer",
    "MUTATION",
    "QuotaRejection",
    "SEARCH",
    "StaticTokenAuth",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    "TenantSpec",
    "TokenBucket",
    "build_tenant",
    "gateway_rollup",
    "policy_from_tokens",
    "run_gateway",
]
