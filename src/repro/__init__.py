"""Koios: top-k semantic overlap set search — ICDE 2023 reproduction.

The public API mirrors how a downstream user consumes the system:

>>> from repro import (
...     HashingEmbeddingProvider, VectorStore, ExactCosineIndex,
...     CosineSimilarity, SetCollection, KoiosSearchEngine,
... )
>>> collection = SetCollection([{"LA", "NYC"}, {"LA", "Boston"}])
>>> provider = HashingEmbeddingProvider(dim=32)
>>> store = VectorStore(provider, collection.vocabulary)
>>> index = ExactCosineIndex(store, provider)
>>> engine = KoiosSearchEngine(
...     collection, index, CosineSimilarity(provider), alpha=0.8)
>>> result = engine.search({"LA", "NYC"}, k=1)
>>> result.entries[0].set_id
0
"""

from repro.core import (
    FilterConfig,
    KoiosSearchEngine,
    ManyToOneSearchEngine,
    ResultEntry,
    SearchResult,
    SearchStats,
    greedy_semantic_overlap,
    matching_pairs,
    semantic_overlap,
    semantic_overlap_many_to_one,
    vanilla_overlap,
)
from repro.datasets.collection import CollectionStats, SetCollection
from repro.embedding import (
    HashingEmbeddingProvider,
    PinnedSimilarityModel,
    SyntheticEmbeddingModel,
    VectorStore,
)
from repro.cluster import ClusterMetrics, ClusterPool
from repro.errors import (
    ClusterError,
    EmptyQueryError,
    InvalidParameterError,
    MatchingError,
    ReproError,
    SearchTimeout,
    SnapshotError,
    StoreError,
    VocabularyError,
    WalError,
)
from repro.index import (
    ExactCosineIndex,
    ExactJaccardIndex,
    InvertedIndex,
    IVFCosineIndex,
    MinHashLSHIndex,
    PrefixJaccardIndex,
    ScanTokenIndex,
    TokenIndex,
    TokenStream,
)
from repro.service import (
    EnginePool,
    QueryScheduler,
    ResultCache,
    SearchRequest,
    SearchResponse,
    ServiceMetrics,
)
from repro.sim import (
    CallableSimilarity,
    CosineSimilarity,
    EditSimilarity,
    QGramJaccardSimilarity,
    SimilarityFunction,
    WordJaccardSimilarity,
)
from repro.store import (
    MutableSetCollection,
    SnapshotManifest,
    WriteAheadLog,
    inspect_snapshot,
    load_snapshot,
    save_snapshot,
)

__version__ = "1.0.0"

__all__ = [
    "CallableSimilarity",
    "ClusterError",
    "ClusterMetrics",
    "ClusterPool",
    "CollectionStats",
    "CosineSimilarity",
    "EditSimilarity",
    "EmptyQueryError",
    "EnginePool",
    "ExactCosineIndex",
    "ExactJaccardIndex",
    "FilterConfig",
    "HashingEmbeddingProvider",
    "IVFCosineIndex",
    "InvalidParameterError",
    "InvertedIndex",
    "KoiosSearchEngine",
    "ManyToOneSearchEngine",
    "MatchingError",
    "MinHashLSHIndex",
    "MutableSetCollection",
    "PinnedSimilarityModel",
    "PrefixJaccardIndex",
    "QGramJaccardSimilarity",
    "QueryScheduler",
    "ReproError",
    "ResultCache",
    "ResultEntry",
    "SearchRequest",
    "SearchResponse",
    "SearchResult",
    "ScanTokenIndex",
    "SearchStats",
    "SearchTimeout",
    "ServiceMetrics",
    "SetCollection",
    "SimilarityFunction",
    "SnapshotError",
    "SnapshotManifest",
    "StoreError",
    "SyntheticEmbeddingModel",
    "TokenIndex",
    "TokenStream",
    "VectorStore",
    "VocabularyError",
    "WalError",
    "WordJaccardSimilarity",
    "WriteAheadLog",
    "inspect_snapshot",
    "load_snapshot",
    "save_snapshot",
    "greedy_semantic_overlap",
    "matching_pairs",
    "semantic_overlap",
    "semantic_overlap_many_to_one",
    "vanilla_overlap",
    "__version__",
]
