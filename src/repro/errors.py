"""Exception hierarchy for the Koios reproduction library."""


class ReproError(Exception):
    """Base class for all library errors."""


class EmptyQueryError(ReproError):
    """Raised when a search is issued with an empty query set."""


class InvalidParameterError(ReproError):
    """Raised when a search or index parameter is out of its valid range."""


class VocabularyError(ReproError):
    """Raised when an embedding or index is probed with an unknown token
    in a context that requires vocabulary membership."""


class MatchingError(ReproError):
    """Raised when bipartite matching receives an ill-formed input."""


class SearchTimeout(ReproError):
    """Raised internally when a search exceeds its time budget; callers
    receive a partial result flagged ``timed_out`` instead."""
