"""Exception hierarchy for the Koios reproduction library."""


class ReproError(Exception):
    """Base class for all library errors."""


class EmptyQueryError(ReproError):
    """Raised when a search is issued with an empty query set."""


class InvalidParameterError(ReproError):
    """Raised when a search or index parameter is out of its valid range."""


class VocabularyError(ReproError):
    """Raised when an embedding or index is probed with an unknown token
    in a context that requires vocabulary membership."""


class MatchingError(ReproError):
    """Raised when bipartite matching receives an ill-formed input."""


class SearchTimeout(ReproError):
    """Raised internally when a search exceeds its time budget; callers
    receive a partial result flagged ``timed_out`` instead."""


class StoreError(ReproError):
    """Base class for persistent-store (snapshot / write-ahead log)
    failures."""


class SnapshotError(StoreError):
    """Raised when a snapshot file is missing sections, fails its
    checksum, or carries an unsupported format version."""


class WalError(StoreError):
    """Raised when a write-ahead log contains a corrupt or out-of-order
    record (a torn final record is tolerated and truncated instead)."""


class StatsInvariantError(ReproError):
    """Raised (under pytest) when a search's stats violate the funnel
    partition invariant — ``candidates == refinement_pruned + no_em +
    em_early_terminated + em_full`` — or carry negative counters. In
    production the EXPLAIN path reports violations in the payload
    instead of raising; a live server never dies over bookkeeping."""


class ClusterError(ReproError):
    """Raised when the multi-process cluster cannot serve a request —
    a worker died and could not be restarted, a replica diverged from
    the coordinator's version barrier, or a worker response timed out."""


class WorkerTimeoutError(ClusterError):
    """A worker produced no reply within its deadline. The process may
    still be alive with the reply in flight, so the coordinator must
    drop the connection before reusing the worker — a late reply would
    desynchronize the request/reply pipe for every later op."""


class WorkerCrashError(ClusterError):
    """A worker's pipe reported EOF or an OS-level transport failure:
    the process died (crash, kill, OOM) or its connection was torn.
    Safe to fail over: the worker never saw — or never finished — the
    request, and a replica serves the identical partition."""


class WorkerProtocolError(ClusterError):
    """A worker answered, but with an error status or a malformed
    frame — bootstrap failure, version-barrier violation, or an
    engine-side exception. NOT safe to blindly fail over: a replica
    replaying the same deterministic state would answer the same."""


class GatewayError(ReproError):
    """Raised when the network gateway cannot start or serve — a broken
    tenant configuration, an unknown tenant on the wire, or a listener
    that failed to bind. Per-request overload is *not* an error: quota
    and admission rejections travel as structured wire responses with
    ``retry_after_seconds``, never as exceptions out of the server."""


class TenantConfigError(GatewayError):
    """Raised when a gateway tenant configuration file is malformed —
    missing fields, duplicate tenant names, or out-of-range quotas."""
