"""The trace inspector: read the sink back, rebuild span trees.

Backs ``repro trace tail|show|top``.  Everything here is offline and
read-only — the sink file (plus its single ``.1`` rotation backup) is
the only input, and unparseable lines are skipped rather than fatal
(a rotation or a crash may leave one torn line; POSIX append atomicity
makes more than that unlikely).
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Iterator

from repro.obs.histogram import Reservoir

Span = dict[str, Any]

#: Duration samples retained per aggregation row in ``top_spans`` —
#: exact percentiles up to this many calls per span name, an unbiased
#: reservoir estimate beyond.
TOP_SAMPLE_WINDOW = 4096


def read_spans(path: str) -> list[Span]:
    """Every span record in the sink, oldest file first."""
    spans: list[Span] = []
    for candidate in (path + ".1", path):
        if not os.path.exists(candidate):
            continue
        with open(candidate, "r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict) and "trace_id" in record:
                    spans.append(record)
    return spans


def group_by_trace(spans: Iterable[Span]) -> dict[str, list[Span]]:
    """``trace_id -> spans``, preserving file order within a trace."""
    traces: dict[str, list[Span]] = {}
    for span in spans:
        traces.setdefault(span["trace_id"], []).append(span)
    return traces


def trace_order(traces: dict[str, list[Span]]) -> list[str]:
    """Trace ids ordered by the earliest wall timestamp they contain."""
    return sorted(
        traces, key=lambda tid: min(s.get("ts", 0.0) for s in traces[tid])
    )


def _children_index(spans: list[Span]) -> dict[str | None, list[Span]]:
    by_parent: dict[str | None, list[Span]] = {}
    ids = {span.get("span_id") for span in spans}
    for span in spans:
        parent = span.get("parent_id")
        # An orphan (its parent was sampled away or lives in another
        # process's pending buffer) renders as a root rather than
        # vanishing.
        if parent is not None and parent not in ids:
            parent = None
        by_parent.setdefault(parent, []).append(span)
    for bucket in by_parent.values():
        bucket.sort(key=lambda s: (s.get("ts", 0.0), s.get("span_id", "")))
    return by_parent


def format_trace(spans: list[Span]) -> str:
    """One trace as an indented tree with per-span durations."""
    if not spans:
        return "(empty trace)"
    by_parent = _children_index(spans)
    trace_id = spans[0].get("trace_id", "?")
    lines = [f"trace {trace_id} — {len(spans)} span(s)"]

    def walk(span: Span, depth: int) -> None:
        indent = "  " * depth
        duration = span.get("duration_ms", 0.0)
        line = f"{indent}{span.get('name', '?')}  {duration:.3f}ms"
        tags = span.get("tags")
        if tags:
            rendered = " ".join(
                f"{key}={value}" for key, value in sorted(tags.items())
            )
            line += f"  [{rendered}]"
        if span.get("error"):
            line += f"  !! {span['error']}"
        lines.append(line)
        for child in by_parent.get(span.get("span_id"), ()):
            walk(child, depth + 1)

    for root in by_parent.get(None, ()):
        walk(root, 1)
    return "\n".join(lines)


def tail_traces(path: str, count: int) -> Iterator[str]:
    """The formatted trees of the ``count`` most recent traces."""
    traces = group_by_trace(read_spans(path))
    for trace_id in trace_order(traces)[-count:]:
        yield format_trace(traces[trace_id])


def show_trace(path: str, trace_id: str) -> str | None:
    """The formatted tree for one trace id (prefix match allowed when
    unambiguous), or None if absent."""
    traces = group_by_trace(read_spans(path))
    if trace_id in traces:
        return format_trace(traces[trace_id])
    matches = [tid for tid in traces if tid.startswith(trace_id)]
    if len(matches) == 1:
        return format_trace(traces[matches[0]])
    return None


def top_spans(
    path: str, *, by: str = "name", limit: int = 20
) -> list[dict[str, Any]]:
    """Aggregate span durations: where did the milliseconds go?

    ``by="name"`` groups over every span name; ``by="phase"``
    restricts to engine phase spans (``phase.*``) and strips the
    prefix.  Rows come back sorted by total time, descending.
    """
    if by not in ("name", "phase"):
        raise ValueError(f"top --by must be 'name' or 'phase', got {by!r}")
    rows: dict[str, dict[str, Any]] = {}
    for span in read_spans(path):
        name = span.get("name", "?")
        if by == "phase":
            if not name.startswith("phase."):
                continue
            name = name[len("phase."):]
        duration = float(span.get("duration_ms", 0.0))
        row = rows.get(name)
        if row is None:
            row = rows[name] = {
                "name": name, "calls": 0, "total_ms": 0.0,
                "max_ms": 0.0, "errors": 0,
                "_durations": Reservoir(TOP_SAMPLE_WINDOW),
            }
        row["calls"] += 1
        row["total_ms"] += duration
        row["max_ms"] = max(row["max_ms"], duration)
        row["_durations"].observe(duration)
        if span.get("error"):
            row["errors"] += 1
    ordered = sorted(
        rows.values(), key=lambda r: r["total_ms"], reverse=True
    )[:limit]
    for row in ordered:
        durations = row.pop("_durations")
        row["total_ms"] = round(row["total_ms"], 3)
        row["max_ms"] = round(row["max_ms"], 3)
        row["mean_ms"] = round(row["total_ms"] / row["calls"], 3)
        row["p50_ms"] = round(durations.percentile(0.50), 3)
        row["p95_ms"] = round(durations.percentile(0.95), 3)
        row["p99_ms"] = round(durations.percentile(0.99), 3)
    return ordered


def format_top(rows: list[dict[str, Any]]) -> str:
    """``top_spans`` rows as an aligned table."""
    if not rows:
        return "(no spans)"
    header = (
        f"{'span':<28}{'calls':>7}{'total_ms':>12}"
        f"{'p50_ms':>10}{'p95_ms':>10}{'p99_ms':>10}"
        f"{'max_ms':>10}{'errors':>8}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row['name']:<28}{row['calls']:>7}{row['total_ms']:>12.3f}"
            f"{row['p50_ms']:>10.3f}{row['p95_ms']:>10.3f}"
            f"{row['p99_ms']:>10.3f}{row['max_ms']:>10.3f}"
            f"{row['errors']:>8}"
        )
    return "\n".join(lines)
