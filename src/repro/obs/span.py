"""Spans, the tracer, and the process-global tracing switch.

A *span* is one timed, named region of a request: ``gateway.request``
at the root, ``scheduler.search`` under it, ``engine.search`` per
shard, ``phase.refinement``/``phase.postprocessing`` inside the
engine, ``worker.search`` across the cluster wire.  Spans carry a
``trace_id`` shared by the whole request and a ``parent_id`` linking
them into a tree the inspector can reconstruct.

Propagation rules:

* Within a thread, the current span lives in a :data:`contextvars`
  variable — nested ``tracer.span(...)`` calls parent automatically.
* Across thread pools (scheduler workers, ``EnginePool`` shard
  executors) context does NOT flow; callers capture
  :func:`current_context` (or hold the request's span) and pass it as
  ``parent=`` explicitly.
* Across processes (cluster workers) the context crosses the wire as
  a plain ``{"trace_id", "span_id"}`` dict — see
  :meth:`SpanContext.to_wire` / :meth:`SpanContext.from_wire` — and
  the worker's tracer is configured from the shipped
  :func:`trace_config` so both sides append to the same sink.

Tracing is off by default and costs one ``None`` check per hook when
disabled.  Results are never affected: spans observe, they do not
participate.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

from repro.obs.sink import TraceSink
from repro.obs.timing import MONOTONIC, Stopwatch


def new_trace_id() -> str:
    """A fresh 128-bit hex trace id."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit hex span id."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class SpanContext:
    """An addressable point in a trace: ``trace_id`` plus the span to
    parent under.  ``span_id=None`` means "join this trace at the
    root" — used when a client supplies a ``trace_id`` but no span of
    its own exists on our side of the wire."""

    trace_id: str
    span_id: str | None = None

    def to_wire(self) -> dict[str, Any]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, obj: Mapping[str, Any] | None) -> "SpanContext | None":
        if not obj:
            return None
        trace_id = obj.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        span_id = obj.get("span_id")
        if span_id is not None and not isinstance(span_id, str):
            span_id = None
        return cls(trace_id=trace_id, span_id=span_id)


class Span:
    """A live span.  ``annotate(**tags)`` attaches key/value tags that
    land on the emitted record; everything else is bookkeeping."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "tags",
        "error", "_watch", "_ts",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: str | None,
        clock: Callable[[], float],
        wall: Callable[[], float],
        tags: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.tags: dict[str, Any] = dict(tags) if tags else {}
        self.error: str | None = None
        self._watch = Stopwatch(clock)
        self._ts = wall()

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def annotate(self, **tags: Any) -> None:
        self.tags.update(tags)

    def to_record(self, seconds: float) -> dict[str, Any]:
        record: dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "ts": round(self._ts, 6),
            "duration_ms": round(seconds * 1000.0, 4),
        }
        if self.tags:
            record["tags"] = self.tags
        if self.error is not None:
            record["error"] = self.error
        return record


class _NoopSpan:
    """Stand-in yielded when tracing is disabled: every hook method is
    a no-op so call sites never branch on tracer state themselves."""

    __slots__ = ()

    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    error = None
    tags: dict[str, Any] = {}

    @property
    def context(self) -> None:
        return None

    def annotate(self, **tags: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()

#: The current thread-of-control's live span.  Does not cross thread
#: pools or processes — see the module docstring for the rules.
_ACTIVE: ContextVar[Span | None] = ContextVar("repro_obs_active", default=None)


def current_context() -> SpanContext | None:
    """The active span's context, or None outside any span (or with
    tracing disabled)."""
    span = _ACTIVE.get()
    return span.context if span is not None else None


def _resolve_parent(
    parent: "Span | SpanContext | None",
) -> tuple[str | None, str | None]:
    """``(trace_id, parent_id)`` from an explicit parent or the
    contextvar; ``(None, None)`` means "start a new trace"."""
    if parent is None:
        parent = _ACTIVE.get()
    if parent is None:
        return None, None
    if isinstance(parent, SpanContext):
        return parent.trace_id, parent.span_id
    return parent.trace_id, parent.span_id


class Tracer:
    """Opens spans and emits their records to a :class:`TraceSink`.

    ``clock`` (monotonic, durations) and ``wall`` (epoch, ordering
    across processes) are injectable for tests.
    """

    def __init__(
        self,
        sink: TraceSink,
        *,
        clock: Callable[[], float] = MONOTONIC,
        wall: Callable[[], float] = time.time,
    ) -> None:
        self._sink = sink
        self._clock = clock
        self._wall = wall

    @property
    def enabled(self) -> bool:
        return True

    @property
    def sink(self) -> TraceSink:
        return self._sink

    @contextmanager
    def span(
        self,
        name: str,
        *,
        parent: "Span | SpanContext | None" = None,
        trace_id: str | None = None,
        tags: dict[str, Any] | None = None,
    ) -> Iterator[Span]:
        """Open a span around a block.

        Parent resolution: explicit ``parent`` arg, else the
        contextvar's active span, else a new trace is started (with
        ``trace_id`` if given, so gateway clients can supply one).
        Exceptions are recorded on the span and re-raised.
        """
        ptrace, pspan = _resolve_parent(parent)
        if ptrace is None:
            ptrace = trace_id or new_trace_id()
        span = Span(name, ptrace, pspan, self._clock, self._wall, tags)
        token = _ACTIVE.set(span)
        try:
            yield span
        except BaseException as exc:
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            _ACTIVE.reset(token)
            self._emit(span, span._watch.stop())

    def record(
        self,
        name: str,
        seconds: float,
        *,
        parent: "Span | SpanContext | None" = None,
        trace_id: str | None = None,
        tags: dict[str, Any] | None = None,
        error: str | None = None,
    ) -> None:
        """Emit a retroactive span for an interval measured elsewhere
        (e.g. the admission queue wait, timed by a stopwatch that was
        started before the job's span could exist)."""
        ptrace, pspan = _resolve_parent(parent)
        if ptrace is None:
            ptrace = trace_id or new_trace_id()
        span = Span(name, ptrace, pspan, self._clock, self._wall, tags)
        # The interval ended now; backdate the wall start.
        span._ts = self._wall() - seconds
        span.error = error
        self._emit(span, seconds)

    def _emit(self, span: Span, seconds: float) -> None:
        self._sink.offer(
            span.to_record(seconds),
            is_root=span.parent_id is None,
            is_error=span.error is not None,
            seconds=seconds,
        )

    def flush(self) -> None:
        self._sink.flush()

    def close(self) -> None:
        self._sink.close()


class _DisabledTracer:
    """The default tracer: every operation is free and span-less."""

    enabled = False
    sink = None

    @contextmanager
    def span(self, name: str, **_: Any) -> Iterator[_NoopSpan]:
        yield NOOP_SPAN

    def record(self, *args: Any, **kwargs: Any) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


_DISABLED = _DisabledTracer()
_GLOBAL: Tracer | _DisabledTracer = _DISABLED
_GLOBAL_CONFIG: dict[str, Any] | None = None


def get_tracer() -> Tracer | _DisabledTracer:
    """The process-global tracer (disabled unless :func:`configure`
    ran)."""
    return _GLOBAL


def configure(
    path: str,
    *,
    sample_rate: float = 1.0,
    slow_threshold_ms: float | None = None,
    max_bytes: int = 8 * 1024 * 1024,
    slowest_n: int = 32,
) -> Tracer:
    """Enable tracing process-wide, appending to ``path``.

    Returns the tracer; call :func:`disable` to turn tracing back off
    (tests do this in ``finally`` blocks).  Reconfiguring closes the
    previous sink first.
    """
    global _GLOBAL, _GLOBAL_CONFIG
    if isinstance(_GLOBAL, Tracer):
        _GLOBAL.close()
    sink = TraceSink(
        path,
        max_bytes=max_bytes,
        sample_rate=sample_rate,
        slow_threshold_ms=slow_threshold_ms,
        slowest_n=slowest_n,
    )
    _GLOBAL = Tracer(sink)
    _GLOBAL_CONFIG = {
        "path": os.path.abspath(path),
        "sample_rate": sample_rate,
        "slow_threshold_ms": slow_threshold_ms,
        "max_bytes": max_bytes,
        "slowest_n": slowest_n,
    }
    return _GLOBAL


def configure_from(config: Mapping[str, Any] | None) -> None:
    """Configure from a :func:`trace_config` dict shipped over the
    cluster wire (no-op on None) — workers call this at bootstrap."""
    if not config:
        return
    configure(
        config["path"],
        sample_rate=float(config.get("sample_rate", 1.0)),
        slow_threshold_ms=config.get("slow_threshold_ms"),
        max_bytes=int(config.get("max_bytes", 8 * 1024 * 1024)),
        slowest_n=int(config.get("slowest_n", 32)),
    )


def disable() -> None:
    """Turn tracing off and close the sink."""
    global _GLOBAL, _GLOBAL_CONFIG
    if isinstance(_GLOBAL, Tracer):
        _GLOBAL.close()
    _GLOBAL = _DISABLED
    _GLOBAL_CONFIG = None


def trace_config() -> dict[str, Any] | None:
    """The plain-dict form of the global configuration, suitable for
    shipping to spawned cluster workers; None when disabled."""
    return dict(_GLOBAL_CONFIG) if _GLOBAL_CONFIG else None


def annotate(**tags: Any) -> None:
    """Tag the current span, wherever we are — a no-op outside any
    span or with tracing disabled.  Engine internals (fastpath,
    verification, postprocessing) use this so they never need a
    tracer reference."""
    span = _ACTIVE.get()
    if span is not None:
        span.annotate(**tags)


@contextmanager
def traced_phase(timer: Any, name: str) -> Iterator[None]:
    """``with timer.phase(name)`` plus a ``phase.<name>`` span.

    Drop-in replacement for the ``PhaseTimer.phase`` blocks in the
    engine: the timer accounting is identical (same clock, same
    accumulation), and the span is only opened when tracing is on AND
    a request span is active — batch experiments pay one ``None``
    check.
    """
    tracer = _GLOBAL
    if tracer.enabled and _ACTIVE.get() is not None:
        with tracer.span(f"phase.{name}"):
            with timer.phase(name):
                yield
    else:
        with timer.phase(name):
            yield
