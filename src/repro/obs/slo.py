"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SLOMonitor` evaluates two objectives over sliding windows:

* **availability** — the fraction of accepted requests that complete
  without a server-side failure (engine errors and load-shedding count
  against the budget; quota rejections do not — refusing work a client
  over-sent is the service protecting itself, not failing);
* **latency** — the fraction of completed requests at or under a target
  (the classic "p99 <= T" objective phrased as a ratio SLI: with a 0.99
  target ratio, meeting it *is* p99 <= T).

Each objective burns an error budget of ``1 - target``. The **burn
rate** over a window is ``observed_bad_ratio / budget``: 1.0 means the
budget is being spent exactly as provisioned; 14.4 means a 30-day
budget would be gone in 50 hours. Alerting follows the standard
multi-window scheme — a *fast* alert (page) requires both the 5-minute
and 1-hour windows to burn hot, a *slow* alert (ticket) requires both
the 6-hour and 1-hour windows to burn warm — so a brief blip cannot
page and a slow leak cannot hide.

The clock is injectable (the same ``time.monotonic`` convention as the
gateway's token buckets), so tests drive hours of window history in
microseconds. All recording goes through one lock; reads take the same
lock and prune expired buckets, so an idle monitor recovers by being
looked at.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Mapping

from repro.errors import InvalidParameterError

#: (name, seconds) of the three sliding windows, fast to slow.
DEFAULT_WINDOWS = (("5m", 300.0), ("1h", 3600.0), ("6h", 21600.0))

#: Burn-rate thresholds of the two alerts (Google SRE workbook values
#: for a 30-day budget): fast = 2% of budget in 1h, slow = 5% in 6h.
FAST_BURN_THRESHOLD = 14.4
SLOW_BURN_THRESHOLD = 6.0

#: Buckets per window — resolution of the sliding edge (a 5m window
#: forgets events in 10s steps).
_BUCKETS_PER_WINDOW = 30


class _Window:
    """A bucketed sliding (good, bad) counter pair."""

    __slots__ = ("seconds", "_width", "_buckets")

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds
        self._width = seconds / _BUCKETS_PER_WINDOW
        # bucket index -> [good, bad]; pruned lazily on read/write.
        self._buckets: dict[int, list[float]] = {}

    def _prune(self, now: float) -> None:
        horizon = int(now / self._width) - _BUCKETS_PER_WINDOW
        for index in [i for i in self._buckets if i <= horizon]:
            del self._buckets[index]

    def add(self, now: float, good: int, bad: int) -> None:
        self._prune(now)
        bucket = self._buckets.setdefault(int(now / self._width), [0.0, 0.0])
        bucket[0] += good
        bucket[1] += bad

    def totals(self, now: float) -> tuple[float, float]:
        self._prune(now)
        good = sum(b[0] for b in self._buckets.values())
        bad = sum(b[1] for b in self._buckets.values())
        return good, bad


class _Objective:
    """One objective's target, windows, and burn-rate math."""

    def __init__(self, name: str, target: float) -> None:
        if not (0.0 < target < 1.0):
            raise InvalidParameterError(
                f"SLO target for {name!r} must be in (0, 1), got {target}"
            )
        self.name = name
        self.target = target
        self.budget = 1.0 - target
        self.windows = {
            label: _Window(seconds) for label, seconds in DEFAULT_WINDOWS
        }

    def record(self, now: float, *, good: bool) -> None:
        for window in self.windows.values():
            window.add(now, int(good), int(not good))

    def burn_rates(self, now: float) -> dict[str, float]:
        rates: dict[str, float] = {}
        for label, window in self.windows.items():
            good, bad = window.totals(now)
            total = good + bad
            ratio = bad / total if total else 0.0
            rates[label] = ratio / self.budget
        return rates

    def snapshot(self, now: float, fast: float, slow: float) -> dict:
        rates = self.burn_rates(now)
        counts = {
            label: dict(zip(("good", "bad"), window.totals(now)))
            for label, window in self.windows.items()
        }
        alerts = {
            "fast": rates["5m"] >= fast and rates["1h"] >= fast,
            "slow": rates["6h"] >= slow and rates["1h"] >= slow,
        }
        return {
            "target": self.target,
            "burn_rates": {k: round(v, 4) for k, v in rates.items()},
            "windows": counts,
            "alerts": alerts,
            "alerting": any(alerts.values()),
        }


class SLOMonitor:
    """Availability and latency objectives for one serving stack.

    Parameters
    ----------
    availability_target:
        Fraction of accepted requests that must not fail server-side.
    latency_target_seconds:
        The latency threshold; None disables the latency objective.
    latency_target_ratio:
        Fraction of completed requests that must meet the threshold
        (0.99 = "p99 at or under the target").
    clock:
        Injectable monotonic clock; windows slide on it.
    """

    def __init__(
        self,
        *,
        availability_target: float = 0.999,
        latency_target_seconds: float | None = None,
        latency_target_ratio: float = 0.99,
        clock: Callable[[], float] = time.monotonic,
        fast_burn_threshold: float = FAST_BURN_THRESHOLD,
        slow_burn_threshold: float = SLOW_BURN_THRESHOLD,
    ) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self.fast_burn_threshold = fast_burn_threshold
        self.slow_burn_threshold = slow_burn_threshold
        self.availability = _Objective("availability", availability_target)
        self.latency_target_seconds = latency_target_seconds
        self.latency: _Objective | None = None
        if latency_target_seconds is not None:
            if latency_target_seconds <= 0:
                raise InvalidParameterError(
                    "latency_p99 target must be positive"
                )
            self.latency = _Objective("latency", latency_target_ratio)

    @classmethod
    def from_spec(
        cls,
        spec: Mapping[str, Any] | None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> "SLOMonitor":
        """Build from a config dict: ``{"availability": 0.999,
        "latency_p99_ms": 250, "latency_ratio": 0.99}`` — all keys
        optional, unknown keys rejected loudly (same contract as the
        tenant spec parser that carries this dict)."""
        spec = dict(spec or {})
        kwargs: dict[str, Any] = {"clock": clock}
        if "availability" in spec:
            kwargs["availability_target"] = float(spec.pop("availability"))
        if "latency_p99_ms" in spec:
            kwargs["latency_target_seconds"] = (
                float(spec.pop("latency_p99_ms")) / 1000.0
            )
        if "latency_ratio" in spec:
            kwargs["latency_target_ratio"] = float(spec.pop("latency_ratio"))
        if spec:
            raise InvalidParameterError(
                f"unknown slo keys: {sorted(spec)} (known: availability, "
                f"latency_p99_ms, latency_ratio)"
            )
        return cls(**kwargs)

    # -- recording ---------------------------------------------------------

    def record(self, seconds: float | None = None, *, error: bool = False) -> None:
        """One request outcome: ``error=True`` burns availability;
        otherwise ``seconds`` (when a latency objective is configured)
        scores the latency objective too."""
        now = self._clock()
        with self._lock:
            self.availability.record(now, good=not error)
            if self.latency is not None and not error and seconds is not None:
                self.latency.record(
                    now, good=seconds <= self.latency_target_seconds
                )

    # -- reading -----------------------------------------------------------

    @property
    def alerting(self) -> bool:
        return self.snapshot()["alerting"]

    def snapshot(self) -> dict:
        """JSON-ready burn rates, window counts, and alert state."""
        now = self._clock()
        with self._lock:
            objectives = {
                "availability": self.availability.snapshot(
                    now, self.fast_burn_threshold, self.slow_burn_threshold
                )
            }
            if self.latency is not None:
                latency = self.latency.snapshot(
                    now, self.fast_burn_threshold, self.slow_burn_threshold
                )
                latency["target_seconds"] = self.latency_target_seconds
                objectives["latency"] = latency
        return {
            "objectives": objectives,
            "fast_burn_threshold": self.fast_burn_threshold,
            "slow_burn_threshold": self.slow_burn_threshold,
            "alerting": any(o["alerting"] for o in objectives.values()),
        }
