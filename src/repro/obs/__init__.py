"""Tracing + unified telemetry for the serving stack.

``repro.obs`` is the one subsystem that sees every layer at once:

* **Spans** (:mod:`repro.obs.span`) — a zero-dependency tracer with
  monotonic-clock spans and ``trace_id``/``parent_id`` propagation from
  the gateway line (or HTTP header) through the scheduler, the engine
  pool's shards, the columnar refinement/verification phases, and
  across the cluster wire protocol into workers.
* **Sink** (:mod:`repro.obs.sink`) — bounded, rotating JSON-lines
  output with head+tail-biased sampling: errors and slow requests are
  always kept, a deterministic hash of the ``trace_id`` samples the
  rest, and a slowest-N heap tail-biases what survives.
* **Exposition** (:mod:`repro.obs.prom`, :mod:`repro.obs.adapters`) —
  a hand-rolled Prometheus text-format registry populated from the
  existing metrics classes, served at ``GET /metrics`` on the gateway
  and as a ``prometheus`` wire op on plain ``repro serve``.
* **Inspector** (:mod:`repro.obs.inspect`) — ``repro trace
  tail|show|top`` reconstructs span trees from the sink.
* **EXPLAIN** (:mod:`repro.obs.explain`) — per-request pruning-funnel
  reports built from :class:`~repro.core.stats.SearchStats`, with
  partition-sum invariant checking.
* **Accounting** (:mod:`repro.obs.accounting`) — per-tenant resource
  meters (CPU-seconds, matmul FLOPs, bytes scanned, WAL bytes) behind
  the ``repro_tenant_*`` Prometheus series.
* **SLOs** (:mod:`repro.obs.slo`) — declarative availability/latency
  objectives with multi-window burn-rate alerting, behind the
  gateway's ``/healthz``, ``/readyz``, and ``/slo`` endpoints.

Tracing is observation-only by contract: search results are bitwise
identical with tracing enabled or disabled (enforced by randomized
equivalence tests).
"""

from repro.obs.accounting import ResourceLedger
from repro.obs.explain import build_explain, render_explain
from repro.obs.histogram import (
    DEFAULT_LATENCY_BUCKETS,
    Reservoir,
    StreamingHistogram,
)
from repro.obs.prom import PromRegistry
from repro.obs.slo import SLOMonitor
from repro.obs.sink import TraceSink
from repro.obs.span import (
    Span,
    SpanContext,
    Tracer,
    annotate,
    configure,
    configure_from,
    current_context,
    disable,
    get_tracer,
    new_span_id,
    new_trace_id,
    trace_config,
    traced_phase,
)
from repro.obs.timing import MONOTONIC, Stopwatch, timed

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MONOTONIC",
    "PromRegistry",
    "Reservoir",
    "ResourceLedger",
    "SLOMonitor",
    "Span",
    "SpanContext",
    "Stopwatch",
    "StreamingHistogram",
    "TraceSink",
    "Tracer",
    "annotate",
    "build_explain",
    "configure",
    "configure_from",
    "current_context",
    "disable",
    "get_tracer",
    "new_span_id",
    "new_trace_id",
    "render_explain",
    "timed",
    "trace_config",
    "traced_phase",
]
