"""Query EXPLAIN: the pruning funnel as a structured, per-request report.

The paper's evaluation *is* a funnel — candidates partitioned exactly
into first-sight prunes (Lemma 2), bucket prunes (Lemma 6), No-EM
resolutions (Lemmas 7/8's cheap exits), early-terminated and full
Hungarian runs. Every serving layer already counts it
(:class:`~repro.core.stats.SearchStats`); EXPLAIN turns those counters
into a per-request justification: *why* was this query slow, which
filter did the work, which partition carried the load, did the columnar
engine or its drift-guard fallback verify the survivors.

:func:`build_explain` produces the wire payload attached to a response
when a request carries ``explain: true`` (or arrives as the
``{"op": "explain"}`` control line); :func:`render_explain` renders it
as the table ``repro explain`` prints.

Invariant enforcement rides along: the merged stats and every partition
are :meth:`~repro.core.stats.SearchStats.validate`-checked, and the
merged funnel is compared counter-by-counter against the sum of the
per-partition funnels (bitwise — these are ints). Violations are
reported in the payload in production and **raised** under pytest
(:class:`~repro.errors.StatsInvariantError`), so a cluster stat-merge
bug fails tests instead of silently skewing dashboards.
"""

from __future__ import annotations

import os
from typing import Any, Sequence

from repro.core.stats import SearchStats
from repro.errors import StatsInvariantError

#: Funnel rows in render order; every key appears in ``funnel()`` dicts.
FUNNEL_ROWS = (
    "candidates",
    "pruned_first_sight",
    "pruned_bucket",
    "no_em_accepted",
    "no_em_discarded",
    "em_early_terminated",
    "em_full",
)


def _strict_default() -> bool:
    """Raise on violations only under pytest (the satellite contract:
    production reports, tests fail loudly)."""
    return bool(os.environ.get("PYTEST_CURRENT_TEST"))


def build_explain(
    *,
    stats: SearchStats | None,
    partition_stats: Sequence[SearchStats] = (),
    request_id: str = "",
    trace_id: str | None = None,
    k: int = 0,
    alpha: float | None = None,
    seconds: float = 0.0,
    cached: bool = False,
    deduplicated: bool = False,
    timed_out: bool = False,
    engine: dict | None = None,
    strict: bool | None = None,
) -> dict:
    """Build one request's EXPLAIN payload.

    ``stats`` is the merged :class:`SearchStats` of the search that
    produced the response; ``partition_stats`` the per-partition
    partials (one per engine shard, or one per shard per cluster
    worker). For a cache hit both describe the computation that
    *seeded* the cache entry — the scores returned are those floats, so
    the funnel that produced them is the honest explanation — and the
    ``cache`` block says so.

    ``strict=None`` auto-raises under pytest; pass ``False`` to force
    report-only (used by tests *about* violation reporting).
    """
    report: dict[str, Any] = {
        "request_id": request_id,
        "k": k,
        "alpha": alpha,
        "seconds": round(seconds, 6),
        "cache": {"hit": cached, "deduplicated": deduplicated},
        "engine": dict(engine or {}),
    }
    if trace_id:
        report["trace_id"] = trace_id
    if timed_out:
        report["timed_out"] = True
    if stats is None:
        # A cache entry that predates stats-carrying payloads, or an
        # error path: the report degrades to attribution-only.
        report["funnel"] = None
        report["partitions"] = []
        report["violations"] = ["no stats available for this response"]
        return report

    violations = list(stats.validate())
    funnel = stats.funnel()
    funnel["postprocessed"] = stats.postprocessed
    partitions = [p.funnel() for p in partition_stats]
    for index, partial in enumerate(partition_stats):
        for problem in partial.validate():
            violations.append(f"partition {index}: {problem}")
    # The merged funnel must equal the per-partition sums bitwise —
    # the acceptance check that cluster/shard stat accumulation neither
    # drops nor double-counts a partial.
    partitions_consistent = True
    if partitions:
        for key in FUNNEL_ROWS:
            merged = funnel[key]
            summed = sum(p[key] for p in partitions)
            if merged != summed:
                partitions_consistent = False
                violations.append(
                    f"merged {key}={merged} != sum over "
                    f"{len(partitions)} partitions ({summed})"
                )
    report["funnel"] = funnel
    report["partitions"] = partitions
    report["partitions_consistent"] = partitions_consistent
    report["phases"] = {
        name: round(spent, 6)
        for name, spent in sorted(stats.timer.totals.items())
    }
    report["cpu_seconds"] = round(stats.timer.total, 6)
    report["stream"] = {
        "stream_tuples": stats.stream_tuples,
        "final_stream_similarity": round(stats.final_stream_similarity, 6),
    }
    report["verify"] = {
        "matmul_cells": stats.verify_matmul_cells,
        "matmul_flops": stats.verify_matmul_flops,
        "bytes_scanned": stats.verify_bytes_scanned,
        "fallbacks": stats.verify_fallbacks,
    }
    report["em"] = {
        "label_updates": stats.em_label_updates,
        "resolution_em": stats.resolution_em,
    }
    report["memory_bytes"] = stats.memory.total_bytes
    report["violations"] = violations
    if violations and (_strict_default() if strict is None else strict):
        raise StatsInvariantError(
            "search stats violate their invariants: "
            + "; ".join(violations)
        )
    return report


def render_explain(report: dict) -> str:
    """The ``repro explain`` table: header, funnel (merged plus one
    column per partition), phase timings, cost, violations."""
    lines: list[str] = []
    alpha = report.get("alpha")
    header = (
        f"request {report.get('request_id') or '-'}"
        f"  k={report.get('k')}"
        f"  alpha={'-' if alpha is None else alpha}"
        f"  seconds={report.get('seconds')}"
    )
    engine = report.get("engine") or {}
    if engine:
        header += "  engine=" + (
            engine.get("engine") or engine.get("backend") or "?"
        )
    cache = report.get("cache") or {}
    if cache.get("hit"):
        header += "  [cache hit]"
    if cache.get("deduplicated"):
        header += "  [deduplicated]"
    if report.get("timed_out"):
        header += "  [timed out]"
    lines.append(header)
    if report.get("trace_id"):
        lines.append(f"trace {report['trace_id']}  (repro trace show)")

    funnel = report.get("funnel")
    if funnel is None:
        lines.append("(no stats available)")
    else:
        partitions = report.get("partitions") or []
        columns = ["merged"] + [f"p{i}" for i in range(len(partitions))]
        width = max(22, *(len(c) for c in columns)) if columns else 22
        lines.append("")
        lines.append(
            f"{'funnel':<24}" + "".join(f"{c:>{width - 12}}" for c in columns)
        )
        for key in FUNNEL_ROWS:
            row = f"{key:<24}" + f"{funnel[key]:>{width - 12}}"
            for partial in partitions:
                row += f"{partial[key]:>{width - 12}}"
            lines.append(row)
        lines.append("")
        phases = report.get("phases") or {}
        if phases:
            lines.append(f"{'phase':<24}{'seconds':>10}")
            for name, spent in phases.items():
                lines.append(f"{name:<24}{spent:>10.4f}")
            lines.append("")
        verify = report.get("verify") or {}
        if verify:
            lines.append(
                "verify: "
                f"{verify.get('matmul_cells', 0)} cells, "
                f"{verify.get('matmul_flops', 0)} flops, "
                f"{verify.get('bytes_scanned', 0)} bytes scanned, "
                f"{verify.get('fallbacks', 0)} fallbacks"
            )
        stream = report.get("stream") or {}
        if stream:
            lines.append(
                f"stream: {stream.get('stream_tuples', 0)} tuples, "
                f"final similarity "
                f"{stream.get('final_stream_similarity', 0.0)}"
            )
    for problem in report.get("violations") or ():
        lines.append(f"VIOLATION: {problem}")
    return "\n".join(lines)
