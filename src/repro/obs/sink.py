"""The bounded, rotating, sampled trace sink.

Spans become JSON lines appended to one file.  Three properties make
that safe to leave on in production:

* **Bounded disk** — when the file passes ``max_bytes`` it rotates to
  ``<path>.1`` (one backup generation); the inspector reads both.
* **Head+tail-biased sampling** — the keep/drop decision per trace:

  1. *errors* are always kept (and retroactively flush the trace's
     buffered spans);
  2. *slow roots* (root-span duration >= ``slow_threshold_ms``) are
     always kept with their full buffered tree — the slow-query log;
  3. a deterministic ``crc32(trace_id)`` *head sample* keeps a
     ``sample_rate`` fraction of the rest — deterministic so every
     process of a cluster (coordinator and spawned workers) makes the
     identical decision with no coordination;
  4. a *slowest-N* min-heap of root durations tail-biases what
     survives beyond the sample: a root slower than the N fastest
     kept so far is kept even when the head sample said drop.

* **Multi-process appends** — each line is a single ``os.write`` on an
  ``O_APPEND`` descriptor, which POSIX keeps atomic for our line
  sizes, so coordinator and workers interleave whole lines, never
  torn ones.

Child spans close before their parents, so a trace's spans arrive
bottom-up; spans with no decision yet are buffered (bounded) until
their root arrives.  Buffering is per-process: a cluster worker never
sees the root, so at ``sample_rate < 1`` a worker's spans for a
slow-but-unsampled trace are dropped — tail decisions cannot cross
processes without a collector.  The head sample and the error rule
are exact everywhere; run ``sample_rate=1.0`` (the default) when full
cross-process trees matter.
"""

from __future__ import annotations

import heapq
import json
import os
import threading
import zlib
from collections import OrderedDict
from typing import Any

_COMPACT = {"separators": (",", ":"), "sort_keys": False}

#: Head-sampling resolution: rates are compared on a 0..10^6 lattice.
_SAMPLE_LATTICE = 1_000_000


class TraceSink:
    """Appends sampled span records to a rotating JSONL file."""

    def __init__(
        self,
        path: str,
        *,
        max_bytes: int = 8 * 1024 * 1024,
        sample_rate: float = 1.0,
        slow_threshold_ms: float | None = None,
        slowest_n: int = 32,
        max_pending_traces: int = 256,
        max_pending_spans: int = 64,
        max_decisions: int = 4096,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.path = os.path.abspath(path)
        self.max_bytes = max_bytes
        self.sample_rate = sample_rate
        self.slow_threshold_ms = slow_threshold_ms
        self.slowest_n = slowest_n
        self._sample_cut = int(round(sample_rate * _SAMPLE_LATTICE))
        self._lock = threading.Lock()
        self._fd: int | None = None
        self._writes = 0
        # trace_id -> keep? (bounded LRU so long runs can't grow it).
        self._decisions: "OrderedDict[str, bool]" = OrderedDict()
        self._max_decisions = max_decisions
        # trace_id -> undecided span records awaiting their root.
        self._pending: "OrderedDict[str, list[dict]]" = OrderedDict()
        self._max_pending_traces = max_pending_traces
        self._max_pending_spans = max_pending_spans
        #: Min-heap of kept root durations (ms) — the tail-bias bar.
        self._slowest: list[float] = []
        self.written = 0
        self.dropped = 0

    # -- decisions ---------------------------------------------------------

    def _head_sampled(self, trace_id: str) -> bool:
        if self._sample_cut >= _SAMPLE_LATTICE:
            return True
        if self._sample_cut <= 0:
            return False
        bucket = zlib.crc32(trace_id.encode("ascii")) % _SAMPLE_LATTICE
        return bucket < self._sample_cut

    def _decide_root(self, trace_id: str, seconds: float) -> bool:
        duration_ms = seconds * 1000.0
        if (
            self.slow_threshold_ms is not None
            and duration_ms >= self.slow_threshold_ms
        ):
            return True
        if self._head_sampled(trace_id):
            self._note_duration(duration_ms)
            return True
        # Tail bias: slower than the N fastest kept roots so far?
        if self.slowest_n > 0 and (
            len(self._slowest) < self.slowest_n
            or duration_ms > self._slowest[0]
        ):
            self._note_duration(duration_ms)
            return True
        return False

    def _note_duration(self, duration_ms: float) -> None:
        if self.slowest_n <= 0:
            return
        if len(self._slowest) < self.slowest_n:
            heapq.heappush(self._slowest, duration_ms)
        elif duration_ms > self._slowest[0]:
            heapq.heapreplace(self._slowest, duration_ms)

    def _remember(self, trace_id: str, keep: bool) -> None:
        self._decisions[trace_id] = keep
        self._decisions.move_to_end(trace_id)
        while len(self._decisions) > self._max_decisions:
            self._decisions.popitem(last=False)

    # -- ingestion ---------------------------------------------------------

    def offer(
        self,
        record: dict[str, Any],
        *,
        is_root: bool,
        is_error: bool,
        seconds: float,
    ) -> None:
        """Submit one span record; the sink decides keep/buffer/drop."""
        trace_id = record.get("trace_id", "")
        with self._lock:
            decided = self._decisions.get(trace_id)
            if decided is True or is_error:
                if decided is None or (is_error and decided is not True):
                    self._remember(trace_id, True)
                self._flush_pending(trace_id)
                self._write(record)
                return
            if decided is False:
                self.dropped += 1
                return
            if is_root:
                keep = self._decide_root(trace_id, seconds)
                self._remember(trace_id, keep)
                if keep:
                    self._flush_pending(trace_id)
                    self._write(record)
                else:
                    self.dropped += 1 + len(
                        self._pending.pop(trace_id, ())
                    )
                return
            # Undecided non-root: the head sample is decision enough to
            # keep (it is deterministic, so buffering would only delay
            # the identical outcome); otherwise buffer for the root.
            if self._head_sampled(trace_id):
                self._remember(trace_id, True)
                self._flush_pending(trace_id)
                self._write(record)
                return
            self._buffer(trace_id, record)

    def _buffer(self, trace_id: str, record: dict[str, Any]) -> None:
        bucket = self._pending.get(trace_id)
        if bucket is None:
            while len(self._pending) >= self._max_pending_traces:
                _, evicted = self._pending.popitem(last=False)
                self.dropped += len(evicted)
            bucket = self._pending[trace_id] = []
        self._pending.move_to_end(trace_id)
        if len(bucket) >= self._max_pending_spans:
            self.dropped += 1
            return
        bucket.append(record)

    def _flush_pending(self, trace_id: str) -> None:
        for buffered in self._pending.pop(trace_id, ()):
            self._write(buffered)

    # -- the file ----------------------------------------------------------

    def _open(self) -> int:
        fd = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        self._fd = fd
        return fd

    def _write(self, record: dict[str, Any]) -> None:
        line = (json.dumps(record, **_COMPACT) + "\n").encode("utf-8")
        fd = self._fd if self._fd is not None else self._open()
        self._writes += 1
        # Another process may have rotated the shared file out from
        # under this descriptor; re-anchor to the live path every few
        # dozen writes so long-lived workers follow rotations.
        if self._writes % 32 == 0 and not self._same_inode(fd):
            os.close(fd)
            fd = self._open()
        os.write(fd, line)
        self.written += 1
        try:
            size = os.fstat(fd).st_size
        except OSError:
            return
        if size >= self.max_bytes:
            self._rotate()

    def _same_inode(self, fd: int) -> bool:
        try:
            return os.fstat(fd).st_ino == os.stat(self.path).st_ino
        except OSError:
            return False

    def _rotate(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        try:
            os.replace(self.path, self.path + ".1")
        except OSError:
            # A sibling process rotated first; just reopen the path.
            pass

    def flush(self) -> None:
        """O_APPEND writes are unbuffered; nothing to do, kept for
        interface symmetry with file-like sinks."""

    def close(self) -> None:
        with self._lock:
            self._pending.clear()
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None
