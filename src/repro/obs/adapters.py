"""Adapters: the existing metrics classes → Prometheus families.

The repo already has three bookkeeping systems —
:class:`~repro.service.metrics.ServiceMetrics` (per scheduler),
:class:`~repro.cluster.metrics.ClusterMetrics` (per fleet), and the
gateway's per-tenant rollup — and none of them should grow a second
export path.  These functions *project* their current state into a
long-lived :class:`~repro.obs.prom.PromRegistry` on every scrape:

* plain counters go through ``set_at_least`` (monotone across scrapes
  even when a source resets, e.g. a restarted cluster worker);
* gauges overwrite;
* latency histograms copy the bounded
  :class:`~repro.obs.histogram.StreamingHistogram` states wholesale
  (their per-bucket counts are already cumulative-in-time by
  construction).

Metric names are documented in ``docs/observability.md``; keep the
table and this module in sync.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.obs.prom import PromRegistry

#: Help text per :data:`repro.obs.accounting.RESOURCE_FIELDS` entry;
#: each becomes a ``repro_tenant_<field>_total{tenant=...}`` counter.
_RESOURCE_HELP = {
    "searches": "Full searches charged to the tenant",
    "cpu_seconds": "Engine CPU-seconds attributed to the tenant",
    "wall_seconds": "Wall-clock seconds spent serving the tenant",
    "candidates": "Candidate sets examined for the tenant",
    "stream_tuples": "Token-stream tuples drained for the tenant",
    "em_matchings": "Exact-matching resolutions run for the tenant",
    "matmul_flops": "Estimated verification matmul FLOPs",
    "bytes_scanned": "Estimated verification bytes scanned",
    "cache_hits": "Result-cache hits charged to the tenant",
    "cache_misses": "Cache-missing searches charged to the tenant",
    "wal_bytes": "Write-ahead-log bytes durably written",
}

_COUNTERS = (
    ("requests", "repro_requests_total", "Requests accepted"),
    ("completed", "repro_completed_total", "Requests completed"),
    ("errors", "repro_errors_total", "Requests failed"),
    ("rejected", "repro_rejected_total", "Requests refused by quota/auth"),
    ("shed", "repro_shed_total", "Accepted requests shed under overload"),
    ("cache_hits", "repro_cache_hits_total", "Result-cache hits"),
    ("deduplicated", "repro_deduplicated_total",
     "Requests coalesced onto in-flight twins"),
    ("degraded", "repro_degraded_total",
     "Requests answered with partial partition coverage"),
    ("batches", "repro_batches_total", "Engine micro-batches executed"),
    ("batched_requests", "repro_batched_requests_total",
     "Requests carried by micro-batches"),
)


def service_to_registry(
    registry: PromRegistry,
    metrics: Any,
    *,
    tenant: str = "default",
) -> None:
    """Project one scheduler's :class:`ServiceMetrics` into ``registry``
    under a ``tenant`` label."""
    for attr, name, help_text in _COUNTERS:
        family = registry.counter(name, help_text, ("tenant",))
        family.labels(tenant).set_at_least(float(getattr(metrics, attr)))

    registry.gauge(
        "repro_uptime_seconds", "Scheduler uptime", ("tenant",)
    ).labels(tenant).set(metrics.uptime_seconds)
    registry.gauge(
        "repro_queue_depth", "Admission queue depth", ("tenant",)
    ).labels(tenant).set(float(metrics.queue_depth))
    registry.counter(
        "repro_queue_depth_peak", "Peak admission queue depth", ("tenant",)
    ).labels(tenant).set_at_least(float(metrics.queue_depth_peak))

    engine = metrics.engine_stats
    registry.counter(
        "repro_engine_stream_tuples_total",
        "Token-stream tuples drained by the engine",
        ("tenant",),
    ).labels(tenant).set_at_least(float(engine.stream_tuples))
    registry.counter(
        "repro_engine_candidates_total",
        "Candidate sets examined by refinement",
        ("tenant",),
    ).labels(tenant).set_at_least(float(engine.candidates))

    resources = getattr(metrics, "resources", None)
    if resources is not None:
        for field_name, value in resources.snapshot().items():
            registry.counter(
                f"repro_tenant_{field_name}_total",
                _RESOURCE_HELP.get(
                    field_name, f"Tenant resource meter: {field_name}"
                ),
                ("tenant",),
            ).labels(tenant).set_at_least(float(value))

    slo = getattr(metrics, "slo", None)
    if slo is not None:
        snap = slo.snapshot()
        registry.gauge(
            "repro_slo_alerting",
            "1 while any burn-rate alert fires for the tenant",
            ("tenant",),
        ).labels(tenant).set(1.0 if snap["alerting"] else 0.0)
        burn = registry.gauge(
            "repro_slo_burn_rate",
            "Error-budget burn rate per objective and window",
            ("tenant", "objective", "window"),
        )
        for objective_name, objective in snap["objectives"].items():
            for window, rate in objective["burn_rates"].items():
                burn.labels(tenant, objective_name, window).set(rate)

    hists = metrics.histogram_snapshot()
    _load_histogram(
        registry,
        "repro_request_latency_seconds",
        "End-to-end request latency",
        ("tenant",),
        (tenant,),
        hists["latency"],
    )
    for phase, state in sorted(hists["phases"].items()):
        _load_histogram(
            registry,
            "repro_phase_latency_seconds",
            "Per-call latency of one serving phase",
            ("tenant", "phase"),
            (tenant, phase),
            state,
        )
    # Per-phase running totals (the engine's refinement/postprocessing
    # phases accumulate into the timer without per-call phase() calls,
    # so the totals are the complete per-phase attribution).
    totals = dict(metrics.timer.totals)
    calls = dict(metrics.phase_calls)
    for phase in sorted(totals):
        registry.counter(
            "repro_phase_seconds_total",
            "Cumulative seconds spent in one serving phase",
            ("tenant", "phase"),
        ).labels(tenant, phase).set_at_least(float(totals[phase]))
    for phase in sorted(calls):
        registry.counter(
            "repro_phase_calls_total",
            "Calls into one serving phase",
            ("tenant", "phase"),
        ).labels(tenant, phase).set_at_least(float(calls[phase]))


def _load_histogram(
    registry: PromRegistry,
    name: str,
    help_text: str,
    label_names: tuple[str, ...],
    label_values: tuple[str, ...],
    state: Mapping[str, Any],
) -> None:
    family = registry.histogram(
        name, help_text, label_names, bounds=state["bounds"]
    )
    family.labels(*label_values).load(
        sum=state["sum"],
        count=state["count"],
        bucket_counts=state["counts"],
    )


def gateway_to_registry(
    registry: PromRegistry,
    tenants: Iterable[Any],
    *,
    connections: int | None = None,
) -> None:
    """Project every gateway tenant (scheduler metrics + quota gauges)
    into ``registry``; one ``tenant`` label value per tenant."""
    from repro.gateway.quota import MUTATION, SEARCH

    for tenant in tenants:
        service_to_registry(registry, tenant.metrics, tenant=tenant.name)
        quota_family = registry.gauge(
            "repro_quota_available_tokens",
            "Token-bucket balance (+Inf when unlimited)",
            ("tenant", "kind"),
        )
        for kind in (SEARCH, MUTATION):
            quota_family.labels(tenant.name, kind).set(
                tenant.quota.available(kind)
            )
    if connections is not None:
        registry.gauge(
            "repro_gateway_connections", "Open gateway connections"
        ).labels().set(float(connections))


def cluster_to_registry(
    registry: PromRegistry,
    cluster_snapshot: Mapping[str, Any],
    *,
    tenant: str = "default",
) -> None:
    """Project a ``ClusterMetrics.snapshot()`` payload (coordinator
    counters + per-worker rows) into ``registry``."""
    rollup = cluster_snapshot.get("rollup", {})
    registry.gauge(
        "repro_cluster_workers", "Live cluster workers", ("tenant",)
    ).labels(tenant).set(float(rollup.get("workers", 0)))
    for key, name, help_text in (
        ("queries", "repro_cluster_queries_total",
         "Scatter-gather queries coordinated"),
        ("mutations", "repro_cluster_mutations_total",
         "Mutations replicated fleet-wide"),
        ("restarts", "repro_cluster_restarts_total",
         "Worker processes restarted after a crash"),
        ("failovers", "repro_cluster_failovers_total",
         "Partition reads failed over to a sibling replica"),
        ("degraded", "repro_cluster_degraded_total",
         "Queries answered with partial partition coverage"),
        ("worker_timeouts", "repro_cluster_worker_timeouts_total",
         "Worker replies that missed their deadline"),
        ("worker_crashes", "repro_cluster_worker_crashes_total",
         "Worker pipe failures classified as crashes"),
    ):
        registry.counter(name, help_text, ("tenant",)).labels(
            tenant
        ).set_at_least(float(rollup.get(key, 0)))

    per_worker = cluster_snapshot.get("per_worker", {})
    for worker_id, row in sorted(per_worker.items()):
        labels = (tenant, str(worker_id))
        for key, name, help_text in (
            ("requests", "repro_worker_requests_total",
             "Partial searches accepted by one worker"),
            ("completed", "repro_worker_completed_total",
             "Partial searches completed by one worker"),
            ("errors", "repro_worker_errors_total",
             "Partial searches failed on one worker"),
        ):
            registry.counter(
                name, help_text, ("tenant", "worker")
            ).labels(*labels).set_at_least(float(row.get(key, 0)))
        hists = row.get("histograms")
        if isinstance(hists, Mapping):
            for phase, state in sorted(
                hists.get("phases", {}).items()
            ):
                _load_histogram(
                    registry,
                    "repro_worker_phase_latency_seconds",
                    "Per-call phase latency on one cluster worker",
                    ("tenant", "worker", "phase"),
                    (tenant, str(worker_id), phase),
                    state,
                )
