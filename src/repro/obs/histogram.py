"""Bounded latency accounting: streaming histograms and reservoirs.

Both structures exist so a week-long serve process cannot leak memory
through its metrics: the old ``ServiceMetrics`` kept raw per-request
latency samples in lists that only a ``maxlen`` bounded, and quantiles
were computed by sorting.  Here:

* :class:`StreamingHistogram` — fixed log-spaced buckets, O(1) per
  observation, mergeable, and directly exposable in Prometheus
  cumulative ``le`` form.
* :class:`Reservoir` — Algorithm R over a deterministic RNG, a
  fixed-size uniform sample of everything ever observed, used for the
  backward-compatible nearest-rank percentile keys.

Neither structure locks; callers (``ServiceMetrics``) already hold a
lock around every mutation.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Iterable, Sequence

#: Log-spaced seconds buckets covering sub-millisecond engine phases up
#: to multi-second worst cases; the Prometheus adapter appends +Inf.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class StreamingHistogram:
    """Fixed-bucket streaming histogram with sum/count.

    ``bounds`` are upper bucket edges in ascending order; values above
    the last edge land in the implicit overflow (+Inf) bucket.
    """

    __slots__ = ("bounds", "counts", "overflow", "total", "sum")

    def __init__(
        self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket edges must be strictly ascending")
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.total += 1
        self.sum += value
        idx = bisect_left(self.bounds, value)
        if idx == len(self.bounds):
            self.overflow += 1
        else:
            self.counts[idx] += 1

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def count(self) -> int:
        return self.total

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, Prometheus bucket form
        (the +Inf bucket equals :attr:`count`)."""
        out = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.overflow))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-upper-bound estimate of the ``q`` quantile.

        Coarse by construction (resolution = bucket width); the
        reservoir keeps the precise backward-compatible percentiles.
        Returns 0.0 when empty; overflow observations report the last
        finite edge.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        rank = max(1, int(round(q * self.total)))
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            if running >= rank:
                return bound
        return self.bounds[-1]

    def merge(self, other: "StreamingHistogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.overflow += other.overflow
        self.total += other.total
        self.sum += other.sum

    def state(self) -> dict:
        """Plain-dict form for snapshots and wire shipping."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "count": self.total,
            "sum": self.sum,
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamingHistogram":
        hist = cls(state["bounds"])
        counts = state["counts"]
        if len(counts) != len(hist.counts):
            raise ValueError("histogram state counts mismatch bounds")
        hist.counts = [int(c) for c in counts]
        hist.overflow = int(state["overflow"])
        hist.total = int(state["count"])
        hist.sum = float(state["sum"])
        return hist


class Reservoir:
    """Fixed-size uniform sample (Algorithm R, deterministic seed).

    Keeps at most ``size`` of everything ever observed, each with equal
    probability, in O(size) memory.  The seed is fixed so percentile
    snapshots are reproducible across identical runs.
    """

    __slots__ = ("size", "seen", "_samples", "_rng")

    def __init__(self, size: int, *, seed: int = 0x5EED) -> None:
        if size <= 0:
            raise ValueError(f"reservoir size must be positive, got {size}")
        self.size = size
        self.seen = 0
        self._samples: list[float] = []
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        self.seen += 1
        if len(self._samples) < self.size:
            self._samples.append(float(value))
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.size:
            self._samples[slot] = float(value)

    def samples(self) -> list[float]:
        return list(self._samples)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples (``q`` in
        [0, 1]); 0.0 when empty. Exact while fewer than ``size`` values
        have been observed, an unbiased estimate after."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[rank]

    def __len__(self) -> int:
        return len(self._samples)
