"""The one shared monotonic-timing helper.

The scheduler, the cluster worker, the experiment harness, and the
cluster bench all used to carry their own inline ``perf_counter``
delta pairs.  They now route through :class:`Stopwatch`/:func:`timed`
so the clock choice (and its injectability in tests) lives in exactly
one place.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

#: The monotonic clock every duration in the repo is measured on.
MONOTONIC: Callable[[], float] = time.perf_counter


class Stopwatch:
    """A started monotonic stopwatch.

    ``Stopwatch()`` starts immediately; :meth:`stop` freezes
    ``seconds`` and returns it, while reading :attr:`seconds` before
    stopping reports the running elapsed time.  ``clock`` is
    injectable for deterministic tests.
    """

    __slots__ = ("_clock", "_started", "_stopped")

    def __init__(self, clock: Callable[[], float] = MONOTONIC) -> None:
        self._clock = clock
        self._started = clock()
        self._stopped: float | None = None

    @property
    def seconds(self) -> float:
        if self._stopped is not None:
            return self._stopped - self._started
        return self._clock() - self._started

    def stop(self) -> float:
        if self._stopped is None:
            self._stopped = self._clock()
        return self._stopped - self._started

    def restart(self) -> None:
        self._started = self._clock()
        self._stopped = None


@contextmanager
def timed(clock: Callable[[], float] = MONOTONIC) -> Iterator[Stopwatch]:
    """``with timed() as watch: ...`` — ``watch.seconds`` is the block's
    duration after exit (and the running elapsed time inside it)."""
    watch = Stopwatch(clock)
    try:
        yield watch
    finally:
        watch.stop()
