"""A hand-rolled Prometheus text-exposition registry.

No client library, no background threads: families hold labeled
children, children hold numbers, ``render()`` prints the text format
(``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket{le=...}`` rows,
``_sum``/``_count``) that any Prometheus scraper parses.

The registry is *declarative-idempotent*: re-declaring a family with
the same name returns the existing one, so adapters can repopulate on
every scrape without bookkeeping.  Counters additionally support
:meth:`Counter.set_at_least`, which clamps to the maximum ever seen —
that is what keeps scrape-to-scrape values monotone when the
underlying source resets (a restarted cluster worker reports its
fresh, smaller totals; the exposition must not go backwards).
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Mapping, Sequence


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value != value:  # NaN
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_suffix(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    parts = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(names, values)
    )
    return "{" + parts + "}"


class Counter:
    """A monotone child; ``inc`` adds, ``set_at_least`` clamps up."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def set_at_least(self, value: float) -> None:
        """Raise to ``value`` if larger; never lowers — the monotone
        bridge from resettable snapshot sources."""
        if value > self.value:
            self.value = value


class Gauge:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram child mirroring the exposition shape."""

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0.0] * len(self.bounds)
        self.sum = 0.0
        self.count = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break

    def load(
        self,
        *,
        sum: float,
        count: float,
        bucket_counts: Sequence[float],
        overflow: float = 0.0,
    ) -> None:
        """Overwrite from a :class:`StreamingHistogram` state — the
        adapter path, where the source is already cumulative-safe.
        ``bucket_counts`` are per-bucket (non-cumulative) counts."""
        if len(bucket_counts) != len(self.bounds):
            raise ValueError("bucket_counts length mismatch")
        self.bucket_counts = [float(c) for c in bucket_counts]
        self.sum = float(sum)
        self.count = float(count)
        # Overflow rides in the implicit +Inf bucket via `count`.
        del overflow

    def merge_load(
        self,
        *,
        sum: float,
        count: float,
        bucket_counts: Sequence[float],
    ) -> None:
        """Accumulate another source's state into this child (several
        cluster workers feeding one labeled series)."""
        if len(bucket_counts) != len(self.bounds):
            raise ValueError("bucket_counts length mismatch")
        for i, c in enumerate(bucket_counts):
            self.bucket_counts[i] += float(c)
        self.sum += float(sum)
        self.count += float(count)


class _Family:
    __slots__ = ("name", "help", "kind", "label_names", "children", "bounds")

    def __init__(
        self,
        name: str,
        help: str,
        kind: str,
        label_names: tuple[str, ...],
        bounds: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.help = help
        self.kind = kind
        self.label_names = label_names
        self.bounds = bounds
        self.children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}

    def labels(self, *values: str) -> Counter | Gauge | Histogram:
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {values!r}"
            )
        key = tuple(str(v) for v in values)
        child = self.children.get(key)
        if child is None:
            if self.kind == "counter":
                child = Counter()
            elif self.kind == "gauge":
                child = Gauge()
            else:
                child = Histogram(self.bounds or ())
            self.children[key] = child
        return child

    def render(self) -> Iterable[str]:
        yield f"# HELP {self.name} {_escape_help(self.help)}"
        yield f"# TYPE {self.name} {self.kind}"
        for key in sorted(self.children):
            child = self.children[key]
            suffix = _label_suffix(self.label_names, key)
            if self.kind == "histogram":
                assert isinstance(child, Histogram)
                running = 0.0
                for bound, count in zip(child.bounds, child.bucket_counts):
                    running += count
                    le = _label_suffix(
                        self.label_names + ("le",),
                        key + (_format_value(bound),),
                    )
                    yield (
                        f"{self.name}_bucket{le} {_format_value(running)}"
                    )
                inf = _label_suffix(
                    self.label_names + ("le",), key + ("+Inf",)
                )
                yield f"{self.name}_bucket{inf} {_format_value(child.count)}"
                yield f"{self.name}_sum{suffix} {_format_value(child.sum)}"
                yield (
                    f"{self.name}_count{suffix} {_format_value(child.count)}"
                )
            else:
                yield f"{self.name}{suffix} {_format_value(child.value)}"


class PromRegistry:
    """Declare-once metric families rendered as Prometheus text.

    The registry must be long-lived (one per gateway/server process):
    counters clamp with ``set_at_least`` across scrapes, which only
    works if the same child objects survive between scrapes.
    """

    CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _declare(
        self,
        name: str,
        help: str,
        kind: str,
        labels: Sequence[str],
        bounds: Sequence[float] | None = None,
    ) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name} re-declared with a different "
                        f"kind or label set"
                    )
                return family
            family = _Family(
                name,
                help,
                kind,
                tuple(labels),
                tuple(bounds) if bounds is not None else None,
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str, labels: Sequence[str] = ()
    ) -> _Family:
        return self._declare(name, help, "counter", labels)

    def gauge(
        self, name: str, help: str, labels: Sequence[str] = ()
    ) -> _Family:
        return self._declare(name, help, "gauge", labels)

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        *,
        bounds: Sequence[float],
    ) -> _Family:
        return self._declare(name, help, "histogram", labels, bounds)

    def render(self) -> str:
        """The full exposition payload, trailing newline included."""
        with self._lock:
            lines: list[str] = []
            for name in sorted(self._families):
                lines.extend(self._families[name].render())
        return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> dict[str, float]:
    """Parse rendered text back to ``{series-with-labels: value}`` —
    a test/CI helper (validates the format round-trips), not a full
    Prometheus parser."""
    out: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"unparseable exposition line: {line!r}")
        value_part = value_part.strip()
        if value_part == "+Inf":
            value = math.inf
        elif value_part == "-Inf":
            value = -math.inf
        else:
            value = float(value_part)
        out[name_part.strip()] = value
    return out
