"""Per-tenant resource accounting.

A :class:`ResourceLedger` accumulates the *cost* of serving — not how
fast requests were (that is :class:`~repro.service.metrics.ServiceMetrics`'
job) but how much hardware they consumed: CPU-seconds from the engine's
phase timers, matmul-FLOP and bytes-scanned estimates from the columnar
verifier's block sizes, candidates touched, cache hit/miss attribution,
and WAL bytes written for durable mutations.

One ledger lives inside each scheduler's ``ServiceMetrics`` (one per
tenant under the gateway) and another inside the cluster coordinator,
so cost-per-tenant is visible from the ``stats`` wire op and scrapeable
as the ``repro_tenant_*`` Prometheus series
(:mod:`repro.obs.adapters`). Counters only ever increase; the Prometheus
projection additionally clamps with ``set_at_least`` so a restarted
source can never drag an exposed series backwards.

The ledger itself is lock-free by design: every mutating call happens
under the owner's lock (``ServiceMetrics._lock``, the coordinator's
scatter lock), mirroring how ``PhaseTimer`` is used.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.stats import SearchStats

#: Counter names in snapshot/exposition order. Kept in one place so the
#: Prometheus adapter, the ``stats`` op, and tests agree on the set.
RESOURCE_FIELDS = (
    "searches",
    "cpu_seconds",
    "wall_seconds",
    "candidates",
    "stream_tuples",
    "em_matchings",
    "matmul_flops",
    "bytes_scanned",
    "cache_hits",
    "cache_misses",
    "wal_bytes",
)


class ResourceLedger:
    """Monotone resource meters for one tenant (or one coordinator)."""

    __slots__ = RESOURCE_FIELDS

    def __init__(self) -> None:
        self.searches = 0
        self.cpu_seconds = 0.0
        self.wall_seconds = 0.0
        self.candidates = 0
        self.stream_tuples = 0
        self.em_matchings = 0
        self.matmul_flops = 0
        self.bytes_scanned = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.wal_bytes = 0

    # -- charging ----------------------------------------------------------

    def charge_search(
        self, seconds: float, stats: "SearchStats | None"
    ) -> None:
        """One computed (non-cached) search: wall seconds plus the
        engine's own cost attribution. The phase-timer total is the
        CPU-seconds estimate — engine phases are CPU-bound, and summing
        them over partitions counts every worker's core time (a cluster
        scatter burns ``workers x wall`` CPU-seconds, which is exactly
        what the merged timer reports)."""
        self.searches += 1
        self.cache_misses += 1
        self.wall_seconds += seconds
        if stats is not None:
            self.cpu_seconds += stats.timer.total
            self.candidates += stats.candidates
            self.stream_tuples += stats.stream_tuples
            self.em_matchings += stats.em_early_terminated + stats.em_full
            self.matmul_flops += stats.verify_matmul_flops
            self.bytes_scanned += stats.verify_bytes_scanned

    def charge_cache_hit(self) -> None:
        self.cache_hits += 1

    def charge_wal(self, nbytes: int) -> None:
        """Bytes durably appended to the write-ahead log."""
        self.wal_bytes += nbytes

    # -- reading -----------------------------------------------------------

    def merge(self, other: "ResourceLedger") -> None:
        for name in RESOURCE_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def snapshot(self) -> dict:
        """JSON-ready meters (floats rounded for wire stability)."""
        out: dict = {}
        for name in RESOURCE_FIELDS:
            value = getattr(self, name)
            out[name] = round(value, 6) if isinstance(value, float) else value
        return out
