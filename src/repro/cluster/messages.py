"""The coordinator <-> worker wire protocol.

Everything that crosses a process boundary is defined here, so the
whole IPC surface is auditable in one place. Messages are plain tuples
``(op, payload)`` sent over ``multiprocessing`` pipe connections; every
payload is built from picklable primitives, dataclasses, and the core
result types — nothing that captures a live engine, lock, or file
handle, which is what keeps the protocol spawn-safe.

Mutations travel as **WAL record dicts** — the same
``{"op", "name", "tokens"}`` shape :mod:`repro.store.wal` persists.
One representation serves three jobs: durable logging on the
coordinator, live replication to workers, and replay when a crashed
worker re-bootstraps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.config import FilterConfig
from repro.errors import ClusterError
from repro.index.token_stream import MaterializedTokenStream, StreamTuple
from repro.obs import SpanContext

#: Wire operations the worker loop understands.
OP_SEARCH = "search"
OP_MUTATE = "mutate"
OP_METRICS = "metrics"
OP_PING = "ping"
OP_STOP = "stop"

#: Response statuses.
STATUS_OK = "ok"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker process needs to bootstrap its replica.

    A spec is self-contained: a freshly spawned process (including a
    *replacement* for a crashed worker) reconstructs its exact serving
    state from the spec alone —

    ``snapshot_path`` **or** ``sets``/``names``
        the base collection. Snapshot bootstrap re-uses the store
        layer's checksummed format (postings and the embedding matrix
        come back as buffer reads); in-memory shipping is the fallback
        when no snapshot exists and pickles the raw sets through the
        spawn call.
    ``substrate``
        the ``(token_index, sim)`` descriptor (same schema the snapshot
        manifest persists). Ignored when a snapshot carries its own.
    ``history``
        every WAL record the coordinator has applied since the base
        state, replayed in order during bootstrap — this is what makes
        restart-and-rebootstrap exact rather than approximate.
    ``base_version``
        the coordinator collection's version at base-state capture;
        workers report ``base_version + local mutations`` so version
        barriers compare like for like.

    ``partition_index``/``num_workers`` pin the worker's slice of the
    deterministic set-id split (see ``EnginePool(partition=...)``), and
    ``shards``/``shard_seed``/``alpha``/``config`` mirror the
    coordinator's engine parameters so the fleet's layout is exactly
    the one an equivalent single-process pool would use.
    """

    worker_id: int
    num_workers: int
    shards: int
    shard_seed: int
    alpha: float
    config: FilterConfig | None
    snapshot_path: str | None
    sets: tuple[tuple[str, ...], ...] | None
    names: tuple[str, ...] | None
    substrate: dict[str, Any] | None
    base_version: int
    history: tuple[dict[str, Any], ...]
    #: The coordinator's tracing configuration
    #: (:func:`repro.obs.trace_config`), so a spawned worker appends
    #: spans to the same sink; None leaves worker tracing disabled.
    trace: dict[str, Any] | None = None
    #: Which replica of the partition this process is (0-based).
    #: Replicas of one partition serve the identical slice — the field
    #: only labels logs, traces, and metrics.
    replica: int = 0
    #: Injected faults for this spawn (the chaos harness's
    #: :class:`~repro.cluster.faults.FaultInjector` arms these);
    #: ``{"bootstrap_fail": True}`` makes bootstrap die with an
    #: injected error. None in production.
    faults: dict[str, Any] | None = None
    #: Whether bootstrap re-hashes the snapshot against its manifest
    #: checksum. The coordinator verifies the file ONCE
    #: (:func:`repro.store.snapshot.verify_snapshot_checksum`) before
    #: spawning, so specs ship False — R×P workers (and every revival /
    #: re-bootstrap, which reuses the same spec factory) then map the
    #: already-verified file instead of N processes re-reading it.
    verify_snapshot: bool = False


def encode_stream(
    stream: MaterializedTokenStream | None,
) -> dict[str, Any] | None:
    """Project a drained stream onto wire primitives (None passes
    through: the worker drains locally against its own replica)."""
    if stream is None:
        return None
    return {
        "tuples": list(stream),
        "query_tokens": (
            None if stream.query_tokens is None
            else sorted(stream.query_tokens)
        ),
        "alpha": stream.alpha,
    }


def decode_stream(
    payload: dict[str, Any] | None,
) -> MaterializedTokenStream | None:
    if payload is None:
        return None
    tuples: list[StreamTuple] = [tuple(t) for t in payload["tuples"]]
    query_tokens = payload["query_tokens"]
    return MaterializedTokenStream(
        tuples,
        query_tokens=None if query_tokens is None else frozenset(query_tokens),
        alpha=payload["alpha"],
    )


def encode_trace(context: SpanContext | None) -> dict[str, Any] | None:
    """Project a span context onto wire primitives (None = untraced)."""
    return None if context is None else context.to_wire()


def decode_trace(payload: dict[str, Any] | None) -> SpanContext | None:
    """Rebuild the coordinator-side span context a search payload
    carried; tolerant of absent/malformed input (tracing must never
    fail a search)."""
    return SpanContext.from_wire(payload)


def mutation_record(
    op: str, name: str, tokens: tuple[str, ...] | None
) -> dict[str, Any]:
    """One replicated mutation, in WAL-record shape."""
    record: dict[str, Any] = {"op": op, "name": name}
    if tokens is not None:
        record["tokens"] = sorted(tokens)
    return record


def ping_reply(version: int, uptime_seconds: float) -> dict[str, Any]:
    """The ``OP_PING`` acknowledgement: the version-barrier value plus
    the replica's uptime — a probe that sees uptime drop without a
    coordinator-recorded restart is looking at a silently replaced
    process."""
    return {
        "version": version,
        "uptime_seconds": round(uptime_seconds, 6),
    }


def check_version(observed: int, expected: int, *, where: str) -> None:
    """The version barrier: refuse to act on divergent state.

    A worker behind the coordinator missed a mutation broadcast (it
    must re-bootstrap); a worker ahead applied something the
    coordinator never sent. Either way the replica can no longer
    guarantee bitwise-identical results, so this is a loud
    :class:`~repro.errors.ClusterError`, not a best-effort answer.
    """
    if observed != expected:
        raise ClusterError(
            f"version barrier violated in {where}: replica at "
            f"{observed}, coordinator expects {expected}"
        )
