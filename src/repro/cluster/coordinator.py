"""The scatter-gather coordinator: :class:`ClusterPool`.

``ClusterPool`` is a :class:`~repro.service.backend.SearchBackend` whose
shard engines live in worker *processes* instead of threads, so the
pure-Python KOIOS filter/verify hot path runs on every core instead of
time-slicing one GIL. It plugs into the existing
:class:`~repro.service.scheduler.QueryScheduler` / JSON-lines server
stack unchanged.

Exactness
---------
Results are bitwise-identical to a single-process
``EnginePool(shards=N)`` over the same ``shard_seed``: each worker owns
partition ``i`` of the *same* deterministic ``collection.partition(N)``
split a ``shards=N`` pool uses, its engines are the same
:class:`~repro.core.koios.KoiosSearchEngine` instances single-process
serving builds, and partial top-k lists merge through the same
:func:`~repro.service.pool.merge_results`. Workers do not share a live
``GlobalThreshold`` across processes — sharing only prunes *work*,
never changes the exact merged top-k, so the cluster trades a little
redundant filtering for zero cross-process chatter during a query.

Replication
-----------
Mutations are applied to the coordinator's local replica first (which
assigns the authoritative id/name and validates), then shipped to every
worker as a WAL record and acknowledged under a **version barrier**: the
mutation call does not return until every live worker reports the
coordinator's exact post-mutation version, and every query carries the
version it expects, which workers verify before searching. A query can
therefore never observe a half-applied mutation across partitions.

Failure handling
----------------
Every partition may be served by R replicas (``replicas=R``), all fed
through the same WAL-shipping/version-barrier path, so any live replica
answers its partition bitwise-identically. A scatter read goes to each
partition's *primary*; a primary that fails (timeout, torn pipe, crash)
is discarded, the read **fails over** to the next live replica — which
is promoted to primary — and the dead process is respawned by a
background restarter instead of blocking the query. Failure causes are
distinguished (:class:`~repro.errors.WorkerTimeoutError` /
:class:`~repro.errors.WorkerCrashError` /
:class:`~repro.errors.WorkerProtocolError`) because the policies
differ: timeouts and crashes fail over, protocol errors propagate (a
deterministic replica would answer the same).

When a partition has no live replica left, the coordinator retries a
synchronous restart under a bounded, seeded-backoff
:class:`~repro.cluster.replication.RetryPolicy` capped by the per-op
deadline; if the partition still cannot answer, the query returns a
**degraded** partial result (``degraded=True`` with ``coverage =
(partitions answered, partitions total)``) instead of an error — the
honest partial answer a front end can label, rather than a stall.
Re-bootstrap is exact either way: base state (shared snapshot, or
in-memory shipped) plus the full mutation history replays to
byte-identical state, so recovery is invisible in results.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from dataclasses import replace as dataclass_replace
from typing import Any, Hashable, Iterable, Sequence

from repro.cluster.messages import (
    OP_METRICS,
    OP_MUTATE,
    OP_PING,
    OP_SEARCH,
    OP_STOP,
    STATUS_OK,
    WorkerSpec,
    encode_stream,
    encode_trace,
    mutation_record,
)
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.replication import PartitionGroup, RetryPolicy
from repro.cluster.worker import worker_main
from repro.core.config import FilterConfig
from repro.core.koios import SearchResult
from repro.datasets.collection import SetCollection
from repro.errors import (
    ClusterError,
    EmptyQueryError,
    InvalidParameterError,
    WorkerCrashError,
    WorkerProtocolError,
    WorkerTimeoutError,
)
from repro.index.base import TokenIndex
from repro.index.token_stream import MaterializedTokenStream
from repro.obs import current_context, get_tracer, trace_config
from repro.obs.accounting import ResourceLedger
from repro.obs.timing import Stopwatch
from repro.service.backend import (
    materialize_stream,
    require_mutable,
    resolve_alpha,
)
from repro.service.pool import merge_results
from repro.sim.base import SimilarityFunction


class _WorkerHandle:
    """One worker process + its pipe, with crash bookkeeping.

    ``worker_id`` is the *partition* this replica serves (it pins the
    deterministic id-space slice); ``replica`` distinguishes the R
    processes of one partition. ``restarting`` marks a handle the
    background restarter owns — scatter and broadcast skip it, and the
    restart catch-up brings it back into rotation.
    """

    def __init__(self, worker_id: int, ctx, spec_factory, *,
                 bootstrap_timeout: float, replica: int = 0) -> None:
        self.worker_id = worker_id
        self.replica = replica
        self._ctx = ctx
        self._spec_factory = spec_factory
        self._bootstrap_timeout = bootstrap_timeout
        self.process = None
        self.conn = None
        self.restarts = -1  # first spawn brings this to 0
        self.restarting = False

    @property
    def label(self) -> str:
        """Log/metrics identity: ``"0"`` for a partition's first
        replica (the pre-replication shape), ``"0.1"`` beyond it."""
        if self.replica == 0:
            return str(self.worker_id)
        return f"{self.worker_id}.{self.replica}"

    # -- lifecycle ---------------------------------------------------------

    def spawn(
        self,
        spec: WorkerSpec | None = None,
        *,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Start (or restart) the process; returns its hello payload.

        ``spec`` lets a caller pre-build the bootstrap spec under its
        own lock (the background restarter does); ``timeout`` caps the
        bootstrap wait below the default when a per-op deadline is
        tighter.
        """
        self.discard()
        if spec is None:
            spec = self._spec_factory(self.worker_id, self.replica)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(spec, child_conn),
            daemon=True,
            name=f"repro-cluster-worker-{self.label}",
        )
        process.start()
        child_conn.close()
        self.process = process
        self.conn = parent_conn
        self.restarts += 1
        wait = self._bootstrap_timeout if timeout is None else timeout
        return self.receive(wait, what="bootstrap")

    def alive(self) -> bool:
        return (
            self.process is not None
            and self.process.is_alive()
            and self.conn is not None
        )

    def discard(self) -> None:
        """Drop a dead (or dying) process and its pipe.

        Workers ignore SIGINT/SIGTERM (the coordinator owns shutdown),
        so ``terminate`` would just stall here — go straight to
        SIGKILL. By the time a handle is discarded its answers can
        never be consumed again (the pipe is closed first), so there is
        nothing graceful left to lose, and a timed-out-but-alive worker
        must die *fast*: this runs inside the failover path, where
        every joined second comes out of the op's remaining deadline.
        """
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
        if self.process is not None:
            if self.process.is_alive():
                self.process.kill()
            self.process.join(timeout=5)
            self.process = None

    def stop(self, timeout: float = 5.0) -> None:
        """Cooperative shutdown, escalating to terminate."""
        if self.conn is not None and self.alive():
            try:
                self.conn.send((OP_STOP, None))
                self.conn.poll(timeout)
            except OSError:
                pass
        self.discard()

    # -- messaging ---------------------------------------------------------

    def send(self, op: str, payload: Any) -> bool:
        """Best-effort send; False marks the worker as failed."""
        if not self.alive():
            return False
        try:
            self.conn.send((op, payload))
            return True
        except (BrokenPipeError, OSError):
            return False

    def receive(self, timeout: float, *, what: str) -> Any:
        """Blocking receive with timeout, classifying the failure cause.

        * no reply in time → :class:`~repro.errors.WorkerTimeoutError`
          (the process may still answer later — the caller must discard
          this connection before reusing the worker, or the late reply
          desynchronizes every later request/reply pair);
        * pipe EOF / OS failure → :class:`~repro.errors.WorkerCrashError`
          (the process died or the pipe was torn — safe to fail over);
        * error status or malformed frame →
          :class:`~repro.errors.WorkerProtocolError` (the worker
          *answered*, wrongly — a deterministic replica would answer
          the same, so failover would only mask the bug).
        """
        if self.conn is None:
            raise WorkerCrashError(
                f"worker {self.label} has no live connection ({what})"
            )
        try:
            if not self.conn.poll(timeout):
                raise WorkerTimeoutError(
                    f"worker {self.label} timed out after {timeout}s "
                    f"({what})"
                )
            message = self.conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerCrashError(
                f"worker {self.label} connection failed ({what}): "
                f"{exc or type(exc).__name__}"
            ) from exc
        try:
            status, payload = message
        except (TypeError, ValueError) as exc:
            raise WorkerProtocolError(
                f"worker {self.label} sent a malformed frame ({what}): "
                f"{message!r}"
            ) from exc
        if status != STATUS_OK:
            raise WorkerProtocolError(
                f"worker {self.label} error ({what}): {payload}"
            )
        return payload


class ClusterPool:
    """Multi-process scatter-gather serving over worker partitions.

    Parameters
    ----------
    collection:
        The repository. Must be at version 0 (a pristine base): worker
        replicas reconstruct state as *base + mutation history*, so any
        pre-existing mutations must arrive through
        ``bootstrap_records``, not be baked into the object.
    token_index / sim:
        The coordinator's own substrate — used to drain token streams
        once per query (workers replay the shipped stream) and to
        extend the vocabulary on inserts.
    workers:
        Worker process count; the set-id space is split into exactly
        this many partitions (same layout as ``EnginePool(shards=workers)``).
    replicas:
        Processes per partition slot (default 1 — the pre-replication
        shape). All replicas of a partition bootstrap and replicate
        identically, so scatter reads fail over between them with
        bitwise-identical answers; mutations broadcast to every
        replica under the version barrier.
    shards:
        Engines *per worker* (each worker subdivides its partition).
    retry_policy:
        The :class:`~repro.cluster.replication.RetryPolicy` governing
        restart retries when a partition has no live replica left
        (bounded attempts, seeded-jitter backoff, capped by the per-op
        deadline). Defaults to ``RetryPolicy()``.
    fault_injector:
        A :class:`~repro.cluster.faults.FaultInjector` for the chaos
        harness; None in production. The coordinator drives it at the
        top of every op and while building payloads/specs.
    worker_configs:
        One :class:`FilterConfig` per worker, overriding ``config``
        worker by worker — engine A/B rollouts and the differential
        harness's mixed-engine fleets use this; results are identical
        whichever worker serves a partition.
    snapshot_path:
        When given, workers bootstrap by loading this snapshot instead
        of receiving the collection through the spawn pickle — the fast
        path for large corpora. Falls back to in-memory shipping when
        None.
    verify_snapshot:
        Stream-verify the snapshot's checksum once, coordinator-side,
        before spawning (default True). Workers always bootstrap with
        ``verify=False`` — one hash pass total instead of R×P, and
        restarts/revivals inherit the skip through the shared spec
        factory. Pass False when the caller has already verified the
        same file (``build_serving_stack`` does).
    substrate:
        Substrate descriptor for worker-side index reconstruction
        (required for in-memory shipping; optional when the snapshot
        embeds one).
    bootstrap_records:
        WAL records (dicts or :class:`~repro.store.wal.WalRecord`) to
        apply on top of the base before serving — the cluster analogue
        of ``repro serve``'s WAL replay on start.
    start_method:
        ``multiprocessing`` start method; the default ``spawn`` is the
        portable, thread-safe choice and the one the test-suite pins.
    request_timeout / bootstrap_timeout:
        Seconds to wait for a worker's answer / bootstrap hello before
        declaring it failed.
    """

    def __init__(
        self,
        collection: SetCollection,
        token_index: TokenIndex,
        sim: SimilarityFunction,
        *,
        alpha: float = 0.8,
        workers: int = 2,
        replicas: int = 1,
        shards: int = 1,
        shard_seed: int = 0,
        config: FilterConfig | None = None,
        worker_configs: Sequence[FilterConfig] | None = None,
        snapshot_path: str | None = None,
        verify_snapshot: bool = True,
        substrate: dict[str, Any] | None = None,
        bootstrap_records: Iterable[Any] | None = None,
        start_method: str = "spawn",
        request_timeout: float = 120.0,
        bootstrap_timeout: float = 120.0,
        retry_policy: RetryPolicy | None = None,
        fault_injector=None,
    ) -> None:
        if workers < 1:
            raise InvalidParameterError("workers must be >= 1")
        if replicas < 1:
            raise InvalidParameterError("replicas must be >= 1")
        if worker_configs is not None and len(worker_configs) != workers:
            raise InvalidParameterError(
                "worker_configs must name one FilterConfig per worker"
            )
        if shards < 1:
            raise InvalidParameterError("shards must be >= 1")
        if not (0.0 < alpha <= 1.0):
            raise InvalidParameterError("alpha must be in (0, 1]")
        if len(collection) == 0:
            raise InvalidParameterError("cannot serve an empty collection")
        if getattr(collection, "version", 0) != 0:
            raise InvalidParameterError(
                "cluster bootstrap needs a pristine base collection "
                "(version 0); pass prior mutations via bootstrap_records "
                "so worker replicas can replay them"
            )
        self._collection = collection
        self._token_index = token_index
        self._sim = sim
        self._alpha = alpha
        self._num_workers = workers
        self._shards = shards
        self._shard_seed = shard_seed
        self._config = config
        self._worker_configs = (
            None if worker_configs is None else tuple(worker_configs)
        )
        self._substrate = substrate
        self._request_timeout = request_timeout
        self._replicas = replicas
        self._retry = retry_policy or RetryPolicy()
        self._fault_injector = fault_injector
        self._lock = threading.RLock()
        self._closed = False
        self._history: list[dict[str, Any]] = []
        self._queries = 0
        self._mutations = 0
        self._failovers = 0
        self._degraded_queries = 0
        self._worker_timeouts = 0
        self._worker_crashes = 0
        #: Coordinator-side resource meters. They live here — not in the
        #: workers — so totals stay monotone across worker crash/restart
        #: (a respawned worker's counters reset; this ledger never does).
        self.resources = ResourceLedger()

        if snapshot_path is not None:
            from repro.store.snapshot import (
                inspect_snapshot,
                verify_snapshot_checksum,
            )

            # One checksum pass here covers the whole fleet: every
            # worker spec ships verify_snapshot=False (including the
            # ones the background restarter and inline revival rebuild
            # through this same factory), so R×P bootstraps map the
            # file without re-hashing it.
            if verify_snapshot:
                manifest = verify_snapshot_checksum(snapshot_path)
            else:
                manifest = inspect_snapshot(snapshot_path)
            if manifest.substrate is None and substrate is None:
                raise InvalidParameterError(
                    "snapshot carries no substrate descriptor; pass "
                    "substrate=... so workers can rebuild the token index"
                )
            self._snapshot_path = str(snapshot_path)
            self._base_sets = None
            self._base_names = None
        else:
            # In-memory shipping: freeze the dense base once; restarts
            # replay history on top of this exact state.
            self._snapshot_path = None
            if substrate is None:
                raise InvalidParameterError(
                    "in-memory cluster bootstrap needs a substrate "
                    "descriptor (substrate=...)"
                )
            self._base_sets = tuple(
                tuple(sorted(collection[set_id]))
                for set_id in collection.ids()
            )
            self._base_names = tuple(
                collection.name_of(set_id) for set_id in collection.ids()
            )

        ctx = multiprocessing.get_context(start_method)
        self._partitions = [
            PartitionGroup(
                partition_id,
                [
                    _WorkerHandle(
                        partition_id,
                        ctx,
                        self._make_spec,
                        bootstrap_timeout=bootstrap_timeout,
                        replica=replica,
                    )
                    for replica in range(replicas)
                ],
            )
            for partition_id in range(workers)
        ]
        #: Flat partition-major handle list (replica 0 of partition 0
        #: first). With ``replicas=1`` this is exactly the
        #: pre-replication list, which the test-suite's crash
        #: injection indexes into directly.
        self._handles = [
            handle
            for group in self._partitions
            for handle in group.handles
        ]
        #: Dead replicas awaiting the background restarter; ``None``
        #: is the shutdown sentinel.
        self._restart_queue: "queue.SimpleQueue[_WorkerHandle | None]" = (
            queue.SimpleQueue()
        )
        self._restart_thread = threading.Thread(
            target=self._restart_loop,
            name="repro-cluster-restarter",
            daemon=True,
        )
        try:
            for record in bootstrap_records or ():
                self._apply_bootstrap_record(record)
            for handle in self._handles:
                hello = handle.spawn()
                self._check_version(hello["version"], "bootstrap")
            self._restart_thread.start()
        except BaseException:
            self.close()
            raise

    # -- spec / replication internals --------------------------------------

    def _make_spec(self, worker_id: int, replica: int = 0) -> WorkerSpec:
        # Per-worker configs (engine A/B rollouts, the differential
        # harness's mixed-engine fleet) override the fleet default; the
        # engines guarantee bitwise-identical results either way.
        # Taken under the lock: the background restarter builds specs
        # concurrently with mutations, and a torn history snapshot
        # would replay a half-applied record.
        with self._lock:
            config = self._config
            if self._worker_configs is not None:
                config = self._worker_configs[worker_id]
            faults = None
            if self._fault_injector is not None:
                faults = self._fault_injector.spawn_faults(
                    worker_id, replica
                )
            return WorkerSpec(
                worker_id=worker_id,
                num_workers=self._num_workers,
                shards=self._shards,
                shard_seed=self._shard_seed,
                alpha=self._alpha,
                config=config,
                snapshot_path=self._snapshot_path,
                sets=self._base_sets,
                names=self._base_names,
                substrate=self._substrate,
                base_version=0,
                history=tuple(self._history),
                # Captured at spawn/restart time, so a worker started
                # after tracing was enabled adopts it (and one
                # restarted after disable() comes up untraced).
                trace=trace_config(),
                replica=replica,
                faults=faults,
                verify_snapshot=False,
            )

    def _apply_local(
        self, op: str, ref: int | str | None, tokens: Any
    ) -> tuple[int, dict[str, Any]]:
        """Apply one mutation to the coordinator replica; returns
        ``(set_id, record)`` with the record carrying the authoritative
        (possibly auto-assigned) name. The single local-apply path for
        both live mutations and bootstrap replay, so the replayed
        history can never diverge from what the live fleet applied."""
        collection = self._mutable_collection()
        extend = getattr(self._token_index, "extend", None)
        if op == "insert":
            members = frozenset(tokens)
            if extend is not None:
                extend(members)
            set_id = collection.insert(
                members, name=ref if isinstance(ref, str) else None
            )
            return set_id, mutation_record(
                "insert", collection.name_of(set_id), tuple(members)
            )
        if op == "delete":
            assert ref is not None
            name = ref if isinstance(ref, str) else collection.name_of(ref)
            return collection.delete(ref), mutation_record(
                "delete", name, None
            )
        if op == "replace":
            assert ref is not None
            members = frozenset(tokens)
            name = ref if isinstance(ref, str) else collection.name_of(ref)
            if extend is not None:
                extend(members)
            return collection.replace(ref, members), mutation_record(
                "replace", name, tuple(members)
            )
        raise ClusterError(f"unknown mutation op: {op!r}")

    def _apply_bootstrap_record(self, record: Any) -> None:
        """Apply one pre-serving record to the coordinator replica and
        the history (workers have not spawned yet — they receive these
        through bootstrap replay, not a live broadcast)."""
        if hasattr(record, "op"):  # WalRecord
            record = {
                "op": record.op,
                "name": record.name,
                **(
                    {"tokens": list(record.tokens)}
                    if record.tokens is not None
                    else {}
                ),
            }
        _, replicated = self._apply_local(
            record.get("op"), record.get("name"), record.get("tokens")
        )
        self._history.append(replicated)

    def _live_version(self) -> int:
        return getattr(self._collection, "version", 0)

    def _check_version(self, observed: int, what: str) -> None:
        expected = self._live_version()
        if observed != expected:
            raise ClusterError(
                f"worker replica diverged during {what}: replica at "
                f"{observed}, coordinator at {expected}"
            )

    def _restart(self, handle: _WorkerHandle, *, why: str) -> None:
        """Restart one worker and verify its re-bootstrapped version."""
        hello = handle.spawn()
        self._check_version(hello["version"], f"restart after {why}")

    def _schedule_restart(
        self, group: PartitionGroup, handle: _WorkerHandle
    ) -> bool:
        """Discard a failed replica and decide how it comes back.

        Returns True when the respawn was handed to the background
        restarter (another live replica covers the partition, so no
        query needs to wait for the bootstrap); False when this was the
        partition's last replica and the caller must recover inline.
        """
        handle.discard()
        if any(
            other is not handle and other.alive() and not other.restarting
            for other in group.handles
        ):
            handle.restarting = True
            self._restart_queue.put(handle)
            return True
        return False

    def _restart_loop(self) -> None:
        """The background restarter: respawn dead replicas without
        blocking queries (their partition is covered by a live sibling
        while the bootstrap runs)."""
        while True:
            handle = self._restart_queue.get()
            if handle is None:
                return
            try:
                self._background_restart(handle)
            except Exception:  # noqa: BLE001 — leave the replica down
                # (e.g. a persistent bootstrap failure): the next op
                # that finds its partition uncovered retries inline,
                # and liveness keeps reporting it dead meanwhile.
                handle.discard()
            finally:
                handle.restarting = False

    def _background_restart(self, handle: _WorkerHandle) -> None:
        """Respawn one replica: spec under the lock, the (slow) spawn
        outside it, then a locked catch-up of whatever mutations were
        broadcast while the bootstrap ran."""
        with self._lock:
            if self._closed:
                return
            spec = self._make_spec(handle.worker_id, handle.replica)
            spec_version = self._live_version()
        hello = handle.spawn(spec)
        if hello["version"] != spec_version:
            raise ClusterError(
                f"worker {handle.label} re-bootstrapped to version "
                f"{hello['version']}, expected {spec_version}"
            )
        with self._lock:
            if self._closed:
                handle.discard()
                return
            # The handle was out of rotation (restarting=True), so
            # broadcasts skipped it; feed the history delta under the
            # lock — no new mutation can interleave with the catch-up.
            version = spec_version
            for record in self._history[len(spec.history):]:
                version += 1
                if not handle.send(
                    OP_MUTATE, {"record": record, "version": version}
                ):
                    raise WorkerCrashError(
                        f"worker {handle.label} died during restart "
                        "catch-up"
                    )
                ack = handle.receive(
                    self._request_timeout, what="restart catch-up"
                )
                if ack["version"] != version:
                    raise ClusterError(
                        f"worker {handle.label} caught up to version "
                        f"{ack['version']}, expected {version}"
                    )

    def replica_handle(
        self, partition: int, replica: int
    ) -> _WorkerHandle | None:
        """The handle serving one replica slot (the fault injector's
        target accessor); None for out-of-range slots."""
        if not 0 <= partition < len(self._partitions):
            return None
        group = self._partitions[partition]
        if not 0 <= replica < len(group.handles):
            return None
        return group.handles[replica]

    def primary_handle(self, partition: int) -> _WorkerHandle | None:
        """The partition's *current* primary — it moves on failover, so
        benches and chaos drivers that target "the primary" must ask
        each time rather than assume replica 0; None when out of range."""
        if not 0 <= partition < len(self._partitions):
            return None
        return self._partitions[partition].primary

    def _ensure_open(self) -> None:
        if self._closed:
            raise ClusterError("cluster pool is closed")

    # -- SearchBackend surface ---------------------------------------------

    @property
    def collection(self) -> SetCollection:
        return self._collection

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def version(self) -> Hashable:
        """Cache-key component (the live replicated version)."""
        return ("cluster", self._live_version())

    @property
    def total_restarts(self) -> int:
        return sum(max(handle.restarts, 0) for handle in self._handles)

    def _effective_alpha(self, alpha: float | None) -> float:
        return resolve_alpha(self._alpha, alpha, self._token_index)

    def drain(
        self, query: Iterable[str], *, alpha: float | None = None
    ) -> MaterializedTokenStream:
        """Drain one stream coordinator-side (workers replay it).

        One drain serves the whole fleet: the coordinator holds the
        same token index and full vocabulary the workers do, so the
        stream it materializes is exactly what each worker would have
        drained itself.
        """
        query_set = frozenset(query)
        if not query_set:
            raise EmptyQueryError("query set is empty")
        effective_alpha = self._effective_alpha(alpha)
        with self._lock:
            stream = materialize_stream(
                self._token_index,
                self._collection,
                query_set,
                effective_alpha,
                engine=None if self._config is None else self._config.engine,
            )
            stream.version = self.version
            return stream

    def search(
        self,
        query: Iterable[str],
        k: int = 10,
        *,
        alpha: float | None = None,
        stream: MaterializedTokenStream | None = None,
        time_budget: float | None = None,
    ) -> SearchResult:
        """Exact global top-k: scatter to every worker, merge partials.

        The scatter-gather runs under the coordinator lock, so queries
        and mutations serialize at this layer — the version barrier a
        query carries is therefore always the fully-applied one. (Pipe
        connections are single-consumer, so concurrent scatters would
        need per-worker request routing; the parallelism this backend
        buys is per-query *across* workers, which is where the KOIOS
        hot-path time goes. Scheduler threads over a cluster backend
        overlap cache hits and batch assembly, not scatters.)
        """
        query_set = frozenset(query)
        if not query_set:
            raise EmptyQueryError("query set is empty")
        if k < 1:
            raise InvalidParameterError("k must be >= 1")
        effective_alpha = self._effective_alpha(alpha)
        watch = Stopwatch()
        with self._lock:
            self._ensure_open()
            if self._fault_injector is not None:
                self._fault_injector.begin_op(self)
            if stream is not None and (
                stream.version is not None
                and stream.version != self.version
            ):
                # Drained before a mutation landed: its vocabulary
                # filter belongs to the old state. Re-drain rather than
                # ship a torn view to the fleet.
                stream = None
            if stream is None:
                stream = self.drain(query_set, alpha=effective_alpha)
            else:
                if not stream.covers(query_set, effective_alpha):
                    raise InvalidParameterError(
                        "provided stream does not cover this query/alpha"
                    )
                stream = stream.restrict(query_set)
            payload = {
                "query": sorted(query_set),
                "k": k,
                "alpha": effective_alpha,
                "stream": encode_stream(stream),
                "version": self._live_version(),
                "time_budget": time_budget,
            }
            tracer = get_tracer()
            parent = current_context() if tracer.enabled else None
            if parent is not None:
                # One scatter span per query; its context rides the
                # payload so every worker's span nests under it in the
                # shared sink.
                with tracer.span(
                    "cluster.scatter",
                    parent=parent,
                    tags={"workers": self._num_workers},
                ) as scatter:
                    payload["trace"] = encode_trace(scatter.context)
                    partials, covered, total = self._scatter_search(payload)
            else:
                partials, covered, total = self._scatter_search(payload)
            self._queries += 1
            merged = merge_results(partials, k)
            if covered < total:
                # Every replica of >= 1 partition is down and could not
                # be revived within the deadline: answer with what the
                # live partitions returned, honestly labelled, instead
                # of erroring or stalling.
                self._degraded_queries += 1
                merged = dataclass_replace(
                    merged, degraded=True, coverage=(covered, total)
                )
            self.resources.charge_search(watch.stop(), merged.stats)
        return merged

    def _send_search(
        self, handle: _WorkerHandle, payload: dict[str, Any]
    ) -> bool:
        """Send one search to one replica, merging any armed payload
        faults (injected slowness) for that replica slot."""
        message = payload
        if self._fault_injector is not None:
            extra = self._fault_injector.payload_faults(
                handle.worker_id, handle.replica
            )
            if extra:
                message = {**payload, **extra}
        return handle.send(OP_SEARCH, message)

    def _scatter_search(
        self, payload: dict[str, Any]
    ) -> tuple[list[SearchResult], int, int]:
        """Fan one search out across partitions, failing over to live
        replicas; returns ``(partials, partitions answered, total)``.

        All sends happen before any receive — that is the fan-out that
        buys multi-core parallelism. Each partition's read goes to its
        primary; a primary that fails at either step fails over through
        the remaining live replicas (the answering replica is promoted,
        the dead one handed to the background restarter). Only when no
        replica is left does the coordinator block on a synchronous
        restart, bounded by the retry policy and the per-op deadline;
        a partition that still cannot answer is simply absent from the
        partials (the caller degrades the merged result).

        The per-op deadline is *two* receive-timeout windows: a hung
        primary legitimately burns one full ``request_timeout`` before
        it is declared dead, and the failover read (or revival) then
        needs a window of its own — a single-window deadline would turn
        every primary timeout into a degraded answer.
        """
        deadline = time.monotonic() + 2.0 * self._request_timeout
        targets: dict[int, _WorkerHandle | None] = {}
        for group in self._partitions:
            target = None
            for handle in group.live_replicas():
                if self._send_search(handle, payload):
                    target = handle
                    break
                # The send itself failed: the pipe is torn, which is a
                # crash as far as classification goes.
                self._worker_crashes += 1
                if not self._schedule_restart(group, handle):
                    break  # last replica; the gather stage revives it
            targets[group.partition_id] = target
        results: dict[int, SearchResult] = {}
        for group in self._partitions:
            partial = self._gather_partition(
                group, targets[group.partition_id], payload, deadline
            )
            if partial is not None:
                results[group.partition_id] = partial
        partials = [results[pid] for pid in sorted(results)]
        return partials, len(results), len(self._partitions)

    def _gather_partition(
        self,
        group: PartitionGroup,
        handle: _WorkerHandle | None,
        payload: dict[str, Any],
        deadline: float,
    ) -> SearchResult | None:
        """Collect one partition's partial, failing over across its
        replicas; None means the partition could not answer (degraded).

        Timeouts and crashes fail over (any live replica answers
        bitwise-identically); :class:`~repro.errors.WorkerProtocolError`
        propagates — the worker *answered*, and a deterministic replica
        would answer the same, so failover would only mask the bug.
        """
        current = handle
        while True:
            if current is not None:
                try:
                    remaining = max(deadline - time.monotonic(), 0.0)
                    result = current.receive(
                        min(self._request_timeout, remaining),
                        what="search",
                    )
                except WorkerTimeoutError:
                    self._worker_timeouts += 1
                    self._schedule_restart(group, current)
                except WorkerCrashError:
                    self._worker_crashes += 1
                    self._schedule_restart(group, current)
                else:
                    if group.promote(current):
                        self._failovers += 1
                    return result
            # Fail over: first live sibling that accepts the send.
            current = None
            for candidate in group.live_replicas():
                if self._send_search(candidate, payload):
                    current = candidate
                    break
                self._worker_crashes += 1
                self._schedule_restart(group, candidate)
            if current is not None:
                continue
            return self._revive_and_ask(group, payload, deadline)

    def _revive_and_ask(
        self,
        group: PartitionGroup,
        payload: dict[str, Any],
        deadline: float,
    ) -> SearchResult | None:
        """Last resort for a partition with no live replica: bounded
        synchronous restart attempts under the retry policy, each
        capped by what remains of the per-op deadline."""
        candidates = [h for h in group.handles if not h.restarting]
        if not candidates:
            # Every replica is mid-restart on the background thread;
            # this partition sits the query out rather than stalling.
            return None
        target = candidates[0]
        budget = max(deadline - time.monotonic(), 0.0)
        pauses = [0.0, *self._retry.capped_delays(budget)]
        for pause in pauses:
            if pause > 0.0:
                time.sleep(pause)
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                break
            try:
                hello = target.spawn(timeout=remaining)
                self._check_version(
                    hello["version"], "restart after search failure"
                )
                if not self._send_search(target, payload):
                    raise WorkerCrashError(
                        f"worker {target.label} failed immediately "
                        "after restart"
                    )
                remaining = max(deadline - time.monotonic(), 0.0)
                result = target.receive(
                    min(self._request_timeout, remaining),
                    what="search retry",
                )
            except WorkerTimeoutError:
                self._worker_timeouts += 1
                target.discard()
            except WorkerCrashError:
                self._worker_crashes += 1
                target.discard()
            except ClusterError:
                # Bootstrap refusal / version divergence / protocol
                # error during revival: count the attempt, retry under
                # the policy, and degrade when the budget runs out.
                target.discard()
            else:
                if group.promote(target):
                    self._failovers += 1
                return result
        return None

    # -- mutation ----------------------------------------------------------

    def _mutable_collection(self):
        return require_mutable(self._collection)

    def insert(
        self, tokens: Iterable[str], *, name: str | None = None
    ) -> int:
        """Insert locally, then replicate under the version barrier."""
        with self._lock:
            self._ensure_open()
            if self._fault_injector is not None:
                self._fault_injector.begin_op(self)
            set_id, record = self._apply_local("insert", name, tokens)
            self._replicate(record)
        return set_id

    def delete(self, ref: int | str) -> int:
        """Delete locally, then replicate under the version barrier."""
        with self._lock:
            self._ensure_open()
            if self._fault_injector is not None:
                self._fault_injector.begin_op(self)
            set_id, record = self._apply_local("delete", ref, None)
            self._replicate(record)
        return set_id

    def replace(self, ref: int | str, tokens: Iterable[str]) -> int:
        """Replace locally, then replicate under the version barrier."""
        with self._lock:
            self._ensure_open()
            if self._fault_injector is not None:
                self._fault_injector.begin_op(self)
            set_id, record = self._apply_local("replace", ref, tokens)
            self._replicate(record)
        return set_id

    def _replicate(self, record: dict[str, Any]) -> None:
        """Ship one applied mutation to every worker and barrier on it.

        The record joins the history *before* the broadcast: a worker
        that dies mid-broadcast re-bootstraps from history and thereby
        applies the record exactly once (its restart hello is version-
        checked in place of an ACK).
        """
        self._history.append(record)
        self._mutations += 1
        expected = self._live_version()
        payload = {"record": record, "version": expected}
        pending: list[tuple[PartitionGroup, _WorkerHandle]] = []
        failed: list[tuple[PartitionGroup, _WorkerHandle]] = []
        for group in self._partitions:
            for handle in group.handles:
                if handle.restarting:
                    # Out of rotation: the background restarter's
                    # catch-up replays this record from the history.
                    continue
                if handle.send(OP_MUTATE, payload):
                    pending.append((group, handle))
                else:
                    self._worker_crashes += 1
                    failed.append((group, handle))
        for group, handle in pending:
            try:
                ack = handle.receive(self._request_timeout, what="mutate")
                # A divergent ack inside the try: the worker joins the
                # restart list like any other failure, AFTER the
                # remaining workers' acks have been drained — one bad
                # replica must never poison the other pipes.
                self._check_version(ack["version"], "mutate ack")
            except WorkerTimeoutError:
                self._worker_timeouts += 1
                failed.append((group, handle))
            except WorkerCrashError:
                self._worker_crashes += 1
                failed.append((group, handle))
            except ClusterError:
                # Protocol error or divergence: for mutations, restart
                # IS the repair (re-bootstrap re-derives the state).
                failed.append((group, handle))
        for group, handle in failed:
            # Restart replays the full history (including this record);
            # the version-checked hello doubles as the ACK. A restart
            # that itself fails must NOT fail the mutation: it is
            # already applied on the coordinator and the surviving
            # replicas (and about to be WAL-logged by the scheduler) —
            # raising here would acknowledge an error for a mutation
            # the cluster visibly serves, and strand it outside the
            # durable log. When a live sibling replica covers the
            # partition the respawn happens in the background; only a
            # partition's last replica is revived inline. Leave a
            # worker down if even that fails; the next operation that
            # touches it retries the spawn.
            if self._schedule_restart(group, handle):
                continue
            try:
                self._restart(handle, why="mutation broadcast failure")
            except ClusterError:
                handle.discard()

    # -- health / metrics ---------------------------------------------------

    def health_check(self) -> list[dict[str, Any]]:
        """Ping every worker, restarting any that died; returns one
        status dict per worker."""
        statuses = []
        with self._lock:
            self._ensure_open()
            for handle in self._handles:
                if handle.restarting:
                    # The background restarter owns this replica; do
                    # not race it with a second spawn.
                    statuses.append(
                        {
                            "worker_id": handle.worker_id,
                            "replica": handle.replica,
                            "worker": handle.label,
                            "alive": False,
                            "restarting": True,
                            "restarted": False,
                            "restarts": max(handle.restarts, 0),
                        }
                    )
                    continue
                restarted = False
                try:
                    if not handle.send(OP_PING, None):
                        raise ClusterError(
                            f"worker {handle.label} is not running"
                        )
                    pong = handle.receive(
                        self._request_timeout, what="ping"
                    )
                    self._check_version(pong["version"], "ping")
                except ClusterError:
                    self._restart(handle, why="failed health check")
                    restarted = True
                statuses.append(
                    {
                        "worker_id": handle.worker_id,
                        "replica": handle.replica,
                        "worker": handle.label,
                        "alive": handle.alive(),
                        "restarted": restarted,
                        "restarts": max(handle.restarts, 0),
                    }
                )
        return statuses

    def liveness(self) -> list[dict[str, Any]]:
        """Per-worker liveness WITHOUT pinging or restarting anyone.

        The readiness probe's view of the fleet: ``health_check`` is a
        repair action (it restarts dead workers as a side effect), so a
        ``/readyz`` that called it could never observe a down worker.
        This only inspects process state — a killed worker reads
        ``alive: False`` here until the next health check or search
        revives it.
        """
        with self._lock:
            self._ensure_open()
            return [
                {
                    "worker_id": handle.worker_id,
                    "replica": handle.replica,
                    "worker": handle.label,
                    "alive": handle.alive() and not handle.restarting,
                    "restarting": handle.restarting,
                    "restarts": max(handle.restarts, 0),
                }
                for handle in self._handles
            ]

    def engine_description(self) -> dict[str, Any]:
        """What executes a query, for EXPLAIN reports."""
        return {
            "backend": "cluster",
            "engine": (
                "columnar" if self._config is None else self._config.engine
            ),
            "workers": self._num_workers,
            "shards_per_worker": self._shards,
        }

    def cluster_metrics(self) -> ClusterMetrics:
        """Gather per-worker metrics snapshots into a rollup."""
        with self._lock:
            self._ensure_open()
            snapshots: dict[str, dict[str, Any]] = {}
            for handle in self._handles:
                if handle.restarting:
                    continue  # mid-restart: nothing to report yet
                if not handle.send(OP_METRICS, None):
                    continue  # a dead worker has no metrics to report
                try:
                    snapshots[handle.label] = handle.receive(
                        self._request_timeout, what="metrics"
                    )
                except ClusterError:
                    # The request may still be in flight on a stalled
                    # worker; its late reply would desynchronize the
                    # request/reply pipe for every later op. Drop the
                    # connection — the next interaction respawns.
                    handle.discard()
            return ClusterMetrics(
                snapshots,
                queries=self._queries,
                mutations=self._mutations,
                restarts=self.total_restarts,
                failovers=self._failovers,
                degraded=self._degraded_queries,
                worker_timeouts=self._worker_timeouts,
                worker_crashes=self._worker_crashes,
            )

    def stats_snapshot(self) -> dict[str, Any]:
        """Backend-side payload of the ``stats`` wire op."""
        snapshot = self.cluster_metrics().snapshot()
        version = self.version
        snapshot["version"] = (
            list(version) if isinstance(version, tuple) else version
        )
        snapshot["num_sets"] = len(self._collection)
        snapshot["resources"] = self.resources.snapshot()
        return snapshot

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop the restarter, then every worker; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        # Outside the lock: the restarter may be blocked *on* the lock
        # (catch-up), and must observe _closed and drain its queue. A
        # restart thread that never started (bootstrap failure) is not
        # joinable and gets skipped.
        self._restart_queue.put(None)
        if self._restart_thread.is_alive():
            self._restart_thread.join(timeout=10.0)
        with self._lock:
            for handle in self._handles:
                handle.stop()

    def shutdown(self) -> None:
        """Alias matching :meth:`EnginePool.shutdown`."""
        self.close()

    def __enter__(self) -> "ClusterPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
