"""The scatter-gather coordinator: :class:`ClusterPool`.

``ClusterPool`` is a :class:`~repro.service.backend.SearchBackend` whose
shard engines live in worker *processes* instead of threads, so the
pure-Python KOIOS filter/verify hot path runs on every core instead of
time-slicing one GIL. It plugs into the existing
:class:`~repro.service.scheduler.QueryScheduler` / JSON-lines server
stack unchanged.

Exactness
---------
Results are bitwise-identical to a single-process
``EnginePool(shards=N)`` over the same ``shard_seed``: each worker owns
partition ``i`` of the *same* deterministic ``collection.partition(N)``
split a ``shards=N`` pool uses, its engines are the same
:class:`~repro.core.koios.KoiosSearchEngine` instances single-process
serving builds, and partial top-k lists merge through the same
:func:`~repro.service.pool.merge_results`. Workers do not share a live
``GlobalThreshold`` across processes — sharing only prunes *work*,
never changes the exact merged top-k, so the cluster trades a little
redundant filtering for zero cross-process chatter during a query.

Replication
-----------
Mutations are applied to the coordinator's local replica first (which
assigns the authoritative id/name and validates), then shipped to every
worker as a WAL record and acknowledged under a **version barrier**: the
mutation call does not return until every live worker reports the
coordinator's exact post-mutation version, and every query carries the
version it expects, which workers verify before searching. A query can
therefore never observe a half-applied mutation across partitions.

Failure handling
----------------
A worker that dies (crash, kill, hung pipe) is detected on the next
interaction, restarted, and re-bootstrapped from the base state (shared
snapshot, or in-memory shipped) plus the full mutation history — the
deterministic replay reconstructs byte-identical state, so a restart is
invisible in results.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import Any, Hashable, Iterable, Sequence

from repro.cluster.messages import (
    OP_METRICS,
    OP_MUTATE,
    OP_PING,
    OP_SEARCH,
    OP_STOP,
    STATUS_OK,
    WorkerSpec,
    encode_stream,
    encode_trace,
    mutation_record,
)
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.worker import worker_main
from repro.core.config import FilterConfig
from repro.core.koios import SearchResult
from repro.datasets.collection import SetCollection
from repro.errors import (
    ClusterError,
    EmptyQueryError,
    InvalidParameterError,
)
from repro.index.base import TokenIndex
from repro.index.token_stream import MaterializedTokenStream
from repro.obs import current_context, get_tracer, trace_config
from repro.obs.accounting import ResourceLedger
from repro.obs.timing import Stopwatch
from repro.service.backend import (
    materialize_stream,
    require_mutable,
    resolve_alpha,
)
from repro.service.pool import merge_results
from repro.sim.base import SimilarityFunction


class _WorkerHandle:
    """One worker process + its pipe, with crash bookkeeping."""

    def __init__(self, worker_id: int, ctx, spec_factory, *,
                 bootstrap_timeout: float) -> None:
        self.worker_id = worker_id
        self._ctx = ctx
        self._spec_factory = spec_factory
        self._bootstrap_timeout = bootstrap_timeout
        self.process = None
        self.conn = None
        self.restarts = -1  # first spawn brings this to 0

    # -- lifecycle ---------------------------------------------------------

    def spawn(self) -> dict[str, Any]:
        """Start (or restart) the process; returns its hello payload."""
        self.discard()
        spec = self._spec_factory(self.worker_id)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(spec, child_conn),
            daemon=True,
            name=f"repro-cluster-worker-{self.worker_id}",
        )
        process.start()
        child_conn.close()
        self.process = process
        self.conn = parent_conn
        self.restarts += 1
        return self.receive(self._bootstrap_timeout, what="bootstrap")

    def alive(self) -> bool:
        return (
            self.process is not None
            and self.process.is_alive()
            and self.conn is not None
        )

    def discard(self) -> None:
        """Drop a dead (or dying) process and its pipe.

        Workers ignore SIGINT/SIGTERM (the coordinator owns shutdown),
        so ``terminate`` alone cannot be relied on — escalate to
        SIGKILL for a worker that will not exit.
        """
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
        if self.process is not None:
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=2)
            if self.process.is_alive():
                self.process.kill()
            self.process.join(timeout=5)
            self.process = None

    def stop(self, timeout: float = 5.0) -> None:
        """Cooperative shutdown, escalating to terminate."""
        if self.conn is not None and self.alive():
            try:
                self.conn.send((OP_STOP, None))
                self.conn.poll(timeout)
            except OSError:
                pass
        self.discard()

    # -- messaging ---------------------------------------------------------

    def send(self, op: str, payload: Any) -> bool:
        """Best-effort send; False marks the worker as failed."""
        if not self.alive():
            return False
        try:
            self.conn.send((op, payload))
            return True
        except (BrokenPipeError, OSError):
            return False

    def receive(self, timeout: float, *, what: str) -> Any:
        """Blocking receive with timeout; raises ClusterError on any
        transport failure or worker-reported error."""
        if self.conn is None:
            raise ClusterError(
                f"worker {self.worker_id} has no live connection"
            )
        try:
            if not self.conn.poll(timeout):
                raise ClusterError(
                    f"worker {self.worker_id} timed out after {timeout}s "
                    f"({what})"
                )
            status, payload = self.conn.recv()
        except (EOFError, OSError) as exc:
            raise ClusterError(
                f"worker {self.worker_id} connection failed ({what}): "
                f"{exc or type(exc).__name__}"
            ) from exc
        if status != STATUS_OK:
            raise ClusterError(
                f"worker {self.worker_id} error ({what}): {payload}"
            )
        return payload


class ClusterPool:
    """Multi-process scatter-gather serving over worker partitions.

    Parameters
    ----------
    collection:
        The repository. Must be at version 0 (a pristine base): worker
        replicas reconstruct state as *base + mutation history*, so any
        pre-existing mutations must arrive through
        ``bootstrap_records``, not be baked into the object.
    token_index / sim:
        The coordinator's own substrate — used to drain token streams
        once per query (workers replay the shipped stream) and to
        extend the vocabulary on inserts.
    workers:
        Worker process count; the set-id space is split into exactly
        this many partitions (same layout as ``EnginePool(shards=workers)``).
    shards:
        Engines *per worker* (each worker subdivides its partition).
    worker_configs:
        One :class:`FilterConfig` per worker, overriding ``config``
        worker by worker — engine A/B rollouts and the differential
        harness's mixed-engine fleets use this; results are identical
        whichever worker serves a partition.
    snapshot_path:
        When given, workers bootstrap by loading this snapshot instead
        of receiving the collection through the spawn pickle — the fast
        path for large corpora. Falls back to in-memory shipping when
        None.
    substrate:
        Substrate descriptor for worker-side index reconstruction
        (required for in-memory shipping; optional when the snapshot
        embeds one).
    bootstrap_records:
        WAL records (dicts or :class:`~repro.store.wal.WalRecord`) to
        apply on top of the base before serving — the cluster analogue
        of ``repro serve``'s WAL replay on start.
    start_method:
        ``multiprocessing`` start method; the default ``spawn`` is the
        portable, thread-safe choice and the one the test-suite pins.
    request_timeout / bootstrap_timeout:
        Seconds to wait for a worker's answer / bootstrap hello before
        declaring it failed.
    """

    def __init__(
        self,
        collection: SetCollection,
        token_index: TokenIndex,
        sim: SimilarityFunction,
        *,
        alpha: float = 0.8,
        workers: int = 2,
        shards: int = 1,
        shard_seed: int = 0,
        config: FilterConfig | None = None,
        worker_configs: Sequence[FilterConfig] | None = None,
        snapshot_path: str | None = None,
        substrate: dict[str, Any] | None = None,
        bootstrap_records: Iterable[Any] | None = None,
        start_method: str = "spawn",
        request_timeout: float = 120.0,
        bootstrap_timeout: float = 120.0,
    ) -> None:
        if workers < 1:
            raise InvalidParameterError("workers must be >= 1")
        if worker_configs is not None and len(worker_configs) != workers:
            raise InvalidParameterError(
                "worker_configs must name one FilterConfig per worker"
            )
        if shards < 1:
            raise InvalidParameterError("shards must be >= 1")
        if not (0.0 < alpha <= 1.0):
            raise InvalidParameterError("alpha must be in (0, 1]")
        if len(collection) == 0:
            raise InvalidParameterError("cannot serve an empty collection")
        if getattr(collection, "version", 0) != 0:
            raise InvalidParameterError(
                "cluster bootstrap needs a pristine base collection "
                "(version 0); pass prior mutations via bootstrap_records "
                "so worker replicas can replay them"
            )
        self._collection = collection
        self._token_index = token_index
        self._sim = sim
        self._alpha = alpha
        self._num_workers = workers
        self._shards = shards
        self._shard_seed = shard_seed
        self._config = config
        self._worker_configs = (
            None if worker_configs is None else tuple(worker_configs)
        )
        self._substrate = substrate
        self._request_timeout = request_timeout
        self._lock = threading.RLock()
        self._closed = False
        self._history: list[dict[str, Any]] = []
        self._queries = 0
        self._mutations = 0
        #: Coordinator-side resource meters. They live here — not in the
        #: workers — so totals stay monotone across worker crash/restart
        #: (a respawned worker's counters reset; this ledger never does).
        self.resources = ResourceLedger()

        if snapshot_path is not None:
            from repro.store.snapshot import inspect_snapshot

            manifest = inspect_snapshot(snapshot_path)
            if manifest.substrate is None and substrate is None:
                raise InvalidParameterError(
                    "snapshot carries no substrate descriptor; pass "
                    "substrate=... so workers can rebuild the token index"
                )
            self._snapshot_path = str(snapshot_path)
            self._base_sets = None
            self._base_names = None
        else:
            # In-memory shipping: freeze the dense base once; restarts
            # replay history on top of this exact state.
            self._snapshot_path = None
            if substrate is None:
                raise InvalidParameterError(
                    "in-memory cluster bootstrap needs a substrate "
                    "descriptor (substrate=...)"
                )
            self._base_sets = tuple(
                tuple(sorted(collection[set_id]))
                for set_id in collection.ids()
            )
            self._base_names = tuple(
                collection.name_of(set_id) for set_id in collection.ids()
            )

        ctx = multiprocessing.get_context(start_method)
        self._handles = [
            _WorkerHandle(
                worker_id,
                ctx,
                self._make_spec,
                bootstrap_timeout=bootstrap_timeout,
            )
            for worker_id in range(workers)
        ]
        try:
            for record in bootstrap_records or ():
                self._apply_bootstrap_record(record)
            for handle in self._handles:
                hello = handle.spawn()
                self._check_version(hello["version"], "bootstrap")
        except BaseException:
            self.close()
            raise

    # -- spec / replication internals --------------------------------------

    def _make_spec(self, worker_id: int) -> WorkerSpec:
        # Per-worker configs (engine A/B rollouts, the differential
        # harness's mixed-engine fleet) override the fleet default; the
        # engines guarantee bitwise-identical results either way.
        config = self._config
        if self._worker_configs is not None:
            config = self._worker_configs[worker_id]
        return WorkerSpec(
            worker_id=worker_id,
            num_workers=self._num_workers,
            shards=self._shards,
            shard_seed=self._shard_seed,
            alpha=self._alpha,
            config=config,
            snapshot_path=self._snapshot_path,
            sets=self._base_sets,
            names=self._base_names,
            substrate=self._substrate,
            base_version=0,
            history=tuple(self._history),
            # Captured at spawn/restart time, so a worker started after
            # tracing was enabled adopts it (and one restarted after
            # disable() comes up untraced).
            trace=trace_config(),
        )

    def _apply_local(
        self, op: str, ref: int | str | None, tokens: Any
    ) -> tuple[int, dict[str, Any]]:
        """Apply one mutation to the coordinator replica; returns
        ``(set_id, record)`` with the record carrying the authoritative
        (possibly auto-assigned) name. The single local-apply path for
        both live mutations and bootstrap replay, so the replayed
        history can never diverge from what the live fleet applied."""
        collection = self._mutable_collection()
        extend = getattr(self._token_index, "extend", None)
        if op == "insert":
            members = frozenset(tokens)
            if extend is not None:
                extend(members)
            set_id = collection.insert(
                members, name=ref if isinstance(ref, str) else None
            )
            return set_id, mutation_record(
                "insert", collection.name_of(set_id), tuple(members)
            )
        if op == "delete":
            assert ref is not None
            name = ref if isinstance(ref, str) else collection.name_of(ref)
            return collection.delete(ref), mutation_record(
                "delete", name, None
            )
        if op == "replace":
            assert ref is not None
            members = frozenset(tokens)
            name = ref if isinstance(ref, str) else collection.name_of(ref)
            if extend is not None:
                extend(members)
            return collection.replace(ref, members), mutation_record(
                "replace", name, tuple(members)
            )
        raise ClusterError(f"unknown mutation op: {op!r}")

    def _apply_bootstrap_record(self, record: Any) -> None:
        """Apply one pre-serving record to the coordinator replica and
        the history (workers have not spawned yet — they receive these
        through bootstrap replay, not a live broadcast)."""
        if hasattr(record, "op"):  # WalRecord
            record = {
                "op": record.op,
                "name": record.name,
                **(
                    {"tokens": list(record.tokens)}
                    if record.tokens is not None
                    else {}
                ),
            }
        _, replicated = self._apply_local(
            record.get("op"), record.get("name"), record.get("tokens")
        )
        self._history.append(replicated)

    def _live_version(self) -> int:
        return getattr(self._collection, "version", 0)

    def _check_version(self, observed: int, what: str) -> None:
        expected = self._live_version()
        if observed != expected:
            raise ClusterError(
                f"worker replica diverged during {what}: replica at "
                f"{observed}, coordinator at {expected}"
            )

    def _restart(self, handle: _WorkerHandle, *, why: str) -> None:
        """Restart one worker and verify its re-bootstrapped version."""
        hello = handle.spawn()
        self._check_version(hello["version"], f"restart after {why}")

    def _ensure_open(self) -> None:
        if self._closed:
            raise ClusterError("cluster pool is closed")

    # -- SearchBackend surface ---------------------------------------------

    @property
    def collection(self) -> SetCollection:
        return self._collection

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def version(self) -> Hashable:
        """Cache-key component (the live replicated version)."""
        return ("cluster", self._live_version())

    @property
    def total_restarts(self) -> int:
        return sum(max(handle.restarts, 0) for handle in self._handles)

    def _effective_alpha(self, alpha: float | None) -> float:
        return resolve_alpha(self._alpha, alpha, self._token_index)

    def drain(
        self, query: Iterable[str], *, alpha: float | None = None
    ) -> MaterializedTokenStream:
        """Drain one stream coordinator-side (workers replay it).

        One drain serves the whole fleet: the coordinator holds the
        same token index and full vocabulary the workers do, so the
        stream it materializes is exactly what each worker would have
        drained itself.
        """
        query_set = frozenset(query)
        if not query_set:
            raise EmptyQueryError("query set is empty")
        effective_alpha = self._effective_alpha(alpha)
        with self._lock:
            stream = materialize_stream(
                self._token_index,
                self._collection,
                query_set,
                effective_alpha,
                engine=None if self._config is None else self._config.engine,
            )
            stream.version = self.version
            return stream

    def search(
        self,
        query: Iterable[str],
        k: int = 10,
        *,
        alpha: float | None = None,
        stream: MaterializedTokenStream | None = None,
        time_budget: float | None = None,
    ) -> SearchResult:
        """Exact global top-k: scatter to every worker, merge partials.

        The scatter-gather runs under the coordinator lock, so queries
        and mutations serialize at this layer — the version barrier a
        query carries is therefore always the fully-applied one. (Pipe
        connections are single-consumer, so concurrent scatters would
        need per-worker request routing; the parallelism this backend
        buys is per-query *across* workers, which is where the KOIOS
        hot-path time goes. Scheduler threads over a cluster backend
        overlap cache hits and batch assembly, not scatters.)
        """
        query_set = frozenset(query)
        if not query_set:
            raise EmptyQueryError("query set is empty")
        if k < 1:
            raise InvalidParameterError("k must be >= 1")
        effective_alpha = self._effective_alpha(alpha)
        watch = Stopwatch()
        with self._lock:
            self._ensure_open()
            if stream is not None and (
                stream.version is not None
                and stream.version != self.version
            ):
                # Drained before a mutation landed: its vocabulary
                # filter belongs to the old state. Re-drain rather than
                # ship a torn view to the fleet.
                stream = None
            if stream is None:
                stream = self.drain(query_set, alpha=effective_alpha)
            else:
                if not stream.covers(query_set, effective_alpha):
                    raise InvalidParameterError(
                        "provided stream does not cover this query/alpha"
                    )
                stream = stream.restrict(query_set)
            payload = {
                "query": sorted(query_set),
                "k": k,
                "alpha": effective_alpha,
                "stream": encode_stream(stream),
                "version": self._live_version(),
                "time_budget": time_budget,
            }
            tracer = get_tracer()
            parent = current_context() if tracer.enabled else None
            if parent is not None:
                # One scatter span per query; its context rides the
                # payload so every worker's span nests under it in the
                # shared sink.
                with tracer.span(
                    "cluster.scatter",
                    parent=parent,
                    tags={"workers": self._num_workers},
                ) as scatter:
                    payload["trace"] = encode_trace(scatter.context)
                    partials = self._scatter_search(payload)
            else:
                partials = self._scatter_search(payload)
            self._queries += 1
            merged = merge_results(partials, k)
            self.resources.charge_search(watch.stop(), merged.stats)
        return merged

    def _scatter_search(
        self, payload: dict[str, Any]
    ) -> list[SearchResult]:
        """Fan one search out; restart-and-retry any failed worker.

        All sends happen before any receive — that is the fan-out that
        buys multi-core parallelism. A worker that fails at either step
        is restarted (deterministic re-bootstrap) and asked exactly
        once more; a second failure is a hard error rather than a
        silently partial answer.
        """
        sent: list[bool] = [
            handle.send(OP_SEARCH, payload) for handle in self._handles
        ]
        results: dict[int, SearchResult] = {}
        failed: list[_WorkerHandle] = []
        for handle, ok in zip(self._handles, sent):
            if not ok:
                failed.append(handle)
                continue
            try:
                results[handle.worker_id] = handle.receive(
                    self._request_timeout, what="search"
                )
            except ClusterError:
                failed.append(handle)
        for handle in failed:
            self._restart(handle, why="search failure")
            if not handle.send(OP_SEARCH, payload):
                raise ClusterError(
                    f"worker {handle.worker_id} failed immediately after "
                    "restart"
                )
            results[handle.worker_id] = handle.receive(
                self._request_timeout, what="search retry"
            )
        return [results[handle.worker_id] for handle in self._handles]

    # -- mutation ----------------------------------------------------------

    def _mutable_collection(self):
        return require_mutable(self._collection)

    def insert(
        self, tokens: Iterable[str], *, name: str | None = None
    ) -> int:
        """Insert locally, then replicate under the version barrier."""
        with self._lock:
            self._ensure_open()
            set_id, record = self._apply_local("insert", name, tokens)
            self._replicate(record)
        return set_id

    def delete(self, ref: int | str) -> int:
        """Delete locally, then replicate under the version barrier."""
        with self._lock:
            self._ensure_open()
            set_id, record = self._apply_local("delete", ref, None)
            self._replicate(record)
        return set_id

    def replace(self, ref: int | str, tokens: Iterable[str]) -> int:
        """Replace locally, then replicate under the version barrier."""
        with self._lock:
            self._ensure_open()
            set_id, record = self._apply_local("replace", ref, tokens)
            self._replicate(record)
        return set_id

    def _replicate(self, record: dict[str, Any]) -> None:
        """Ship one applied mutation to every worker and barrier on it.

        The record joins the history *before* the broadcast: a worker
        that dies mid-broadcast re-bootstraps from history and thereby
        applies the record exactly once (its restart hello is version-
        checked in place of an ACK).
        """
        self._history.append(record)
        self._mutations += 1
        expected = self._live_version()
        payload = {"record": record, "version": expected}
        sent = [
            handle.send(OP_MUTATE, payload) for handle in self._handles
        ]
        failed: list[_WorkerHandle] = []
        for handle, ok in zip(self._handles, sent):
            if not ok:
                failed.append(handle)
                continue
            try:
                ack = handle.receive(self._request_timeout, what="mutate")
                # A divergent ack inside the try: the worker joins the
                # restart list like any other failure, AFTER the
                # remaining workers' acks have been drained — one bad
                # replica must never poison the other pipes.
                self._check_version(ack["version"], "mutate ack")
            except ClusterError:
                failed.append(handle)
        for handle in failed:
            # Restart replays the full history (including this record);
            # the version-checked hello doubles as the ACK. A restart
            # that itself fails must NOT fail the mutation: it is
            # already applied on the coordinator and the surviving
            # replicas (and about to be WAL-logged by the scheduler) —
            # raising here would acknowledge an error for a mutation
            # the cluster visibly serves, and strand it outside the
            # durable log. Leave the worker down; the next operation
            # that touches it retries the spawn.
            try:
                self._restart(handle, why="mutation broadcast failure")
            except ClusterError:
                handle.discard()

    # -- health / metrics ---------------------------------------------------

    def health_check(self) -> list[dict[str, Any]]:
        """Ping every worker, restarting any that died; returns one
        status dict per worker."""
        statuses = []
        with self._lock:
            self._ensure_open()
            for handle in self._handles:
                restarted = False
                try:
                    if not handle.send(OP_PING, None):
                        raise ClusterError(
                            f"worker {handle.worker_id} is not running"
                        )
                    pong = handle.receive(
                        self._request_timeout, what="ping"
                    )
                    self._check_version(pong["version"], "ping")
                except ClusterError:
                    self._restart(handle, why="failed health check")
                    restarted = True
                statuses.append(
                    {
                        "worker_id": handle.worker_id,
                        "alive": handle.alive(),
                        "restarted": restarted,
                        "restarts": max(handle.restarts, 0),
                    }
                )
        return statuses

    def liveness(self) -> list[dict[str, Any]]:
        """Per-worker liveness WITHOUT pinging or restarting anyone.

        The readiness probe's view of the fleet: ``health_check`` is a
        repair action (it restarts dead workers as a side effect), so a
        ``/readyz`` that called it could never observe a down worker.
        This only inspects process state — a killed worker reads
        ``alive: False`` here until the next health check or search
        revives it.
        """
        with self._lock:
            self._ensure_open()
            return [
                {
                    "worker_id": handle.worker_id,
                    "alive": handle.alive(),
                    "restarts": max(handle.restarts, 0),
                }
                for handle in self._handles
            ]

    def engine_description(self) -> dict[str, Any]:
        """What executes a query, for EXPLAIN reports."""
        return {
            "backend": "cluster",
            "engine": (
                "columnar" if self._config is None else self._config.engine
            ),
            "workers": self._num_workers,
            "shards_per_worker": self._shards,
        }

    def cluster_metrics(self) -> ClusterMetrics:
        """Gather per-worker metrics snapshots into a rollup."""
        with self._lock:
            self._ensure_open()
            snapshots: dict[int, dict[str, Any]] = {}
            for handle in self._handles:
                if not handle.send(OP_METRICS, None):
                    continue  # a dead worker has no metrics to report
                try:
                    snapshots[handle.worker_id] = handle.receive(
                        self._request_timeout, what="metrics"
                    )
                except ClusterError:
                    # The request may still be in flight on a stalled
                    # worker; its late reply would desynchronize the
                    # request/reply pipe for every later op. Drop the
                    # connection — the next interaction respawns.
                    handle.discard()
            return ClusterMetrics(
                snapshots,
                queries=self._queries,
                mutations=self._mutations,
                restarts=self.total_restarts,
            )

    def stats_snapshot(self) -> dict[str, Any]:
        """Backend-side payload of the ``stats`` wire op."""
        snapshot = self.cluster_metrics().snapshot()
        version = self.version
        snapshot["version"] = (
            list(version) if isinstance(version, tuple) else version
        )
        snapshot["num_sets"] = len(self._collection)
        snapshot["resources"] = self.resources.snapshot()
        return snapshot

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop every worker; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for handle in self._handles:
                handle.stop()

    def shutdown(self) -> None:
        """Alias matching :meth:`EnginePool.shutdown`."""
        self.close()

    def __enter__(self) -> "ClusterPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
