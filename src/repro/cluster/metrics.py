"""Cluster-wide observability.

Each worker process keeps its own
:class:`~repro.service.metrics.ServiceMetrics` (per-partition latency,
throughput, engine counters); :class:`ClusterMetrics` pulls those
snapshots together with the coordinator's fleet counters into one
JSON-ready rollup — what the ``stats`` wire op of
``repro cluster serve`` returns.

One query fans out to *every* worker, so worker counters count partial
searches: the rollup's ``completed`` is the number of partials executed
fleet-wide (≈ queries × workers), while ``queries`` is the
coordinator-side scatter count. Latency quantiles cannot be averaged,
so the rollup reports the fleet *maximum* per quantile — the
conservative number an operator should alarm on, since a scatter-gather
query is as slow as its slowest partition.
"""

from __future__ import annotations

from typing import Any, Mapping

#: Worker-snapshot counters that add up meaningfully fleet-wide.
_SUMMED = (
    "requests",
    "completed",
    "errors",
    "cache_hits",
    "deduplicated",
    "batches",
    "stream_tuples",
    "candidates",
)

#: Quantile keys where the fleet maximum is the honest aggregate.
_MAXED = ("latency_p50", "latency_p95", "latency_p99")


class ClusterMetrics:
    """A point-in-time aggregate of per-worker metrics snapshots.

    Parameters
    ----------
    worker_snapshots:
        ``worker label -> ServiceMetrics.snapshot()`` dict (as returned
        by the worker ``metrics`` wire op; may carry extra worker
        keys). Labels are partition ids (``"0"``) or
        partition-dot-replica (``"0.1"``) strings; plain ints are
        accepted for the pre-replication shape.
    queries / mutations / restarts:
        Coordinator-side fleet counters: scatter-gathers served,
        mutations broadcast, and worker processes restarted after a
        crash.
    failovers / degraded / worker_timeouts / worker_crashes:
        Replication-era fleet counters: reads failed over to a sibling
        replica, queries answered with partial coverage, and worker
        failures by classified cause.
    """

    def __init__(
        self,
        worker_snapshots: Mapping[Any, Mapping[str, Any]],
        *,
        queries: int = 0,
        mutations: int = 0,
        restarts: int = 0,
        failovers: int = 0,
        degraded: int = 0,
        worker_timeouts: int = 0,
        worker_crashes: int = 0,
    ) -> None:
        self.per_worker = {
            worker_id: dict(snapshot)
            for worker_id, snapshot in sorted(
                worker_snapshots.items(), key=lambda item: str(item[0])
            )
        }
        self.queries = queries
        self.mutations = mutations
        self.restarts = restarts
        self.failovers = failovers
        self.degraded = degraded
        self.worker_timeouts = worker_timeouts
        self.worker_crashes = worker_crashes

    @property
    def num_workers(self) -> int:
        return len(self.per_worker)

    def rollup(self) -> dict[str, Any]:
        """Fleet-wide aggregate: summed counters, maxed quantiles,
        summed per-phase seconds/calls."""
        combined: dict[str, Any] = {
            "workers": self.num_workers,
            "queries": self.queries,
            "mutations": self.mutations,
            "restarts": self.restarts,
            "failovers": self.failovers,
            "degraded": self.degraded,
            "worker_timeouts": self.worker_timeouts,
            "worker_crashes": self.worker_crashes,
        }
        for key in _SUMMED:
            combined[key] = sum(
                snapshot.get(key, 0) for snapshot in self.per_worker.values()
            )
        for key in _MAXED:
            combined[key] = max(
                (
                    snapshot.get(key, 0.0)
                    for snapshot in self.per_worker.values()
                ),
                default=0.0,
            )
        phase_keys = {
            key
            for snapshot in self.per_worker.values()
            for key in snapshot
            if key.startswith(("seconds_", "calls_"))
        }
        for key in sorted(phase_keys):
            combined[key] = round(
                sum(
                    snapshot.get(key, 0)
                    for snapshot in self.per_worker.values()
                ),
                6,
            )
        return combined

    def snapshot(self) -> dict[str, Any]:
        """The JSON payload of the cluster ``stats`` wire op."""
        return {
            "backend": "cluster",
            "rollup": self.rollup(),
            "per_worker": {
                str(worker_id): snapshot
                for worker_id, snapshot in self.per_worker.items()
            },
        }
