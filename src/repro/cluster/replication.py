"""Replication policy for the cluster: retry/backoff and replica sets.

Two small, deterministic building blocks the coordinator composes:

:class:`RetryPolicy`
    Bounded exponential backoff with *seeded* jitter. Every delay the
    policy will ever produce is a pure function of its parameters and
    seed — two policies built alike sleep alike, which is what lets the
    chaos harness replay a fault schedule and get the same failover
    timeline twice. Delays are capped both by ``max_delay`` and by the
    caller's remaining per-op deadline, so a retry budget can never
    push a request past the deadline the service promised.

:class:`PartitionGroup`
    The R replicas serving one partition slot, with a primary cursor.
    All replicas run the identical deterministic bootstrap (base state
    + full mutation history), so *any* live replica answers a partition
    read bitwise-identically; the group's job is only to remember which
    replica to ask first and to rotate that choice when the primary
    dies (primary re-election is just "promote the replica that
    answered").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.errors import InvalidParameterError
from repro.utils.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.cluster.coordinator import _WorkerHandle


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``delays()`` yields ``max_attempts - 1`` sleep durations (the first
    attempt is free): attempt *i* backs off
    ``base_delay * multiplier**i``, capped at ``max_delay``, then
    jittered by a factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]`` using a generator seeded with
    ``seed`` — the full sequence is reproducible, never shared global
    randomness.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidParameterError("max_attempts must be >= 1")
        if self.base_delay < 0.0 or self.max_delay < 0.0:
            raise InvalidParameterError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise InvalidParameterError("multiplier must be >= 1")
        if not (0.0 <= self.jitter <= 1.0):
            raise InvalidParameterError("jitter must be in [0, 1]")

    def delays(self) -> Iterator[float]:
        """The deterministic backoff schedule (one delay per retry)."""
        rng = make_rng(self.seed)
        for attempt in range(self.max_attempts - 1):
            delay = min(
                self.max_delay, self.base_delay * self.multiplier**attempt
            )
            factor = 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
            yield max(0.0, delay * factor)

    def capped_delays(self, remaining: float) -> Iterator[float]:
        """``delays()`` clipped to a per-op deadline: stops yielding
        once the budget is spent, and never yields a sleep longer than
        what is left of ``remaining`` seconds."""
        budget = remaining
        for delay in self.delays():
            if budget <= 0.0:
                return
            clipped = min(delay, budget)
            budget -= clipped
            yield clipped


class PartitionGroup:
    """The replica set serving one partition of the id space.

    ``handles`` all carry the same ``partition_id`` (their
    :class:`~repro.cluster.messages.WorkerSpec` pins the identical
    deterministic slice); ``primary_index`` is the read cursor.
    """

    def __init__(
        self, partition_id: int, handles: "list[_WorkerHandle]"
    ) -> None:
        if not handles:
            raise InvalidParameterError(
                "a partition group needs at least one replica"
            )
        self.partition_id = partition_id
        self.handles = list(handles)
        self.primary_index = 0

    @property
    def primary(self) -> "_WorkerHandle":
        return self.handles[self.primary_index]

    def promote(self, handle: "_WorkerHandle") -> bool:
        """Make ``handle`` the primary (the replica that just answered
        a failed-over read wins the election). Returns True when the
        cursor actually moved."""
        index = self.handles.index(handle)
        moved = index != self.primary_index
        self.primary_index = index
        return moved

    def read_order(self) -> "list[_WorkerHandle]":
        """Replicas in failover order: the primary first, then the
        rest by replica slot — deterministic, so a replayed fault
        schedule fails over to the same replica every run."""
        return (
            self.handles[self.primary_index:]
            + self.handles[: self.primary_index]
        )

    def live_replicas(self) -> "list[_WorkerHandle]":
        """Replicas currently usable for a read, in failover order
        (excludes dead handles and those mid-restart)."""
        return [
            handle
            for handle in self.read_order()
            if handle.alive() and not handle.restarting
        ]
