"""The cluster worker process.

``worker_main`` is the spawn entry point: it bootstraps a full replica
of the collection (from the shared snapshot when one exists, otherwise
from the in-memory state shipped in the spec), replays the coordinator's
WAL-record history, builds an :class:`~repro.service.pool.EnginePool`
restricted to this worker's partition of the set-id space, and then
answers scatter-gather requests over its pipe until told to stop.

Every worker holds the *whole* collection but serves only its slice —
that is what keeps the design exact and simple:

* id assignment is replicated, not coordinated: replaying the same
  mutation records over the same base state yields the same ids and the
  same monotone version in every process (the version barrier checks
  this on every request);
* partition ownership is recomputed from the deterministic
  ``collection.partition`` split after every mutation, so a newly
  inserted set is owned by exactly one worker — the same worker a
  single-process ``shards=N`` pool would have assigned it to;
* the worker's engines are the same engines single-process serving
  uses; no cluster-only search code path exists that could drift from
  the exactness contract.
"""

from __future__ import annotations

import signal
import time
from dataclasses import dataclass
from typing import Any

from repro.cluster.messages import (
    OP_METRICS,
    OP_MUTATE,
    OP_PING,
    OP_SEARCH,
    OP_STOP,
    STATUS_ERROR,
    STATUS_OK,
    WorkerSpec,
    check_version,
    decode_stream,
    decode_trace,
    ping_reply,
)
from repro.datasets.collection import SetCollection
from repro.errors import ClusterError, ReproError
from repro.obs import Stopwatch, configure_from, get_tracer
from repro.service.metrics import ServiceMetrics
from repro.service.pool import EnginePool
from repro.store.mutable import MutableSetCollection


def substrate_from_descriptor(
    descriptor: dict[str, Any] | None, vocabulary
):
    """Rebuild ``(token_index, sim)`` from a substrate descriptor.

    A thin cluster-flavored wrapper over the store layer's canonical
    :func:`~repro.store.snapshot.build_substrate` — the artifacts are
    derived from the vocabulary instead of deserialized, which is the
    in-memory-shipping bootstrap path. One constructor for the CLI,
    the workers, and snapshot restore means replicas built in
    different processes can never stream differently.
    """
    if descriptor is None:
        raise ClusterError(
            "worker cannot build a token index without a substrate "
            "descriptor (pass substrate=... or bootstrap from a "
            "snapshot that embeds one)"
        )
    from repro.errors import SnapshotError
    from repro.store.snapshot import build_substrate

    try:
        return build_substrate(descriptor, vocabulary)
    except SnapshotError as exc:
        raise ClusterError(str(exc)) from exc


def apply_mutation(pool: EnginePool, record: dict[str, Any]) -> int:
    """Apply one WAL-shaped record through the pool's mutation path.

    Used for both live replication and bootstrap replay, so a restarted
    worker reconstructs state through *exactly* the code path the live
    fleet used — identical token-index extends, id assignment, and
    version bumps.
    """
    op = record.get("op")
    if op == "insert":
        return pool.insert(record["tokens"], name=record["name"])
    if op == "delete":
        return pool.delete(record["name"])
    if op == "replace":
        return pool.replace(record["name"], record["tokens"])
    raise ClusterError(f"unknown mutation op: {op!r}")


@dataclass
class WorkerState:
    """One bootstrapped worker replica."""

    spec: WorkerSpec
    pool: EnginePool
    metrics: ServiceMetrics

    @property
    def effective_version(self) -> int:
        """The version this replica would report if it were the
        coordinator: base + local mutations (replayed or live)."""
        local = getattr(self.pool.collection, "version", 0)
        return self.spec.base_version + local


def bootstrap(spec: WorkerSpec) -> WorkerState:
    """Build a serving replica from a spec (spawn- and restart-path)."""
    if spec.faults is not None and spec.faults.get("bootstrap_fail"):
        # Armed by the chaos harness: die exactly the way a corrupt
        # snapshot or missing substrate would, through the same
        # report-then-exit path in worker_main.
        raise ClusterError(
            f"injected bootstrap failure (worker {spec.worker_id}"
            f".{spec.replica})"
        )
    if spec.snapshot_path is not None:
        from repro.store.snapshot import load_snapshot

        # The coordinator already stream-verified the file once; specs
        # ship verify_snapshot=False so R×P replicas (and every restart)
        # just map the shared page-cache copy instead of re-hashing.
        loaded = load_snapshot(
            spec.snapshot_path, verify=spec.verify_snapshot
        )
        overlay = loaded.mutable()
        token_index, sim = loaded.token_index, loaded.sim
        if token_index is None:
            token_index, sim = substrate_from_descriptor(
                spec.substrate, overlay.vocabulary
            )
    else:
        if spec.sets is None or spec.names is None:
            raise ClusterError(
                "worker spec carries neither a snapshot path nor "
                "in-memory collection state"
            )
        base = SetCollection(
            [frozenset(members) for members in spec.sets],
            names=list(spec.names),
        )
        overlay = MutableSetCollection(base)
        token_index, sim = substrate_from_descriptor(
            spec.substrate, overlay.vocabulary
        )
    pool = EnginePool(
        overlay,
        token_index,
        sim,
        alpha=spec.alpha,
        shards=spec.shards,
        shard_seed=spec.shard_seed,
        config=spec.config,
        partition=(spec.worker_id, spec.num_workers),
    )
    for record in spec.history:
        apply_mutation(pool, record)
    return WorkerState(spec=spec, pool=pool, metrics=ServiceMetrics())


def _handle_search(state: WorkerState, payload: dict[str, Any]) -> Any:
    fault_sleep = payload.get("fault_sleep")
    if fault_sleep:
        # Injected slowness (chaos harness): stall *before* touching
        # state, so a coordinator that times out and fails over never
        # races a half-finished search.
        time.sleep(float(fault_sleep))
    check_version(
        state.effective_version,
        payload["version"],
        where=f"worker {state.spec.worker_id} search",
    )
    state.metrics.record_accepted()
    stream = decode_stream(payload["stream"])
    # The coordinator's span context crosses the wire as primitives;
    # parenting the worker span under it stitches this process's spans
    # into the same request tree (and the same sink file).
    remote = decode_trace(payload.get("trace"))
    tracer = get_tracer()
    watch = Stopwatch()
    if tracer.enabled and remote is not None:
        with tracer.span(
            "worker.search",
            parent=remote,
            tags={"worker": state.spec.worker_id},
        ):
            result = state.pool.search(
                frozenset(payload["query"]),
                payload["k"],
                alpha=payload["alpha"],
                stream=stream,
                time_budget=payload.get("time_budget"),
            )
    else:
        result = state.pool.search(
            frozenset(payload["query"]),
            payload["k"],
            alpha=payload["alpha"],
            stream=stream,
            time_budget=payload.get("time_budget"),
        )
    state.metrics.record_completed(watch.stop(), result.stats)
    return result


def _handle_mutate(
    state: WorkerState, payload: dict[str, Any]
) -> dict[str, Any]:
    set_id = apply_mutation(state.pool, payload["record"])
    check_version(
        state.effective_version,
        payload["version"],
        where=f"worker {state.spec.worker_id} mutate",
    )
    return {"set_id": set_id, "version": state.effective_version}


def _dispatch(state: WorkerState, op: str, payload: Any) -> Any:
    if op == OP_SEARCH:
        return _handle_search(state, payload)
    if op == OP_MUTATE:
        return _handle_mutate(state, payload)
    if op == OP_METRICS:
        snapshot = dict(state.metrics.snapshot())
        snapshot.update(
            worker_id=state.spec.worker_id,
            shards=state.pool.num_shards,
            version=state.effective_version,
            bootstrap_history_length=len(state.spec.history),
            histograms=state.metrics.histogram_snapshot(),
        )
        return snapshot
    if op == OP_PING:
        return ping_reply(
            state.effective_version, state.metrics.uptime_seconds
        )
    raise ClusterError(f"unknown worker op: {op!r}")


def worker_main(spec: WorkerSpec, conn) -> None:
    """Process entry point: bootstrap, then serve the pipe until EOF,
    an explicit stop, or the parent disappearing."""
    # The coordinator owns shutdown: a Ctrl-C or a group-delivered
    # SIGTERM (systemd, `kill -- -pgid`) hits the worker processes too,
    # but workers must keep draining until the coordinator's serve loop
    # has emitted pending responses and sends stop (or closes the
    # pipe). Forced teardown still works: the coordinator escalates to
    # SIGKILL for a worker that ignores its stop.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    # Adopt the coordinator's tracing configuration (same sink file —
    # O_APPEND keeps multi-process lines whole; the deterministic head
    # sample keeps keep/drop decisions consistent across processes).
    configure_from(spec.trace)
    try:
        state = bootstrap(spec)
    except Exception as exc:  # noqa: BLE001 — report, then die visibly
        try:
            conn.send(
                (STATUS_ERROR, f"worker bootstrap failed: {exc}")
            )
        except OSError:
            pass
        conn.close()
        return
    conn.send(
        (
            STATUS_OK,
            {
                "version": state.effective_version,
                "shards": state.pool.num_shards,
            },
        )
    )
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # coordinator is gone; nothing left to serve
        op, payload = message
        if op == OP_STOP:
            try:
                conn.send((STATUS_OK, None))
            except OSError:
                pass
            break
        try:
            reply = _dispatch(state, op, payload)
        except ReproError as exc:
            response = (STATUS_ERROR, str(exc))
        except Exception as exc:  # noqa: BLE001 — never a silent hang
            response = (STATUS_ERROR, f"{type(exc).__name__}: {exc}")
        else:
            response = (STATUS_OK, reply)
        try:
            conn.send(response)
        except OSError:
            break
    conn.close()
