"""Multi-process scatter-gather serving.

Puts independent worker processes on every core — the GIL caps what the
threaded :class:`~repro.service.pool.EnginePool` can extract from the
pure-Python KOIOS hot path, so scale-out beyond one core means
processes::

    QueryScheduler                    (unchanged: cache, dedup, batching)
        └── ClusterPool               (coordinator: drain once, scatter,
            │                          merge exactly, version barrier)
            ├── worker 0  ── EnginePool over partition 0
            ├── worker 1  ── EnginePool over partition 1
            └── ...        (bootstrap: snapshot or shipped state,
                            + WAL-record history replay)

* :class:`ClusterPool` — the coordinator-side
  :class:`~repro.service.backend.SearchBackend`
* :mod:`repro.cluster.worker` — the spawn-safe worker process
* :class:`ClusterMetrics` — fleet rollup of per-worker metrics
* :mod:`repro.cluster.bench` — the scaling benchmark harness behind
  ``repro cluster bench``

See ``docs/cluster.md`` for the architecture and the exactness and
failure-semantics guarantees.
"""

from repro.cluster.coordinator import ClusterPool
from repro.cluster.messages import WorkerSpec, mutation_record
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.worker import (
    apply_mutation,
    bootstrap,
    substrate_from_descriptor,
    worker_main,
)

__all__ = [
    "ClusterMetrics",
    "ClusterPool",
    "WorkerSpec",
    "apply_mutation",
    "bootstrap",
    "mutation_record",
    "substrate_from_descriptor",
    "worker_main",
]
