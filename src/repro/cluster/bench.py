"""The cluster scaling measurement behind ``repro cluster bench`` and
``benchmarks/bench_cluster_scaling.py``.

Measures query throughput of the multi-process :class:`ClusterPool`
against the threaded single-process :class:`EnginePool` baseline on the
same corpus, the same Zipf-skewed workload, and the *same shard layout*
(``shards=W`` vs ``workers=W`` under one seed), so the two systems do
byte-for-byte identical search work — the only variable is threads
sharing one GIL vs processes owning one core each. Every cluster answer
is verified bitwise against the baseline's while timing, so a speedup
can never be bought with a wrong result.
"""

from __future__ import annotations

import os
from typing import Any, Sequence

from repro.cluster.coordinator import ClusterPool
from repro.cluster.worker import substrate_from_descriptor
from repro.datasets.collection import SetCollection
from repro.errors import ClusterError
from repro.obs import timed
from repro.service.pool import EnginePool
from repro.utils.rng import make_rng


def zipf_queries(
    collection: SetCollection,
    *,
    distinct: int,
    requests: int,
    seed: int = 13,
) -> list[frozenset[str]]:
    """A Zipf-skewed request stream over the collection's own sets
    (popular queries recur, the serving-layer regime of the ROADMAP)."""
    rng = make_rng(seed)
    ids = list(collection.ids())
    distinct = min(distinct, len(ids))
    pool_ids = rng.choice(ids, size=distinct, replace=False)
    ranks = 1.0 / (1.0 + rng.permutation(distinct))
    probabilities = ranks / ranks.sum()
    picks = rng.choice(pool_ids, size=requests, p=probabilities)
    return [frozenset(collection[int(set_id)]) for set_id in picks]


def _timed_search(pool, queries: Sequence[frozenset[str]], k: int):
    with timed() as watch:
        results = [pool.search(query, k) for query in queries]
    return results, watch.seconds


def run_scaling_bench(
    collection: SetCollection,
    substrate: dict[str, Any],
    queries: Sequence[frozenset[str]],
    *,
    k: int = 10,
    alpha: float = 0.8,
    worker_counts: Sequence[int] = (1, 2, 4),
    shard_seed: int = 0,
    start_method: str = "spawn",
    config=None,
) -> dict[str, Any]:
    """Measure cluster vs threaded-pool throughput at each fleet size.

    Returns a JSON-ready dict: one row per worker count with baseline
    QPS (threaded ``EnginePool(shards=W, parallel_shards=True)``),
    cluster QPS, their ratio, and the bitwise-equality verdict. Raises
    :class:`~repro.errors.ClusterError` on any result mismatch — a
    scaling number for a system that answers differently is worthless.
    """
    token_index, sim = substrate_from_descriptor(
        substrate, collection.vocabulary
    )
    rows: list[dict[str, Any]] = []
    for workers in worker_counts:
        baseline = EnginePool(
            collection,
            token_index,
            sim,
            alpha=alpha,
            shards=workers,
            shard_seed=shard_seed,
            parallel_shards=workers > 1,
            config=config,
        )
        baseline.search(queries[0], k)  # warm the engines
        baseline_results, baseline_elapsed = _timed_search(
            baseline, queries, k
        )
        baseline.shutdown()

        with ClusterPool(
            collection,
            token_index,
            sim,
            alpha=alpha,
            workers=workers,
            shard_seed=shard_seed,
            substrate=substrate,
            start_method=start_method,
            config=config,
        ) as cluster:
            cluster.search(queries[0], k)  # absorb bootstrap/warmup
            cluster_results, cluster_elapsed = _timed_search(
                cluster, queries, k
            )

        for i, (got, expected) in enumerate(
            zip(cluster_results, baseline_results)
        ):
            if (
                got.ids() != expected.ids()
                or got.scores() != expected.scores()
                or got.theta_k != expected.theta_k
            ):
                raise ClusterError(
                    f"cluster result diverged from baseline at "
                    f"workers={workers}, query {i}"
                )

        baseline_qps = len(queries) / baseline_elapsed
        cluster_qps = len(queries) / cluster_elapsed
        rows.append(
            {
                "workers": workers,
                "baseline_seconds": round(baseline_elapsed, 3),
                "baseline_qps": round(baseline_qps, 2),
                "cluster_seconds": round(cluster_elapsed, 3),
                "cluster_qps": round(cluster_qps, 2),
                "speedup": round(cluster_qps / baseline_qps, 3),
                "exact": True,
            }
        )
    return {
        "benchmark": "cluster_scaling",
        "num_sets": len(collection),
        "requests": len(queries),
        "k": k,
        "alpha": alpha,
        "cpu_count": os.cpu_count() or 1,
        "rows": rows,
    }


def format_report(results: dict[str, Any]) -> list[str]:
    """Human-readable table lines for a :func:`run_scaling_bench` dict."""
    lines = [
        (
            f"cluster scaling — {results['num_sets']} sets, "
            f"{results['requests']} Zipf requests, k={results['k']}, "
            f"alpha={results['alpha']}, {results['cpu_count']} cores"
        ),
        (
            f"{'workers':>8}{'threaded qps':>14}{'cluster qps':>13}"
            f"{'speedup':>9}{'exact':>7}"
        ),
    ]
    for row in results["rows"]:
        lines.append(
            f"{row['workers']:>8}{row['baseline_qps']:>14.2f}"
            f"{row['cluster_qps']:>13.2f}{row['speedup']:>9.2f}"
            f"{'yes' if row['exact'] else 'NO':>7}"
        )
    return lines
