"""Deterministic fault injection for the cluster.

A :class:`FaultPlan` is a *seeded schedule* of faults — worker kills,
pipe drops, slow responses, bootstrap failures — pinned to op indices
of a workload. A :class:`FaultInjector` replays that schedule against a
live :class:`~repro.cluster.coordinator.ClusterPool`: the coordinator
calls :meth:`FaultInjector.begin_op` at the top of every search and
mutation, and the injector fires whatever the plan scheduled for that
index. Because the plan derives from :func:`~repro.utils.rng.make_rng`
and every firing is synchronous (a kill SIGKILLs *and joins* the
victim before the op proceeds), two runs of the same seed produce the
same fault timeline — which is what lets the chaos harness assert
bitwise-identical results rather than merely "no crash".

Fault kinds
-----------
``kill``
    SIGKILL one replica process and reap it; the next send to its pipe
    fails deterministically.
``drop``
    Close the coordinator-side pipe of one replica (the process
    survives, orphaned) — the torn-pipe/EOF failure mode.
``slow``
    Arm one replica so its next search reply is delayed by
    ``duration`` seconds (the payload carries a ``fault_sleep`` the
    worker honors before answering) — the timeout failure mode.
``bootstrap``
    Arm ``count`` consecutive bootstrap failures for one replica slot:
    each (re)spawn of that slot dies during bootstrap with an injected
    error, which is how a partition is held fully down.

:func:`run_chaos` is the harness behind ``repro cluster chaos``: it
replays a randomized cluster-vs-pool workload (the same shape as the
110-op equivalence suite) under a plan and reports kills survived,
failovers, degraded reads, result mismatches, and hung requests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import InvalidParameterError
from repro.utils.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.cluster.coordinator import ClusterPool
    from repro.datasets.collection import SetCollection

#: Fault kinds a plan may schedule.
KILL = "kill"
DROP = "drop"
SLOW = "slow"
BOOTSTRAP = "bootstrap"

_KINDS = (KILL, DROP, SLOW, BOOTSTRAP)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: fire ``kind`` against replica
    ``(partition, replica)`` right before op number ``at_op``."""

    at_op: int
    kind: str
    partition: int
    replica: int
    #: Seconds a ``slow`` reply is delayed (ignored otherwise).
    duration: float = 0.0
    #: Consecutive spawn failures a ``bootstrap`` fault arms.
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise InvalidParameterError(
                f"unknown fault kind {self.kind!r} (one of {_KINDS})"
            )
        if self.at_op < 0:
            raise InvalidParameterError("at_op must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault schedule (events sorted by ``at_op``)."""

    events: tuple[FaultEvent, ...]
    seed: int = 0

    @classmethod
    def from_seed(
        cls,
        seed: int,
        *,
        ops: int,
        partitions: int,
        replicas: int = 1,
        kills: int = 3,
        drops: int = 0,
        slows: int = 0,
        bootstrap_failures: int = 0,
        slow_duration: float = 1.0,
        bootstrap_count: int = 1,
    ) -> "FaultPlan":
        """Draw a schedule from a seeded generator.

        Events land on distinct op indices in the middle 80% of the
        workload (faults at op 0 would race bootstrap; faults at the
        very end would go unobserved), targeting a replica drawn
        uniformly per event. The same arguments always produce the
        same plan.
        """
        if ops < 2:
            raise InvalidParameterError("ops must be >= 2")
        rng = make_rng(seed)
        total = kills + drops + slows + bootstrap_failures
        lo, hi = max(1, ops // 10), max(2, ops - ops // 10)
        slots = list(range(lo, hi))
        if total > len(slots):
            raise InvalidParameterError(
                f"{total} faults do not fit in {len(slots)} op slots"
            )
        chosen = sorted(
            int(i) for i in rng.choice(slots, size=total, replace=False)
        )
        kinds = (
            [KILL] * kills
            + [DROP] * drops
            + [SLOW] * slows
            + [BOOTSTRAP] * bootstrap_failures
        )
        order = rng.permutation(total)
        events = []
        for at_op, pick in zip(chosen, order):
            kind = kinds[int(pick)]
            events.append(
                FaultEvent(
                    at_op=at_op,
                    kind=kind,
                    partition=int(rng.integers(partitions)),
                    replica=int(rng.integers(replicas)),
                    duration=slow_duration if kind == SLOW else 0.0,
                    count=bootstrap_count if kind == BOOTSTRAP else 1,
                )
            )
        return cls(events=tuple(events), seed=seed)

    def counts(self) -> dict[str, int]:
        out = {kind: 0 for kind in _KINDS}
        for event in self.events:
            out[event.kind] += 1
        return out


class FaultInjector:
    """Replays a :class:`FaultPlan` against a live cluster.

    Pass one to ``ClusterPool(fault_injector=...)``; the coordinator
    drives it from three hook points:

    * :meth:`begin_op` — top of every search/mutation (under the
      coordinator lock): fires due kills/drops and arms due
      slow/bootstrap faults;
    * :meth:`payload_faults` — while building one replica's scatter
      payload: drains an armed slow fault into ``fault_sleep``;
    * :meth:`spawn_faults` — while building one replica's
      :class:`~repro.cluster.messages.WorkerSpec`: drains one armed
      bootstrap failure into the spec's ``faults``.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._pending = sorted(plan.events, key=lambda e: e.at_op)
        self._op = 0
        #: (partition, replica) -> seconds to delay the next reply.
        self._slow: dict[tuple[int, int], float] = {}
        #: (partition, replica) -> bootstrap failures still to inject.
        self._bootstrap: dict[tuple[int, int], int] = {}
        self.fired: list[FaultEvent] = []

    # -- coordinator hook points -------------------------------------------

    def begin_op(self, pool: "ClusterPool") -> None:
        """Fire every event scheduled at or before the current op."""
        op = self._op
        self._op += 1
        while self._pending and self._pending[0].at_op <= op:
            event = self._pending.pop(0)
            self._fire(pool, event)
            self.fired.append(event)

    def payload_faults(
        self, partition: int, replica: int
    ) -> dict[str, Any] | None:
        delay = self._slow.pop((partition, replica), None)
        if delay is None:
            return None
        return {"fault_sleep": delay}

    def spawn_faults(
        self, partition: int, replica: int
    ) -> dict[str, Any] | None:
        left = self._bootstrap.get((partition, replica), 0)
        if left <= 0:
            return None
        self._bootstrap[(partition, replica)] = left - 1
        return {"bootstrap_fail": True}

    # -- firing -------------------------------------------------------------

    def _fire(self, pool: "ClusterPool", event: FaultEvent) -> None:
        key = (event.partition, event.replica)
        if event.kind == SLOW:
            self._slow[key] = event.duration
            return
        if event.kind == BOOTSTRAP:
            self._bootstrap[key] = (
                self._bootstrap.get(key, 0) + event.count
            )
            return
        handle = pool.replica_handle(event.partition, event.replica)
        if handle is None or handle.restarting:
            return  # slot mid-restart: the fault dissolves harmlessly
        if event.kind == KILL:
            process = handle.process
            if process is not None and process.is_alive():
                process.kill()
                process.join()  # reap before the op: the next send
                # fails deterministically instead of racing the death
        elif event.kind == DROP:
            conn = handle.conn
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass

    # -- reporting ----------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        fired = {kind: 0 for kind in _KINDS}
        for event in self.fired:
            fired[event.kind] += 1
        return {
            "seed": self.plan.seed,
            "scheduled": self.plan.counts(),
            "fired": fired,
            "unfired": len(self._pending),
        }


# -- the chaos harness ------------------------------------------------------


def chaos_ops(
    rng, base: "SetCollection", count: int, *, alphas=(0.7, 0.9)
) -> list[tuple]:
    """A feasible randomized op mix (the 110-op equivalence shape):
    ~half queries alternating ``alphas``, ~half mutations touching only
    live names."""
    live = [base.name_of(i) for i in base.ids()]
    vocab_pool = sorted(base.vocabulary) + [
        f"fresh_token_{i}" for i in range(80)
    ]
    queries = [frozenset(base[i]) for i in base.ids()]
    ops: list[tuple] = []
    fresh = 0
    alpha_flip = 0
    for _ in range(count):
        roll = rng.random()
        if roll < 0.5:
            alpha = alphas[alpha_flip % len(alphas)]
            alpha_flip += 1
            if rng.random() < 0.3:
                size = int(rng.integers(2, 7))
                query = frozenset(
                    str(t)
                    for t in rng.choice(vocab_pool, size=size, replace=False)
                )
            else:
                query = queries[int(rng.integers(len(queries)))]
            ops.append(("query", query, alpha))
        elif roll < 0.75 or len(live) <= 5:
            name = f"ins_{fresh}"
            fresh += 1
            size = int(rng.integers(1, 8))
            tokens = tuple(
                str(t)
                for t in rng.choice(vocab_pool, size=size, replace=False)
            )
            ops.append(("insert", name, tokens))
            live.append(name)
        elif roll < 0.9:
            name = str(live.pop(int(rng.integers(len(live)))))
            ops.append(("delete", name, None))
        else:
            name = str(live[int(rng.integers(len(live)))])
            size = int(rng.integers(1, 8))
            tokens = tuple(
                str(t)
                for t in rng.choice(vocab_pool, size=size, replace=False)
            )
            ops.append(("replace", name, tokens))
    return ops


def run_chaos(
    collection: "SetCollection",
    substrate: dict[str, Any],
    *,
    plan: FaultPlan,
    workers: int = 2,
    replicas: int = 2,
    ops: int = 110,
    k: int = 10,
    alphas: Sequence[float] = (0.7, 0.9),
    seed: int = 31,
    request_timeout: float = 30.0,
    hang_budget: float | None = None,
    start_method: str = "spawn",
) -> dict[str, Any]:
    """Replay the randomized cluster-vs-pool workload under a fault
    plan; every non-degraded answer must match the single-process
    baseline bitwise.

    Returns a JSON-ready report. ``mismatches`` counts non-degraded
    queries whose ids/scores/theta_k diverged from the baseline (the
    exactness gate); ``hung_requests`` counts ops slower than
    ``hang_budget`` seconds (default: ``2 * request_timeout + 5`` — a
    failover may legitimately burn one receive timeout, but nothing
    may block past its deadline's order of magnitude).
    """
    from repro.cluster.coordinator import ClusterPool
    from repro.cluster.worker import substrate_from_descriptor
    from repro.service.pool import EnginePool
    from repro.store.mutable import MutableSetCollection

    if hang_budget is None:
        hang_budget = 2.0 * request_timeout + 5.0
    rng = make_rng(seed)
    workload = chaos_ops(rng, collection, ops, alphas=tuple(alphas))
    injector = FaultInjector(plan)

    pool_index, pool_sim = substrate_from_descriptor(
        substrate, collection.vocabulary
    )
    cluster_index, cluster_sim = substrate_from_descriptor(
        substrate, collection.vocabulary
    )
    baseline = EnginePool(
        MutableSetCollection(collection),
        pool_index,
        pool_sim,
        alpha=0.8,
        shards=workers,
    )
    queries = mutations = degraded = mismatches = hung = 0
    failures: list[str] = []
    max_seconds = 0.0
    try:
        with ClusterPool(
            MutableSetCollection(collection),
            cluster_index,
            cluster_sim,
            alpha=0.8,
            workers=workers,
            replicas=replicas,
            substrate=substrate,
            start_method=start_method,
            request_timeout=request_timeout,
            fault_injector=injector,
        ) as cluster:
            for position, op in enumerate(workload):
                watch_started = time.monotonic()
                kind = op[0]
                try:
                    if kind == "query":
                        _, query, alpha = op
                        queries += 1
                        got = cluster.search(query, k, alpha=alpha)
                        expected = baseline.search(query, k, alpha=alpha)
                        if got.degraded:
                            degraded += 1
                        elif (
                            got.ids() != expected.ids()
                            or got.scores() != expected.scores()
                            or got.theta_k != expected.theta_k
                        ):
                            mismatches += 1
                            failures.append(
                                f"op {position}: non-degraded result "
                                f"diverged from baseline"
                            )
                    elif kind == "insert":
                        _, name, tokens = op
                        mutations += 1
                        cluster.insert(tokens, name=name)
                        baseline.insert(tokens, name=name)
                    elif kind == "delete":
                        _, name, _ = op
                        mutations += 1
                        cluster.delete(name)
                        baseline.delete(name)
                    else:
                        _, name, tokens = op
                        mutations += 1
                        cluster.replace(name, tokens)
                        baseline.replace(name, tokens)
                except Exception as exc:  # noqa: BLE001 — report, not die
                    failures.append(
                        f"op {position} ({kind}): "
                        f"{type(exc).__name__}: {exc}"
                    )
                elapsed = time.monotonic() - watch_started
                max_seconds = max(max_seconds, elapsed)
                if elapsed > hang_budget:
                    hung += 1
            fleet = cluster.cluster_metrics().rollup()
    finally:
        baseline.shutdown()
    return {
        "benchmark": "cluster_chaos",
        "num_sets": len(collection),
        "ops": len(workload),
        "queries": queries,
        "mutations": mutations,
        "workers": workers,
        "replicas": replicas,
        "k": k,
        "seed": seed,
        "request_timeout": request_timeout,
        "hang_budget": round(hang_budget, 3),
        "faults": injector.summary(),
        "degraded_queries": degraded,
        "mismatches": mismatches,
        "hung_requests": hung,
        "request_failures": len(failures),
        "failure_details": failures[:10],
        "max_op_seconds": round(max_seconds, 3),
        "restarts": fleet.get("restarts", 0),
        "failovers": fleet.get("failovers", 0),
        "worker_timeouts": fleet.get("worker_timeouts", 0),
        "worker_crashes": fleet.get("worker_crashes", 0),
        "ok": not failures and mismatches == 0 and hung == 0,
    }


def format_chaos_report(report: dict[str, Any]) -> list[str]:
    """Human-readable lines for a :func:`run_chaos` report."""
    fired = report["faults"]["fired"]
    lines = [
        (
            f"cluster chaos — {report['ops']} ops over "
            f"{report['workers']} partitions x {report['replicas']} "
            f"replicas, seed {report['seed']}"
        ),
        (
            f"faults fired: {fired.get(KILL, 0)} kills, "
            f"{fired.get(DROP, 0)} drops, {fired.get(SLOW, 0)} slow, "
            f"{fired.get(BOOTSTRAP, 0)} bootstrap"
        ),
        (
            f"recovered: {report['restarts']} restarts, "
            f"{report['failovers']} failovers, "
            f"{report['worker_timeouts']} timeouts, "
            f"{report['worker_crashes']} crashes detected"
        ),
        (
            f"results: {report['queries']} queries "
            f"({report['degraded_queries']} degraded, "
            f"{report['mismatches']} mismatches), "
            f"{report['hung_requests']} hung, "
            f"{report['request_failures']} failed, "
            f"max op {report['max_op_seconds']}s"
        ),
        f"verdict: {'OK' if report['ok'] else 'FAILED'}",
    ]
    return lines
