"""Shared experiment runner.

Everything in the paper's evaluation is a loop of the same shape: build a
dataset, sample a query benchmark, run one or more searchers over it, and
aggregate per-query statistics into table rows or figure series. This
module provides that loop once, so each bench file only declares *what*
to run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.config import FilterConfig
from repro.core.koios import KoiosSearchEngine, SearchResult
from repro.core.stats import POSTPROCESSING, REFINEMENT, SearchStats
from repro.datasets.benchmarks import QueryBenchmark
from repro.datasets.synthetic import SyntheticDataset
from repro.embedding.provider import VectorStore
from repro.index.vector_index import ExactCosineIndex
from repro.obs import timed
from repro.sim.cosine import CosineSimilarity

#: A searcher under test: called with (query_tokens, k) -> SearchResult.
SearchFn = Callable[[frozenset, int], SearchResult]


@dataclass
class SearchStack:
    """A dataset wired to its vector store, token index, and similarity."""

    dataset: SyntheticDataset
    store: VectorStore
    index: ExactCosineIndex
    sim: CosineSimilarity

    @property
    def collection(self):
        return self.dataset.collection

    def engine(
        self,
        *,
        alpha: float = 0.8,
        num_partitions: int = 1,
        config: FilterConfig | None = None,
        em_workers: int = 0,
    ) -> KoiosSearchEngine:
        return KoiosSearchEngine(
            self.dataset.collection,
            self.index,
            self.sim,
            alpha=alpha,
            num_partitions=num_partitions,
            config=config,
            em_workers=em_workers,
        )


def build_stack(dataset: SyntheticDataset, *, batch_size: int = 100) -> SearchStack:
    """Wire a synthetic dataset into the cosine search substrate.

    Mirrors §VIII-A3: one vector index per dataset over the tokens of the
    collection that have embeddings, probed in batches of 100.
    """
    store = VectorStore(dataset.provider, dataset.collection.vocabulary)
    index = ExactCosineIndex(store, dataset.provider, batch_size=batch_size)
    sim = CosineSimilarity(dataset.provider)
    return SearchStack(dataset=dataset, store=store, index=index, sim=sim)


@dataclass
class QueryRecord:
    """Per-query measurements of one searcher."""

    dataset: str
    method: str
    group: str
    query_id: int
    cardinality: int
    seconds: float
    refinement_seconds: float
    postproc_seconds: float
    memory_mb: float
    timed_out: bool
    stats: SearchStats
    result_ids: list[int] = field(default_factory=list)
    result_scores: list[float] = field(default_factory=list)
    partition_seconds: list[float] = field(default_factory=list)

    @property
    def parallel_seconds(self) -> float:
        """Response time if partitions ran fully in parallel: the serial
        time with the per-partition work replaced by the slowest
        partition — how the paper's multi-core testbed experiences a
        partitioned query, free of GIL artifacts."""
        if not self.partition_seconds:
            return self.seconds
        serial_partition_work = sum(self.partition_seconds)
        return self.seconds - serial_partition_work + max(
            self.partition_seconds
        )


def run_benchmark(
    search_fn: SearchFn,
    benchmark: QueryBenchmark,
    k: int,
    *,
    method: str,
    dataset_name: str,
) -> list[QueryRecord]:
    """Run ``search_fn`` over every benchmark query and record stats.

    Wall-clock ``seconds`` is measured around the call; phase and memory
    figures come from the result's :class:`SearchStats` (zero for
    searchers that do not report them).
    """
    records: list[QueryRecord] = []
    for group_label, query_id, tokens in benchmark:
        with timed() as watch:
            result = search_fn(tokens, k)
        elapsed = watch.seconds
        stats = result.stats
        records.append(
            QueryRecord(
                dataset=dataset_name,
                method=method,
                group=group_label,
                query_id=query_id,
                cardinality=len(tokens),
                seconds=elapsed,
                refinement_seconds=stats.timer.seconds(REFINEMENT),
                postproc_seconds=stats.timer.seconds(POSTPROCESSING),
                memory_mb=stats.memory.total_mb,
                timed_out=result.timed_out,
                stats=stats,
                result_ids=result.ids(),
                result_scores=result.scores(),
                partition_seconds=[
                    p.timer.total for p in result.partition_stats
                ],
            )
        )
    return records


def koios_search_fn(
    engine: KoiosSearchEngine, *, time_budget: float | None = None
) -> SearchFn:
    """Adapt a Koios-style engine to the benchmark runner."""

    def run(tokens: frozenset, k: int) -> SearchResult:
        return engine.search(tokens, k, time_budget=time_budget)

    return run


# -- aggregation ----------------------------------------------------------


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean, 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def successful(records: Sequence[QueryRecord]) -> list[QueryRecord]:
    """Queries that finished within budget (the paper excludes timed-out
    queries from its averages)."""
    return [r for r in records if not r.timed_out]


def groups_in_order(records: Sequence[QueryRecord]) -> list[str]:
    """Distinct group labels in first-appearance order."""
    seen: dict[str, None] = {}
    for record in records:
        seen.setdefault(record.group, None)
    return list(seen)


def by_group(
    records: Sequence[QueryRecord],
) -> dict[str, list[QueryRecord]]:
    """Records bucketed by group label, first-appearance order kept."""
    out: dict[str, list[QueryRecord]] = {}
    for record in records:
        out.setdefault(record.group, []).append(record)
    return out


@dataclass(frozen=True)
class GroupSummary:
    """Aggregate of one (method, group) cell."""

    group: str
    queries: int
    timeouts: int
    mean_seconds: float
    mean_refinement_seconds: float
    mean_postproc_seconds: float
    mean_memory_mb: float
    mean_candidates: float
    mean_refinement_pruned: float
    mean_no_em: float
    mean_em_early_terminated: float
    mean_em_full: float

    @property
    def refinement_share(self) -> float:
        total = self.mean_refinement_seconds + self.mean_postproc_seconds
        if total == 0.0:
            return 0.0
        return self.mean_refinement_seconds / total

    @property
    def postprocessed(self) -> float:
        return self.mean_candidates - self.mean_refinement_pruned


def summarize_group(group: str, records: Sequence[QueryRecord]) -> GroupSummary:
    """Aggregate one group's records (timed-out queries excluded from
    means, counted in ``timeouts`` — the paper's convention)."""
    done = successful(records)
    return GroupSummary(
        group=group,
        queries=len(records),
        timeouts=sum(1 for r in records if r.timed_out),
        mean_seconds=mean(r.seconds for r in done),
        mean_refinement_seconds=mean(r.refinement_seconds for r in done),
        mean_postproc_seconds=mean(r.postproc_seconds for r in done),
        mean_memory_mb=mean(r.memory_mb for r in done),
        mean_candidates=mean(r.stats.candidates for r in done),
        mean_refinement_pruned=mean(r.stats.refinement_pruned for r in done),
        mean_no_em=mean(r.stats.no_em for r in done),
        mean_em_early_terminated=mean(
            r.stats.em_early_terminated for r in done
        ),
        mean_em_full=mean(
            r.stats.em_full + r.stats.resolution_em for r in done
        ),
    )


def summarize(records: Sequence[QueryRecord]) -> list[GroupSummary]:
    """One :class:`GroupSummary` per group, in first-appearance order."""
    grouped = by_group(records)
    return [
        summarize_group(group, grouped[group])
        for group in groups_in_order(records)
    ]


def overall_summary(records: Sequence[QueryRecord]) -> GroupSummary:
    """A single summary over all records regardless of group."""
    return summarize_group("all", list(records))
