"""Row builders for the paper's Tables I-V.

Each function maps harness records onto the exact columns of one paper
table, so the bench files can print a side-by-side of paper-reported and
measured values. Table I additionally reports the paper's values next to
the generated corpus shapes.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.datasets.synthetic import SyntheticDataset
from repro.experiments.harness import (
    QueryRecord,
    overall_summary,
    summarize,
)

TABLE1_HEADERS = [
    "Dataset",
    "#Sets",
    "MaxSize",
    "AvgSize",
    "#UniqElems",
    "paper #Sets",
    "paper Max",
    "paper Avg",
    "paper #Uniq",
]


def table1_rows(datasets: Sequence[SyntheticDataset]) -> list[list[Any]]:
    """Table I: characteristics of datasets (generated vs paper)."""
    rows: list[list[Any]] = []
    for dataset in datasets:
        stats = dataset.collection.stats()
        paper = dataset.profile.paper_row
        rows.append(
            [
                dataset.name,
                stats.num_sets,
                stats.max_size,
                round(stats.avg_size, 1),
                stats.num_unique_elements,
                paper.num_sets if paper else "-",
                paper.max_size if paper else "-",
                paper.avg_size if paper else "-",
                paper.num_unique_elements if paper else "-",
            ]
        )
    return rows


TABLE2_HEADERS = [
    "Dataset",
    "iUB-Filter %",
    "EM-Early-Terminated %",
    "No-EM %",
]

#: Paper Table II values for the side-by-side report.
TABLE2_PAPER = {
    "dblp": (91.0, 5.0, 9.2),
    "opendata": (85.5, 2.1, 54.8),
    "twitter": (53.5, 0.0, 1.4),
    "wdc": (89.2, 0.9, 9.8),
}


def table2_row(dataset_name: str, records: Sequence[QueryRecord]) -> list[Any]:
    """Table II: average pruning percentage per filter.

    iUB percentage is relative to the candidate count; the two
    post-processing percentages are relative to the sets that *reached*
    post-processing, exactly as the paper's footnote states.
    """
    summary = overall_summary(records)
    candidates = summary.mean_candidates or 1.0
    postprocessed = summary.postprocessed or 1.0
    return [
        dataset_name,
        100.0 * summary.mean_refinement_pruned / candidates,
        100.0 * summary.mean_em_early_terminated / postprocessed,
        100.0 * summary.mean_no_em / postprocessed,
    ]


TABLE3_HEADERS = [
    "Dataset",
    "Refinement (s)",
    "Postproc (s)",
    "Response (s)",
    "Mem (MB)",
    "Baseline Resp (s)",
    "Baseline Mem (MB)",
    "Speedup",
]

#: Paper Table III (Koios refinement/postproc/response/mem, baseline
#: response/mem) for the side-by-side report.
TABLE3_PAPER = {
    "dblp": (0.3, 0.44, 0.83, 16.0, 211.0, 11.0),
    "opendata": (7.19, 6.9, 18.6, 69.6, 101.0, 102.5),
    "twitter": (0.2, 0.45, 0.7, 10.0, 518.0, 10.0),
    "wdc": (109.0, 34.3, 147.0, 1775.0, 1062.0, 885.0),
}


def table3_row(
    dataset_name: str,
    koios_records: Sequence[QueryRecord],
    baseline_records: Sequence[QueryRecord],
) -> list[Any]:
    """Table III: average response time and memory, Koios vs Baseline."""
    koios = overall_summary(koios_records)
    baseline = overall_summary(baseline_records)
    speedup = (
        baseline.mean_seconds / koios.mean_seconds
        if koios.mean_seconds > 0
        else float("inf")
    )
    return [
        dataset_name,
        koios.mean_refinement_seconds,
        koios.mean_postproc_seconds,
        koios.mean_seconds,
        koios.mean_memory_mb,
        baseline.mean_seconds,
        baseline.mean_memory_mb,
        speedup,
    ]


TABLE45_HEADERS = [
    "Query Card.",
    "Candidate Sets",
    "iUB-Filtered",
    "No-EM",
    "EM-Early-Terminated",
    "EM",
]


def table45_rows(records: Sequence[QueryRecord]) -> list[list[Any]]:
    """Tables IV/V: mean per-interval filter attribution counts."""
    rows: list[list[Any]] = []
    for summary in summarize(records):
        rows.append(
            [
                summary.group,
                summary.mean_candidates,
                summary.mean_refinement_pruned,
                summary.mean_no_em,
                summary.mean_em_early_terminated,
                summary.mean_em_full,
            ]
        )
    return rows


def speedups_by_group(
    koios_records: Sequence[QueryRecord],
    baseline_records: Sequence[QueryRecord],
) -> dict[str, float]:
    """Per-interval Koios-over-baseline speedups (Table III claim)."""
    koios = {s.group: s for s in summarize(koios_records)}
    baseline = {s.group: s for s in summarize(baseline_records)}
    out: dict[str, float] = {}
    for group, base in baseline.items():
        fast = koios.get(group)
        if fast is None or fast.mean_seconds == 0.0:
            continue
        out[group] = base.mean_seconds / fast.mean_seconds
    return out
