"""ASCII reporting of tables and series.

The benchmark harness prints the same rows the paper's tables report and
the same series its figures plot; this module renders them readably in a
terminal and in the captured pytest output stored in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Sequence


def _format_cell(value: Any, float_digits: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{float_digits}f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
    float_digits: int = 3,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_format_cell(v, float_digits) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
    float_digits: int = 3,
) -> None:
    """Print :func:`format_table` output preceded by a blank line."""
    print()
    print(format_table(headers, rows, title=title, float_digits=float_digits))


def format_series(
    name: str, points: Sequence[tuple[Any, Any]], *, float_digits: int = 3
) -> str:
    """Render one figure series as ``name: x=y, x=y, ...``."""
    rendered = ", ".join(
        f"{_format_cell(x, float_digits)}={_format_cell(y, float_digits)}"
        for x, y in points
    )
    return f"{name}: {rendered}"


def print_series(
    name: str, points: Sequence[tuple[Any, Any]], *, float_digits: int = 3
) -> None:
    """Print one :func:`format_series` line."""
    print(format_series(name, points, float_digits=float_digits))
