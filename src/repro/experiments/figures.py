"""Series builders for the paper's Figures 5-8.

A figure series is a list of ``(x, y)`` points; the bench files print
them with :mod:`repro.experiments.report`. Figures 5 and 6 share one
builder (same panels, different dataset); Figure 7 sweeps the three
search parameters; Figure 8 compares semantic and vanilla result quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.baselines.vanilla import VanillaOverlapSearch
from repro.core.koios import SearchResult
from repro.core.semantic_overlap import vanilla_overlap
from repro.datasets.benchmarks import QueryBenchmark
from repro.experiments.harness import (
    QueryRecord,
    SearchFn,
    by_group,
    groups_in_order,
    mean,
    successful,
    summarize,
)

Series = list[tuple[Any, float]]


@dataclass
class ResponseTimePanels:
    """Fig. 5a-d / 6a-d: response time, phase shares, memory, timeouts."""

    response: dict[str, Series]
    refinement_share: Series
    postproc_share: Series
    memory: dict[str, Series]
    timeouts: dict[str, Series]


def response_time_panels(
    records_by_method: dict[str, Sequence[QueryRecord]],
    *,
    phase_method: str = "koios",
) -> ResponseTimePanels:
    """Build the four panels from per-method harness records."""
    response: dict[str, Series] = {}
    memory: dict[str, Series] = {}
    timeouts: dict[str, Series] = {}
    for method, records in records_by_method.items():
        summaries = summarize(records)
        response[method] = [(s.group, s.mean_seconds) for s in summaries]
        memory[method] = [(s.group, s.mean_memory_mb) for s in summaries]
        timeouts[method] = [(s.group, float(s.timeouts)) for s in summaries]
    phase_summaries = summarize(records_by_method[phase_method])
    refinement_share = [
        (s.group, s.refinement_share) for s in phase_summaries
    ]
    postproc_share = [
        (s.group, 1.0 - s.refinement_share) for s in phase_summaries
    ]
    return ResponseTimePanels(
        response=response,
        refinement_share=refinement_share,
        postproc_share=postproc_share,
        memory=memory,
        timeouts=timeouts,
    )


@dataclass
class ParameterSweep:
    """One panel of Fig. 7: metric vs a parameter value."""

    parameter: str
    response: Series
    refinement_share: Series
    memory: Series


def parameter_sweep(
    parameter: str,
    values: Sequence[Any],
    make_search_fn: Callable[[Any], SearchFn],
    benchmark: QueryBenchmark,
    k_for: Callable[[Any], int],
) -> ParameterSweep:
    """Fig. 7: run the benchmark once per parameter value.

    ``make_search_fn`` builds the searcher for a value (e.g. an engine
    with that partition count); ``k_for`` supplies k (itself the swept
    parameter in Fig. 7c).
    """
    from repro.experiments.harness import run_benchmark

    response: Series = []
    refinement_share: Series = []
    memory: Series = []
    for value in values:
        records = run_benchmark(
            make_search_fn(value),
            benchmark,
            k_for(value),
            method=f"{parameter}={value}",
            dataset_name="sweep",
        )
        done = successful(records)
        total_ref = mean(r.refinement_seconds for r in done)
        total_post = mean(r.postproc_seconds for r in done)
        share = (
            total_ref / (total_ref + total_post)
            if (total_ref + total_post) > 0
            else 0.0
        )
        response.append((value, mean(r.seconds for r in done)))
        refinement_share.append((value, share))
        memory.append((value, mean(r.memory_mb for r in done)))
    return ParameterSweep(
        parameter=parameter,
        response=response,
        refinement_share=refinement_share,
        memory=memory,
    )


@dataclass
class QualityComparison:
    """Fig. 8: vanilla vs semantic top-k quality, per query group.

    For the k-th set of each list we record both its syntactic (vanilla
    overlap) and semantic score, plus the normalized intersection of the
    two result-id lists — the fraction of semantic results that vanilla
    search also finds.
    """

    kth_vanilla_of_vanilla: Series
    kth_vanilla_of_semantic: Series
    kth_semantic_of_semantic: Series
    kth_semantic_of_vanilla: Series
    intersection_fraction: Series


def quality_comparison(
    semantic_search: SearchFn,
    semantic_score: Callable[[frozenset, int], float],
    vanilla: VanillaOverlapSearch,
    benchmark: QueryBenchmark,
    k: int,
) -> QualityComparison:
    """Run both searches over the benchmark and compare k-th entries."""
    collection = vanilla.collection
    rows: dict[str, dict[str, list[float]]] = {}
    for group_label, _, tokens in benchmark:
        semantic_result: SearchResult = semantic_search(tokens, k)
        vanilla_result = vanilla.search(tokens, k)
        if not semantic_result.entries or not vanilla_result.entries:
            continue
        sem_kth = semantic_result.entries[-1]
        van_kth = vanilla_result.entries[-1]
        bucket = rows.setdefault(
            group_label,
            {
                "vv": [],
                "vs": [],
                "ss": [],
                "sv": [],
                "inter": [],
            },
        )
        bucket["vv"].append(float(van_kth.score))
        bucket["vs"].append(
            float(vanilla_overlap(tokens, collection[sem_kth.set_id]))
        )
        bucket["ss"].append(float(sem_kth.score))
        bucket["sv"].append(semantic_score(tokens, van_kth.set_id))
        shared = set(semantic_result.ids()) & set(vanilla_result.ids())
        bucket["inter"].append(len(shared) / max(1, len(semantic_result.ids())))

    ordered = list(rows)
    return QualityComparison(
        kth_vanilla_of_vanilla=[(g, mean(rows[g]["vv"])) for g in ordered],
        kth_vanilla_of_semantic=[(g, mean(rows[g]["vs"])) for g in ordered],
        kth_semantic_of_semantic=[(g, mean(rows[g]["ss"])) for g in ordered],
        kth_semantic_of_vanilla=[(g, mean(rows[g]["sv"])) for g in ordered],
        intersection_fraction=[(g, mean(rows[g]["inter"])) for g in ordered],
    )


def timeouts_per_group(
    records: Sequence[QueryRecord],
) -> Series:
    """Timeout counts per group (annotations of Fig. 5a / 6a)."""
    grouped = by_group(records)
    return [
        (group, float(sum(1 for r in grouped[group] if r.timed_out)))
        for group in groups_in_order(records)
    ]
