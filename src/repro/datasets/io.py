"""Loading and saving collections — the boundary to real data.

The paper's corpora are sets extracted from CSV-ish sources (table
columns, tweet word sets, paper abstracts). This module gives a
downstream user the same ingestion paths without leaving the library:

* **JSON** — ``{"name": ["token", ...], ...}``, the natural exchange
  format for named set collections;
* **long CSV** — one ``(set_name, token)`` pair per row, the shape of a
  melted table-column dump;
* **column CSV** — a regular CSV table whose every column becomes one
  set of its distinct non-empty values, exactly how the paper builds
  OpenData/WDC sets ("the distinct values in every column of every
  table");
* **snapshots** — the binary format of :mod:`repro.store.snapshot`
  (``.snap``/``.snapshot``), loaded collection-only here;
  :func:`load_collection_auto` sniffs all three by extension.

All writers produce deterministic output (sorted names and tokens) so
saved corpora diff cleanly.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.datasets.collection import SetCollection
from repro.errors import InvalidParameterError


def save_collection_json(collection: SetCollection, path: str | Path) -> None:
    """Write ``{name: sorted tokens}`` JSON."""
    payload = {
        collection.name_of(set_id): sorted(collection[set_id])
        for set_id in collection.ids()
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_collection_json(path: str | Path) -> SetCollection:
    """Read a ``{name: [tokens]}`` JSON collection."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise InvalidParameterError(
            "JSON collection must be an object mapping names to token lists"
        )
    names = sorted(payload)
    return SetCollection([payload[name] for name in names], names=names)


def save_collection_csv(collection: SetCollection, path: str | Path) -> None:
    """Write long-format CSV rows ``set_name,token``."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["set_name", "token"])
        for set_id in sorted(
            collection.ids(), key=collection.name_of
        ):
            name = collection.name_of(set_id)
            for token in sorted(collection[set_id]):
                writer.writerow([name, token])


def load_collection_csv(path: str | Path) -> SetCollection:
    """Read long-format ``set_name,token`` CSV (header optional)."""
    groups: dict[str, set[str]] = {}
    with open(path, encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        for row_number, row in enumerate(reader):
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) < 2:
                raise InvalidParameterError(
                    f"row {row_number + 1} needs set_name and token columns"
                )
            name, token = row[0].strip(), row[1].strip()
            if row_number == 0 and (name, token) == ("set_name", "token"):
                continue
            if not token:
                continue
            groups.setdefault(name, set()).add(token)
    if not groups:
        raise InvalidParameterError(f"no sets found in {path}")
    names = sorted(groups)
    return SetCollection([groups[name] for name in names], names=names)


def load_table_columns(
    path: str | Path,
    *,
    table_name: str | None = None,
    min_size: int = 1,
    drop_numeric: bool = True,
) -> SetCollection:
    """Turn a regular CSV table into one set per column (§VIII-A1).

    Every column becomes the set of its distinct non-empty values, named
    ``<table>.<column>``. ``drop_numeric`` removes purely numerical
    values "to avoid casual matches", as the paper does for all four
    datasets; columns ending up below ``min_size`` are skipped.
    """
    path = Path(path)
    prefix = table_name if table_name is not None else path.stem
    with open(path, encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise InvalidParameterError(f"{path} is empty") from None
        columns: list[set[str]] = [set() for _ in header]
        for row in reader:
            for position, cell in enumerate(row[: len(header)]):
                value = cell.strip()
                if not value:
                    continue
                if drop_numeric and _is_numeric(value):
                    continue
                columns[position].add(value)
    sets, names = [], []
    for column_name, values in zip(header, columns):
        if len(values) >= max(1, min_size):
            sets.append(values)
            names.append(f"{prefix}.{column_name.strip()}")
    if not sets:
        raise InvalidParameterError(
            f"no usable columns in {path} (min_size={min_size})"
        )
    return SetCollection(sets, names=names)


def _is_numeric(value: str) -> bool:
    try:
        float(value.replace(",", ""))
    except ValueError:
        return False
    return True


def load_collection_auto(path: str | Path) -> SetCollection:
    """Load a collection, sniffing the format from the file extension.

    ``.json`` -> :func:`load_collection_json`, ``.csv`` ->
    :func:`load_collection_csv`, ``.snap``/``.snapshot`` -> the binary
    snapshot loader (collection only; use :func:`repro.store.load_snapshot`
    when you also want the persisted postings and substrate). Snapshot
    collections come back memmap-backed
    (:class:`~repro.store.snapshot.SnapshotSetCollection`): per-set
    frozensets materialize lazily over read-only array views of the
    file, so even a huge corpus is cheap to open here. Anything else
    raises a friendly :class:`InvalidParameterError` — the one loader
    every CLI command shares.
    """
    suffix = Path(path).suffix.lower()
    if suffix == ".json":
        return load_collection_json(path)
    if suffix == ".csv":
        return load_collection_csv(path)
    if suffix in (".snap", ".snapshot"):
        # Local import: repro.store sits above the dataset layer.
        from repro.store.snapshot import load_snapshot

        return load_snapshot(path).collection
    raise InvalidParameterError(
        f"unrecognized collection format {suffix or '(no extension)'!r} "
        f"for {path}; expected .json, .csv, .snap, or .snapshot"
    )
