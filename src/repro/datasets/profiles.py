"""Dataset profiles mirroring Table I of the paper.

A :class:`DatasetProfile` captures the *shape* statistics that drive
every evaluation phenomenon: number of sets, cardinality distribution
(average, maximum, skew), vocabulary size, and element-frequency skew
(which controls posting-list lengths — the paper repeatedly attributes
WDC's behaviour to its "excessively large posting lists").

``FULL_PROFILES`` records the paper-scale parameters of Table I;
generating those sizes in pure Python is possible but slow, so the
benchmark harness uses ``SMALL_PROFILES`` — the same four shapes scaled
down by roughly an order of magnitude in both set count and cardinality,
preserving skews and relative orderings. ``scaled`` interpolates any
other size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class PaperTableRow:
    """The dataset's row of the paper's Table I (for side-by-side report)."""

    num_sets: int
    max_size: int
    avg_size: float
    num_unique_elements: int


@dataclass(frozen=True)
class DatasetProfile:
    """Generator parameters for one synthetic corpus shape.

    Attributes
    ----------
    size_sigma:
        Shape of the lognormal set-cardinality distribution; OpenData and
        WDC are highly skewed (the paper benchmarks them by cardinality
        interval), DBLP and Twitter are not.
    zipf_exponent:
        Element-frequency skew; higher values produce the few very
        frequent elements / huge posting lists characteristic of WDC.
    cluster_fraction / cluster_size / typo_fraction / oov_fraction:
        Planted semantic structure (see :mod:`repro.datasets.text`).
    cluster_similarity:
        Target expected cosine between planted cluster members.
    family_fraction / family_keep:
        Fraction of sets generated as *variants* of an earlier set, and
        the fraction of a variant's tokens kept from its parent. Real
        repositories are full of such families (columns shared across
        tables, related paper abstracts); they are what pushes the top-k
        scores — and with them ``theta_lb`` and the iUB pruning power —
        far above the capacity of unrelated candidate sets.
    common_fraction / common_pool_size:
        Every set draws ``common_fraction`` of its tokens from a small
        shared pool — the function words that dominate natural-language
        sets (DBLP abstracts, tweets) and the repeated categorical
        values of table columns. The pool gives *every* pair of sets a
        baseline vanilla overlap proportional to set size, which is what
        lifts ``theta_lb`` for large queries in the paper's corpora.
    dim:
        Embedding dimensionality of the synthetic model.
    """

    name: str
    num_sets: int
    avg_size: float
    max_size: int
    min_size: int
    vocab_size: int
    size_sigma: float
    zipf_exponent: float
    cluster_fraction: float = 0.2
    cluster_size: int = 4
    typo_fraction: float = 0.06
    oov_fraction: float = 0.02
    cluster_similarity: float = 0.88
    family_fraction: float = 0.4
    family_keep: float = 0.65
    common_fraction: float = 0.3
    common_pool_size: int = 200
    dim: int = 32
    paper_row: PaperTableRow | None = None

    def __post_init__(self) -> None:
        if self.num_sets < 1:
            raise InvalidParameterError("num_sets must be >= 1")
        if not (self.min_size <= self.avg_size <= self.max_size):
            raise InvalidParameterError(
                "need min_size <= avg_size <= max_size"
            )
        if self.vocab_size < self.max_size:
            raise InvalidParameterError(
                "vocab_size must be >= max_size (sets draw without "
                "replacement)"
            )

    def scaled(
        self, sets_scale: float = 1.0, size_scale: float = 1.0
    ) -> "DatasetProfile":
        """A copy scaled in set count and/or set cardinality.

        Vocabulary scales with the geometric mean of both factors so
        posting-list lengths (which grow with ``sets * avg_size / vocab``)
        keep their relative shape across scales.
        """
        if sets_scale <= 0 or size_scale <= 0:
            raise InvalidParameterError("scales must be positive")
        vocab_scale = math.sqrt(sets_scale * size_scale)
        new_avg = max(float(self.min_size), self.avg_size * size_scale)
        new_max = max(int(math.ceil(new_avg)), int(self.max_size * size_scale))
        return replace(
            self,
            num_sets=max(1, int(self.num_sets * sets_scale)),
            avg_size=new_avg,
            max_size=new_max,
            vocab_size=max(new_max, int(self.vocab_size * vocab_scale)),
        )


#: Paper-scale shapes (Table I). Common-pool settings model the textual
#: character of each corpus: DBLP abstracts and tweets are dominated by
#: shared function words (high common fraction), table-derived OpenData
#: and WDC columns less so, but WDC's few very frequent cell values give
#: it the longest posting lists (highest zipf exponent).
DBLP_FULL = DatasetProfile(
    name="dblp",
    num_sets=4_246,
    avg_size=178.7,
    max_size=514,
    min_size=20,
    vocab_size=25_159,
    size_sigma=0.35,
    zipf_exponent=0.9,
    common_fraction=0.5,
    common_pool_size=150,
    paper_row=PaperTableRow(4_246, 514, 178.7, 25_159),
)

OPENDATA_FULL = DatasetProfile(
    name="opendata",
    num_sets=15_636,
    avg_size=86.4,
    max_size=31_901,
    min_size=5,
    vocab_size=179_830,
    size_sigma=1.15,
    zipf_exponent=1.05,
    common_fraction=0.3,
    common_pool_size=300,
    paper_row=PaperTableRow(15_636, 31_901, 86.4, 179_830),
)

TWITTER_FULL = DatasetProfile(
    name="twitter",
    num_sets=27_204,
    avg_size=22.6,
    max_size=151,
    min_size=3,
    vocab_size=72_910,
    size_sigma=0.45,
    zipf_exponent=1.0,
    common_fraction=0.35,
    common_pool_size=150,
    paper_row=PaperTableRow(27_204, 151, 22.6, 72_910),
)

WDC_FULL = DatasetProfile(
    name="wdc",
    num_sets=1_014_369,
    avg_size=30.6,
    max_size=10_240,
    min_size=3,
    vocab_size=328_357,
    size_sigma=1.0,
    zipf_exponent=1.35,
    common_fraction=0.3,
    common_pool_size=300,
    paper_row=PaperTableRow(1_014_369, 10_240, 30.6, 328_357),
)

FULL_PROFILES: dict[str, DatasetProfile] = {
    profile.name: profile
    for profile in (DBLP_FULL, OPENDATA_FULL, TWITTER_FULL, WDC_FULL)
}

#: Laptop-scale shapes used by the test suite and benchmark harness.
#: Set counts and cardinalities are roughly an order of magnitude below
#: Table I; skew parameters are untouched, and the maximum cardinalities
#: are capped so a single Hungarian run stays sub-second in pure Python
#: while the inter-dataset orderings (DBLP largest sets, WDC most sets
#: and heaviest posting lists, OpenData/WDC highly size-skewed) survive.
DBLP_SMALL = replace(
    DBLP_FULL, num_sets=420, avg_size=40.0, max_size=110, min_size=8,
    vocab_size=3_700,
)
OPENDATA_SMALL = replace(
    OPENDATA_FULL, num_sets=950, avg_size=13.0, max_size=400, min_size=3,
    vocab_size=8_000,
)
TWITTER_SMALL = replace(
    TWITTER_FULL, num_sets=1_500, avg_size=11.0, max_size=75, min_size=3,
    vocab_size=6_000,
)
WDC_SMALL = replace(
    WDC_FULL, num_sets=4_000, avg_size=12.0, max_size=450, min_size=3,
    vocab_size=7_000,
)

SMALL_PROFILES: dict[str, DatasetProfile] = {
    profile.name: profile
    for profile in (DBLP_SMALL, OPENDATA_SMALL, TWITTER_SMALL, WDC_SMALL)
}

#: Tiny shapes for fast unit tests.
DBLP_TINY = replace(
    DBLP_FULL, num_sets=60, avg_size=14.0, max_size=30, min_size=5,
    vocab_size=400,
)
OPENDATA_TINY = replace(
    OPENDATA_FULL, num_sets=120, avg_size=8.0, max_size=60, min_size=3,
    vocab_size=700,
)
TWITTER_TINY = replace(
    TWITTER_FULL, num_sets=150, avg_size=6.0, max_size=20, min_size=3,
    vocab_size=600,
)
WDC_TINY = replace(
    WDC_FULL, num_sets=200, avg_size=7.0, max_size=60, min_size=3,
    vocab_size=650,
)

TINY_PROFILES: dict[str, DatasetProfile] = {
    profile.name: profile
    for profile in (DBLP_TINY, OPENDATA_TINY, TWITTER_TINY, WDC_TINY)
}


def profile_by_name(name: str, *, scale: str = "small") -> DatasetProfile:
    """Look up a profile: ``scale`` is ``full``, ``small``, or ``tiny``."""
    registry = {
        "full": FULL_PROFILES,
        "small": SMALL_PROFILES,
        "tiny": TINY_PROFILES,
    }.get(scale)
    if registry is None:
        raise InvalidParameterError(f"unknown scale: {scale!r}")
    try:
        return registry[name]
    except KeyError:
        raise InvalidParameterError(f"unknown profile: {name!r}") from None
