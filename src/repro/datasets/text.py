"""Synthetic token corpus construction.

The paper's corpora are strings from paper titles, tweets, and table
columns; their three phenomena that matter to Koios are reproduced here
with known ground truth:

* **synonym clusters** — groups of character-unrelated tokens that are
  semantically similar (``BigApple`` / ``NewYorkCity``); realized as
  independently generated random tokens tied together by the planted
  embedding clusters of :class:`repro.embedding.SyntheticEmbeddingModel`;
* **typo pairs** — a base token and a one-edit variant (``Blaine`` /
  ``Blain``); FastText's subword embeddings place such pairs close, so
  each pair forms its own tight planted cluster;
* **out-of-vocabulary tokens** — tokens without embeddings, which only
  ever contribute to overlaps via exact matches (§V).
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidParameterError
from repro.utils.rng import make_rng

_ALPHABET = string.ascii_lowercase


def random_token(
    rng: np.random.Generator, *, min_len: int = 4, max_len: int = 10
) -> str:
    """A random lowercase token with length in ``[min_len, max_len]``."""
    length = int(rng.integers(min_len, max_len + 1))
    letters = rng.integers(0, len(_ALPHABET), size=length)
    return "".join(_ALPHABET[i] for i in letters)


def distinct_tokens(
    count: int,
    rng: np.random.Generator,
    *,
    min_len: int = 4,
    max_len: int = 10,
    taken: set[str] | None = None,
) -> list[str]:
    """``count`` unique random tokens, avoiding any in ``taken``."""
    if count < 0:
        raise InvalidParameterError("count must be >= 0")
    seen = set(taken) if taken else set()
    out: list[str] = []
    while len(out) < count:
        token = random_token(rng, min_len=min_len, max_len=max_len)
        if token in seen:
            continue
        seen.add(token)
        out.append(token)
    return out


def typo_variant(token: str, rng: np.random.Generator) -> str:
    """One random single-character edit of ``token``.

    Substitution, deletion, or insertion with equal probability; the
    result always differs from the input.
    """
    if not token:
        raise InvalidParameterError("cannot mutate the empty token")
    while True:
        kind = int(rng.integers(0, 3))
        pos = int(rng.integers(0, len(token)))
        letter = _ALPHABET[int(rng.integers(0, len(_ALPHABET)))]
        if kind == 0:  # substitution
            variant = token[:pos] + letter + token[pos + 1:]
        elif kind == 1 and len(token) > 1:  # deletion
            variant = token[:pos] + token[pos + 1:]
        else:  # insertion
            variant = token[:pos] + letter + token[pos:]
        if variant != token:
            return variant


@dataclass
class VocabularySpec:
    """A synthesized vocabulary with its planted semantic structure.

    Attributes
    ----------
    tokens:
        Every token, in a deterministic order (cluster members first,
        then typo pairs, then plain tokens).
    clusters:
        ``cluster_name -> member tokens`` — both synonym clusters and
        typo-pair clusters; feeds directly into
        :class:`~repro.embedding.SyntheticEmbeddingModel`.
    oov_tokens:
        Tokens excluded from the embedding vocabulary.
    typo_pairs:
        The ``(base, variant)`` pairs, for quality-experiment ground
        truth.
    """

    tokens: list[str] = field(default_factory=list)
    clusters: dict[str, list[str]] = field(default_factory=dict)
    oov_tokens: set[str] = field(default_factory=set)
    typo_pairs: list[tuple[str, str]] = field(default_factory=list)

    @property
    def clustered_tokens(self) -> set[str]:
        return {t for members in self.clusters.values() for t in members}

    def related_tokens(self, token: str) -> set[str]:
        """Tokens planted as semantically related to ``token``."""
        for members in self.clusters.values():
            if token in members:
                return set(members) - {token}
        return set()


def build_vocabulary(
    *,
    num_tokens: int,
    cluster_fraction: float = 0.2,
    cluster_size: int = 4,
    typo_fraction: float = 0.05,
    oov_fraction: float = 0.02,
    seed: int | np.random.Generator = 0,
) -> VocabularySpec:
    """Synthesize a vocabulary of ``num_tokens`` with planted structure.

    ``cluster_fraction`` of tokens land in synonym clusters of
    ``cluster_size`` members; ``typo_fraction`` of tokens are one-edit
    variants of other tokens (each pair its own tight cluster);
    ``oov_fraction`` of the *plain* tokens are marked out-of-vocabulary.
    """
    if num_tokens < 1:
        raise InvalidParameterError("num_tokens must be >= 1")
    if cluster_size < 2:
        raise InvalidParameterError("cluster_size must be >= 2")
    for name, value in (
        ("cluster_fraction", cluster_fraction),
        ("typo_fraction", typo_fraction),
        ("oov_fraction", oov_fraction),
    ):
        if not (0.0 <= value <= 1.0):
            raise InvalidParameterError(f"{name} must be in [0, 1]")
    if cluster_fraction + typo_fraction > 1.0:
        raise InvalidParameterError(
            "cluster_fraction + typo_fraction must not exceed 1"
        )

    rng = make_rng(seed)
    spec = VocabularySpec()
    taken: set[str] = set()

    num_clustered = int(num_tokens * cluster_fraction)
    num_clusters = num_clustered // cluster_size
    for index in range(num_clusters):
        members = distinct_tokens(cluster_size, rng, taken=taken)
        taken.update(members)
        spec.clusters[f"syn_{index}"] = members
        spec.tokens.extend(members)

    num_typo_pairs = int(num_tokens * typo_fraction) // 2
    for index in range(num_typo_pairs):
        (base,) = distinct_tokens(1, rng, taken=taken)
        taken.add(base)
        variant = typo_variant(base, rng)
        while variant in taken:
            variant = typo_variant(base, rng)
        taken.add(variant)
        spec.typo_pairs.append((base, variant))
        spec.clusters[f"typo_{index}"] = [base, variant]
        spec.tokens.extend((base, variant))

    remaining = num_tokens - len(spec.tokens)
    plain = distinct_tokens(max(0, remaining), rng, taken=taken)
    spec.tokens.extend(plain)

    num_oov = int(len(plain) * oov_fraction)
    if num_oov:
        picks = rng.choice(len(plain), size=num_oov, replace=False)
        spec.oov_tokens = {plain[int(i)] for i in picks}
    return spec
