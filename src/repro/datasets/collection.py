"""The repository datatype searched by Koios.

A :class:`SetCollection` is the collection ``L`` of the paper: a list of
sets of string tokens, addressed by integer set ids, together with the
derived vocabulary ``D`` (union of all tokens) and posting statistics.
Every searcher (Koios, the baselines, SilkMoth) operates on this type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import InvalidParameterError
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class CollectionStats:
    """Shape statistics, matching the columns of the paper's Table I."""

    num_sets: int
    max_size: int
    avg_size: float
    num_unique_elements: int

    def as_row(self) -> tuple[int, int, float, int]:
        return (self.num_sets, self.max_size, self.avg_size,
                self.num_unique_elements)


class SetCollection:
    """An in-memory repository of token sets.

    Parameters
    ----------
    sets:
        A sequence of iterables of tokens. Duplicate tokens inside one
        set are collapsed (sets are sets).
    names:
        Optional external names (e.g. table.column identifiers) aligned
        with ``sets``; defaults to ``"set_<id>"``.
    """

    def __init__(
        self,
        sets: Sequence[Iterable[str]],
        names: Sequence[str] | None = None,
    ) -> None:
        self._sets: list[frozenset[str]] = [frozenset(s) for s in sets]
        if any(len(s) == 0 for s in self._sets):
            raise InvalidParameterError("collections may not contain empty sets")
        if names is not None:
            if len(names) != len(self._sets):
                raise InvalidParameterError(
                    "names must align with sets: "
                    f"{len(names)} names for {len(self._sets)} sets"
                )
            self._names = list(names)
        else:
            self._names = [f"set_{i}" for i in range(len(self._sets))]
        vocabulary: set[str] = set()
        for s in self._sets:
            vocabulary.update(s)
        self._vocabulary = vocabulary

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Iterable[str]]) -> "SetCollection":
        """Build a collection from ``{name: tokens}``."""
        names = list(mapping.keys())
        return cls([mapping[name] for name in names], names=names)

    @classmethod
    def from_parts(
        cls,
        sets: list[frozenset[str]],
        names: list[str],
        vocabulary: set[str],
    ) -> "SetCollection":
        """Adopt pre-validated parts without re-freezing or re-unioning.

        The snapshot loader has already materialized frozensets, aligned
        names, and the exact vocabulary; re-running ``__init__``'s
        normalization would double the cold-start cost for nothing. The
        caller guarantees the invariants ``__init__`` enforces (no empty
        sets, aligned names, vocabulary == union of sets).
        """
        collection = cls.__new__(cls)
        collection._sets = sets
        collection._names = names
        collection._vocabulary = vocabulary
        return collection

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._sets)

    def __getitem__(self, set_id: int) -> frozenset[str]:
        return self._sets[set_id]

    def __iter__(self) -> Iterator[frozenset[str]]:
        return iter(self._sets)

    def ids(self) -> range:
        return range(len(self._sets))

    def name_of(self, set_id: int) -> str:
        return self._names[set_id]

    def id_of(self, name: str) -> int:
        """Inverse of :meth:`name_of`; linear scan, intended for tests
        and examples, not hot paths."""
        return self._names.index(name)

    # -- derived data ----------------------------------------------------

    @property
    def vocabulary(self) -> frozenset[str]:
        """The vocabulary ``D``: every distinct token across all sets."""
        return frozenset(self._vocabulary)

    def cardinality(self, set_id: int) -> int:
        return len(self._sets[set_id])

    def stats(self) -> CollectionStats:
        """Table-I style shape statistics."""
        sizes = [len(s) for s in self._sets]
        return CollectionStats(
            num_sets=len(sizes),
            max_size=max(sizes) if sizes else 0,
            avg_size=sum(sizes) / len(sizes) if sizes else 0.0,
            num_unique_elements=len(self._vocabulary),
        )

    # -- partitioning ------------------------------------------------------

    def partition(
        self,
        num_partitions: int,
        *,
        seed: int | None = 0,
        within: Sequence[int] | None = None,
    ) -> list[list[int]]:
        """Randomly split set ids into ``num_partitions`` groups (§VI).

        Sets are assigned uniformly at random, so partitions have the same
        expected size, exactly as the paper's scale-out scheme. Returns a
        list of id lists; empty partitions are possible for tiny inputs
        and are skipped by the searcher.

        ``within`` restricts the split to an explicit id subset — the
        sharded engine pool partitions the repository once and hands each
        shard engine its slice through this parameter.
        """
        if num_partitions < 1:
            raise InvalidParameterError("num_partitions must be >= 1")
        if within is None:
            universe = list(self.ids())
        else:
            universe = [int(i) for i in within]
            for set_id in universe:
                if not (0 <= set_id < len(self._sets)):
                    raise InvalidParameterError(
                        f"set id out of range: {set_id}"
                    )
            if len(set(universe)) != len(universe):
                raise InvalidParameterError(
                    "within may not contain duplicate set ids"
                )
        if num_partitions == 1:
            return [universe]
        rng = make_rng(seed)
        assignment = rng.integers(0, num_partitions, size=len(universe))
        partitions: list[list[int]] = [[] for _ in range(num_partitions)]
        for set_id, part in zip(universe, assignment):
            partitions[int(part)].append(set_id)
        return partitions

    def subset(self, set_ids: Sequence[int]) -> "SetCollection":
        """A new collection containing only ``set_ids`` (names preserved)."""
        return SetCollection(
            [self._sets[i] for i in set_ids],
            names=[self._names[i] for i in set_ids],
        )
