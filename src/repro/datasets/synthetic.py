"""Synthetic corpus generation — the Table I dataset substitute.

``generate_dataset`` turns a :class:`~repro.datasets.profiles.DatasetProfile`
into a concrete :class:`~repro.datasets.collection.SetCollection` plus the
planted-cluster embedding model that defines element similarities over it:

1. a vocabulary with planted synonym clusters, typo pairs, and OOV tokens
   is synthesized (:mod:`repro.datasets.text`);
2. each vocabulary token gets a Zipfian sampling weight — the exponent
   controls posting-list skew (WDC-like profiles produce the few very
   frequent elements the paper blames for its refinement cost);
3. set cardinalities are drawn from a truncated lognormal matched to the
   profile's average/maximum (OpenData/WDC-like profiles are heavily
   skewed, driving the per-cardinality-interval benchmarks);
4. each set samples distinct tokens by weight; sets below the paper's
   70% embedding-coverage floor are rejected and redrawn, mirroring the
   corpus filtering of §VIII-A1;
5. a profile-controlled fraction of sets are generated as *variants* of
   an earlier set (keeping most of its tokens, resampling the rest) —
   the set families that real repositories exhibit and that give top-k
   results scores far above those of unrelated sets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.datasets.collection import SetCollection
from repro.datasets.profiles import DatasetProfile
from repro.datasets.text import VocabularySpec, build_vocabulary
from repro.embedding.synthetic import SyntheticEmbeddingModel
from repro.utils.rng import make_rng

#: Paper: sets with less than 70% pre-trained-vector coverage are dropped.
COVERAGE_FLOOR = 0.7


@dataclass
class SyntheticDataset:
    """A generated corpus: the collection, its embedding model, and the
    ground-truth vocabulary structure."""

    profile: DatasetProfile
    collection: SetCollection
    provider: SyntheticEmbeddingModel
    vocabulary_spec: VocabularySpec
    seed: int

    @property
    def name(self) -> str:
        return self.profile.name


def _zipf_weights(size: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Zipfian sampling weights, randomly assigned to vocabulary slots so
    frequent tokens are spread across clusters and plain tokens."""
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    rng.shuffle(weights)
    return weights / weights.sum()


def _sample_sizes(profile: DatasetProfile, count: int, rng: np.random.Generator) -> np.ndarray:
    """Truncated-lognormal set cardinalities hitting the profile's shape.

    ``mu`` is solved so the *untruncated* mean matches ``avg_size``;
    truncation to ``[min_size, max_size]`` biases the realized average
    slightly, which is irrelevant for the shape phenomena under study.
    """
    sigma = profile.size_sigma
    mu = math.log(profile.avg_size) - 0.5 * sigma * sigma
    sizes = rng.lognormal(mean=mu, sigma=sigma, size=count)
    return np.clip(np.round(sizes), profile.min_size, profile.max_size).astype(
        np.int64
    )


class _WeightedSampler:
    """Samples distinct vocabulary indices by fixed Zipfian weights.

    Draws with replacement via one cumulative-distribution searchsorted
    pass and deduplicates, topping up until the requested count of
    distinct tokens is reached — O(n log |D|) per set instead of the
    O(|D|) per *draw* of ``Generator.choice(replace=False, p=...)``.
    ``index_map`` translates local draw positions to global vocabulary
    indices, so one sampler can cover an arbitrary token subset.
    """

    def __init__(
        self,
        weights: np.ndarray,
        rng: np.random.Generator,
        *,
        index_map: np.ndarray | None = None,
    ) -> None:
        self._cdf = np.cumsum(weights / weights.sum())
        self._cdf[-1] = 1.0
        self._rng = rng
        self._size = len(weights)
        self._index_map = index_map

    @property
    def size(self) -> int:
        return self._size

    def sample(self, count: int) -> list[int]:
        count = min(count, self._size)
        picked: dict[int, None] = {}
        # Expect a few duplicates under skew; oversample modestly and
        # retry until enough distinct indices accumulate.
        need = count
        while need > 0:
            draws = np.searchsorted(
                self._cdf, self._rng.random(2 * need + 8), side="right"
            )
            if self._index_map is not None:
                draws = self._index_map[draws]
            for index in draws:
                if len(picked) == count:
                    break
                picked.setdefault(int(index), None)
            need = count - len(picked)
        return list(picked)


class _CorpusSampler:
    """Mixes a small common pool with the long-tail vocabulary.

    Each set draws ``common_fraction`` of its tokens from the pool (the
    stopword-like tokens every real set shares) and the rest from the
    remaining vocabulary under the profile's Zipf skew.
    """

    def __init__(
        self,
        profile: DatasetProfile,
        spec: VocabularySpec,
        rng: np.random.Generator,
    ) -> None:
        plain_non_oov = np.array(
            [
                index
                for index, token in enumerate(spec.tokens)
                if token not in spec.clustered_tokens
                and token not in spec.oov_tokens
            ],
            dtype=np.int64,
        )
        pool_size = min(profile.common_pool_size, len(plain_non_oov) // 2)
        pool = plain_non_oov[-pool_size:] if pool_size else plain_non_oov[:0]
        pool_set = set(int(i) for i in pool)
        tail = np.array(
            [i for i in range(len(spec.tokens)) if i not in pool_set],
            dtype=np.int64,
        )
        self._common_fraction = profile.common_fraction if pool_size else 0.0
        self._common = (
            _WeightedSampler(
                _zipf_weights(len(pool), 0.8, rng), rng, index_map=pool
            )
            if pool_size
            else None
        )
        self._tail = _WeightedSampler(
            _zipf_weights(len(tail), profile.zipf_exponent, rng),
            rng,
            index_map=tail,
        )

    def sample(self, count: int) -> list[int]:
        num_common = int(round(self._common_fraction * count))
        if self._common is not None and num_common:
            num_common = min(num_common, self._common.size)
            picked = self._common.sample(num_common)
        else:
            picked = []
        picked.extend(self._tail.sample(count - len(picked)))
        return picked


def generate_dataset(
    profile: DatasetProfile, *, seed: int = 0
) -> SyntheticDataset:
    """Generate a corpus with the shape of ``profile``.

    Deterministic in ``(profile, seed)``; the embedding model is salted
    with the profile name so distinct datasets live in independent
    embedding spaces.
    """
    rng = make_rng(seed)
    spec = build_vocabulary(
        num_tokens=profile.vocab_size,
        cluster_fraction=profile.cluster_fraction,
        cluster_size=profile.cluster_size,
        typo_fraction=profile.typo_fraction,
        oov_fraction=profile.oov_fraction,
        seed=rng,
    )
    provider = SyntheticEmbeddingModel(
        dim=profile.dim,
        clusters=spec.clusters,
        cluster_similarity=profile.cluster_similarity,
        oov_tokens=spec.oov_tokens,
        salt=f"dataset::{profile.name}::{seed}",
    )
    sampler = _CorpusSampler(profile, spec, rng)
    sizes = _sample_sizes(profile, profile.num_sets, rng)

    tokens = spec.tokens
    oov = spec.oov_tokens
    sets: list[list[str]] = []
    for size in sizes:
        size = int(size)
        if sets and rng.random() < profile.family_fraction:
            members = _draw_family_variant(
                sets, sampler, tokens, size, profile.family_keep, rng
            )
        else:
            members = _draw_covered_set(sampler, tokens, oov, size)
        sets.append(members)
    collection = SetCollection(sets)
    return SyntheticDataset(
        profile=profile,
        collection=collection,
        provider=provider,
        vocabulary_spec=spec,
        seed=seed,
    )


def _draw_family_variant(
    sets: list[list[str]],
    sampler: _CorpusSampler,
    tokens: list[str],
    size: int,
    family_keep: float,
    rng: np.random.Generator,
) -> list[str]:
    """A variant of a random earlier set: keep ``family_keep`` of the
    child's tokens from the parent, resample the rest by weight."""
    parent = sets[int(rng.integers(0, len(sets)))]
    num_keep = min(len(parent), int(round(family_keep * size)))
    if num_keep:
        picks = rng.choice(len(parent), size=num_keep, replace=False)
        kept = [parent[int(i)] for i in picks]
    else:
        kept = []
    members = dict.fromkeys(kept)
    while len(members) < size:
        for index in sampler.sample(size - len(members)):
            members.setdefault(tokens[index], None)
    return list(members)


def _draw_covered_set(
    sampler: _CorpusSampler,
    tokens: list[str],
    oov: set[str],
    size: int,
    *,
    max_attempts: int = 8,
) -> list[str]:
    """Draw one set, redrawing if embedding coverage is below the floor.

    After ``max_attempts`` the best draw so far is kept — tiny sets made
    mostly of OOV tokens are rare but must not hang generation.
    """
    best: list[str] = []
    best_coverage = -1.0
    for _ in range(max_attempts):
        members = [tokens[i] for i in sampler.sample(size)]
        covered = sum(1 for t in members if t not in oov)
        coverage = covered / len(members)
        if coverage > best_coverage:
            best, best_coverage = members, coverage
        if coverage >= COVERAGE_FLOOR:
            return members
    return best
