"""Query benchmark construction (§VIII-A2).

The paper samples query sets *from the data*: uniformly for DBLP and
Twitter, and per cardinality interval for the highly size-skewed
OpenData and WDC (so benchmarks are not dominated by small sets). This
module reproduces both schemes on any collection, deriving interval
boundaries from cardinality quantiles when explicit ones are not given —
the equivalent, at generator scale, of the paper's hand-picked ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.datasets.collection import SetCollection
from repro.errors import InvalidParameterError
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class CardinalityInterval:
    """A half-open cardinality range ``[lo, hi)``; ``hi=None`` is open."""

    lo: int
    hi: int | None

    @property
    def label(self) -> str:
        if self.hi is None:
            return f">={self.lo}"
        return f"{self.lo}-{self.hi}"

    def contains(self, size: int) -> bool:
        return size >= self.lo and (self.hi is None or size < self.hi)


@dataclass
class QueryGroup:
    """Queries sampled from one cardinality interval."""

    interval: CardinalityInterval
    query_ids: list[int] = field(default_factory=list)

    @property
    def label(self) -> str:
        return self.interval.label


@dataclass
class QueryBenchmark:
    """A collection of query sets, grouped by cardinality interval.

    Query sets are members of the searched collection, exactly as in the
    paper; iterate to obtain ``(group_label, query_id, tokens)`` triples.
    """

    collection: SetCollection
    groups: list[QueryGroup]

    def __len__(self) -> int:
        return sum(len(group.query_ids) for group in self.groups)

    def __iter__(self) -> Iterator[tuple[str, int, frozenset[str]]]:
        for group in self.groups:
            for query_id in group.query_ids:
                yield group.label, query_id, self.collection[query_id]

    def all_query_ids(self) -> list[int]:
        return [qid for group in self.groups for qid in group.query_ids]

    # -- constructors -------------------------------------------------------

    @classmethod
    def uniform(
        cls,
        collection: SetCollection,
        num_queries: int,
        *,
        seed: int = 0,
    ) -> "QueryBenchmark":
        """Uniform random query sampling (DBLP/Twitter scheme)."""
        if num_queries < 1:
            raise InvalidParameterError("num_queries must be >= 1")
        rng = make_rng(seed)
        count = min(num_queries, len(collection))
        picks = rng.choice(len(collection), size=count, replace=False)
        interval = CardinalityInterval(0, None)
        group = QueryGroup(interval, sorted(int(i) for i in picks))
        return cls(collection, [group])

    @classmethod
    def by_intervals(
        cls,
        collection: SetCollection,
        intervals: Sequence[CardinalityInterval],
        per_interval: int,
        *,
        seed: int = 0,
    ) -> "QueryBenchmark":
        """Sample ``per_interval`` queries from each cardinality interval
        (OpenData/WDC scheme); intervals with no member sets are dropped."""
        if per_interval < 1:
            raise InvalidParameterError("per_interval must be >= 1")
        rng = make_rng(seed)
        groups: list[QueryGroup] = []
        for interval in intervals:
            members = [
                set_id
                for set_id in collection.ids()
                if interval.contains(collection.cardinality(set_id))
            ]
            if not members:
                continue
            count = min(per_interval, len(members))
            picks = rng.choice(len(members), size=count, replace=False)
            groups.append(
                QueryGroup(interval, sorted(members[int(i)] for i in picks))
            )
        if not groups:
            raise InvalidParameterError("no interval matched any set")
        return cls(collection, groups)

    @classmethod
    def by_quantiles(
        cls,
        collection: SetCollection,
        num_intervals: int,
        per_interval: int,
        *,
        seed: int = 0,
    ) -> "QueryBenchmark":
        """Intervals derived from cardinality quantiles.

        This reproduces the *intent* of the paper's hand-picked ranges —
        equal-population strata over a power-law size distribution — at
        whatever scale the generated corpus has.
        """
        intervals = quantile_intervals(collection, num_intervals)
        return cls.by_intervals(
            collection, intervals, per_interval, seed=seed
        )


def quantile_intervals(
    collection: SetCollection, num_intervals: int
) -> list[CardinalityInterval]:
    """Cardinality intervals with (roughly) equal set populations."""
    if num_intervals < 1:
        raise InvalidParameterError("num_intervals must be >= 1")
    sizes = np.array(
        [collection.cardinality(i) for i in collection.ids()], dtype=np.int64
    )
    quantiles = np.quantile(
        sizes, np.linspace(0.0, 1.0, num_intervals + 1)[1:-1]
    )
    edges = sorted({int(np.ceil(q)) for q in quantiles})
    lows = [int(sizes.min())] + [edge for edge in edges]
    intervals: list[CardinalityInterval] = []
    for index, lo in enumerate(lows):
        hi = lows[index + 1] if index + 1 < len(lows) else None
        if hi is not None and hi <= lo:
            continue
        intervals.append(CardinalityInterval(lo, hi))
    return intervals


#: The paper's literal interval boundaries, reusable at full scale.
OPENDATA_PAPER_INTERVALS = [
    CardinalityInterval(10, 750),
    CardinalityInterval(750, 1000),
    CardinalityInterval(1000, 1500),
    CardinalityInterval(1500, 2500),
    CardinalityInterval(2500, 5000),
    CardinalityInterval(5000, None),
]

WDC_PAPER_INTERVALS = [
    CardinalityInterval(20, 250),
    CardinalityInterval(250, 500),
    CardinalityInterval(500, 750),
    CardinalityInterval(750, 1000),
    CardinalityInterval(1000, None),
]
