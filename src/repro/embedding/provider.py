"""Embedding provider protocol and an in-memory vector store.

The paper computes element similarity as the cosine of FastText vectors.
We abstract "something that maps tokens to vectors" behind
:class:`EmbeddingProvider` so both substitutes (hashing n-gram embeddings
and the planted-cluster synthetic model) plug into the same similarity
function and vector index.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

import numpy as np

from repro.errors import VocabularyError


@runtime_checkable
class EmbeddingProvider(Protocol):
    """Maps tokens to fixed-dimension vectors.

    ``vector`` may raise :class:`VocabularyError` for out-of-vocabulary
    tokens; ``covers`` reports membership without raising. Vectors are
    not required to be unit-normalized — consumers normalize.
    """

    @property
    def dim(self) -> int:
        """Dimensionality of produced vectors."""
        ...

    def covers(self, token: str) -> bool:
        """Whether this provider has a vector for ``token``."""
        ...

    def vector(self, token: str) -> np.ndarray:
        """The vector for ``token`` (shape ``(dim,)``, dtype float32)."""
        ...


def normalize(vec: np.ndarray) -> np.ndarray:
    """Unit-normalize a vector; zero vectors are returned unchanged so
    their cosine with anything is 0 rather than NaN."""
    norm = float(np.linalg.norm(vec))
    if norm == 0.0:
        return vec.astype(np.float32)
    return (vec / norm).astype(np.float32)


class VectorStore:
    """A dense matrix of unit-normalized vectors for a fixed vocabulary.

    This is the structure fed to the vector index (the Faiss substitute):
    it materializes the provider's vectors for exactly the tokens that
    appear in the searched collection, mirroring how the paper builds one
    Faiss index per dataset.
    """

    def __init__(self, provider: EmbeddingProvider, tokens: Iterable[str]) -> None:
        covered = [t for t in sorted(set(tokens)) if provider.covers(t)]
        self._provider = provider
        self._tokens: list[str] = covered
        self._token_to_row: dict[str, int] = {
            token: row for row, token in enumerate(covered)
        }
        if covered:
            matrix = np.stack([normalize(provider.vector(t)) for t in covered])
        else:
            matrix = np.zeros((0, provider.dim), dtype=np.float32)
        self._matrix = matrix.astype(np.float32)
        self._dim = provider.dim

    @classmethod
    def from_state(
        cls,
        provider: EmbeddingProvider,
        tokens: list[str],
        matrix: np.ndarray,
    ) -> "VectorStore":
        """Adopt an already-normalized ``(len(tokens), dim)`` matrix.

        The snapshot loader uses this to skip re-embedding the whole
        vocabulary on cold start; rows must align with ``tokens``.
        """
        store = cls.__new__(cls)
        store._provider = provider
        store._tokens = list(tokens)
        store._token_to_row = {
            token: row for row, token in enumerate(store._tokens)
        }
        store._matrix = np.ascontiguousarray(matrix, dtype=np.float32)
        store._dim = provider.dim
        return store

    def extend(self, tokens: Iterable[str]) -> int:
        """Embed and append any ``tokens`` not yet in the store.

        Live collection mutation grows the vocabulary; extending the
        store (instead of rebuilding it) keeps the incremental-update
        path free of the O(|D|) embedding pass. Returns the number of
        rows added. Rows for tokens that later leave the vocabulary are
        left in place — the token stream filters on the collection
        vocabulary, so stale rows cost a little scan time but can never
        surface in results.
        """
        fresh = [
            t for t in sorted(set(tokens))
            if t not in self._token_to_row and self._provider.covers(t)
        ]
        if not fresh:
            return 0
        rows = np.stack([normalize(self._provider.vector(t)) for t in fresh])
        self._matrix = np.concatenate(
            [self._matrix, rows.astype(np.float32)], axis=0
        )
        for token in fresh:
            self._token_to_row[token] = len(self._tokens)
            self._tokens.append(token)
        return len(fresh)

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def matrix(self) -> np.ndarray:
        """The ``(num_tokens, dim)`` unit-normalized matrix (read-only view)."""
        view = self._matrix.view()
        view.setflags(write=False)
        return view

    @property
    def tokens(self) -> list[str]:
        return list(self._tokens)

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_row

    def row_of(self, token: str) -> int:
        try:
            return self._token_to_row[token]
        except KeyError:
            raise VocabularyError(f"token not in vector store: {token!r}") from None

    def token_at(self, row: int) -> str:
        return self._tokens[row]

    def vector(self, token: str) -> np.ndarray:
        return self._matrix[self.row_of(token)]

    def coverage(self, tokens: Iterable[str]) -> float:
        """Fraction of ``tokens`` present in the store.

        The paper filters OpenData/WDC sets to >= 70% pre-trained vector
        coverage; dataset generators use this to implement that filter.
        """
        tokens = list(tokens)
        if not tokens:
            return 0.0
        hits = sum(1 for t in tokens if t in self._token_to_row)
        return hits / len(tokens)
