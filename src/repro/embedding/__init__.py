"""Embedding substrate: FastText-style hashing embeddings, planted-cluster
synthetic embeddings, and the vector store consumed by the index."""

from repro.embedding.hashing import HashingEmbeddingProvider, char_ngrams
from repro.embedding.provider import EmbeddingProvider, VectorStore, normalize
from repro.embedding.synthetic import PinnedSimilarityModel, SyntheticEmbeddingModel

__all__ = [
    "EmbeddingProvider",
    "HashingEmbeddingProvider",
    "PinnedSimilarityModel",
    "SyntheticEmbeddingModel",
    "VectorStore",
    "char_ngrams",
    "normalize",
]
