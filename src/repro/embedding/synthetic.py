"""Planted-cluster synthetic embedding model.

The paper's headline phenomenon is that tokens which are *semantically*
similar but *character-level unrelated* (``BigApple`` / ``NewYorkCity``)
must contribute to the overlap. Pre-trained FastText gives such pairs high
cosine similarity; to reproduce that offline with known ground truth we
plant synonym/relatedness clusters directly in embedding space:

* every cluster has a random unit *anchor* vector;
* each member token's vector is the anchor mixed with token-specific
  noise, with the mixing weight chosen analytically so that the expected
  pairwise cosine of two members hits a target similarity;
* non-member tokens get independent random vectors, so cross-cluster
  cosines concentrate near 0 for moderate dimensions.

This gives a controllable, deterministic stand-in for "cosine of
pre-trained embeddings" with tunable cluster tightness, plus optional
out-of-vocabulary tokens to exercise Koios's OOV handling.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

import numpy as np

from repro.embedding.provider import normalize
from repro.errors import InvalidParameterError, VocabularyError
from repro.utils.rng import token_rng


class SyntheticEmbeddingModel:
    """Embeddings with planted similarity clusters.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    clusters:
        Mapping ``cluster_name -> member tokens``. A token may belong to
        at most one cluster.
    cluster_similarity:
        Target expected cosine similarity between two members of the same
        cluster, in (0, 1].
    oov_tokens:
        Tokens the model refuses to embed (``covers`` returns False),
        simulating tokens absent from the pre-trained corpus.
    salt:
        Namespaces the deterministic randomness.
    """

    def __init__(
        self,
        dim: int = 64,
        *,
        clusters: Mapping[str, Iterable[str]] | None = None,
        cluster_similarity: float = 0.85,
        oov_tokens: Iterable[str] = (),
        salt: str = "synthetic-embedding",
    ) -> None:
        if dim < 2:
            raise InvalidParameterError("dim must be >= 2")
        if not (0.0 < cluster_similarity <= 1.0):
            raise InvalidParameterError("cluster_similarity must be in (0, 1]")
        self._dim = dim
        self._salt = salt
        self._oov = frozenset(oov_tokens)
        self._token_cluster: dict[str, str] = {}
        for name, members in (clusters or {}).items():
            for token in members:
                existing = self._token_cluster.get(token)
                if existing is not None and existing != name:
                    raise InvalidParameterError(
                        f"token {token!r} is in clusters {existing!r} and {name!r}"
                    )
                self._token_cluster[token] = name
        # Expected cosine of two members u_i = a*anchor + b*noise_i is
        # a^2 / (a^2 + b^2) for unit anchor/noise in high dimension;
        # solve for the anchor weight that hits the target similarity.
        self._anchor_weight = math.sqrt(cluster_similarity)
        self._noise_weight = math.sqrt(1.0 - cluster_similarity)
        self._cache: dict[str, np.ndarray] = {}

    @property
    def dim(self) -> int:
        return self._dim

    def cluster_of(self, token: str) -> str | None:
        """Name of the planted cluster containing ``token``, if any."""
        return self._token_cluster.get(token)

    def covers(self, token: str) -> bool:
        return bool(token) and token not in self._oov

    def _unit(self, key: str) -> np.ndarray:
        rng = token_rng(key, salt=self._salt)
        return normalize(rng.standard_normal(self._dim).astype(np.float32))

    def vector(self, token: str) -> np.ndarray:
        if not self.covers(token):
            raise VocabularyError(f"out-of-vocabulary token: {token!r}")
        cached = self._cache.get(token)
        if cached is not None:
            return cached
        cluster = self._token_cluster.get(token)
        if cluster is None:
            vec = self._unit(f"token::{token}")
        else:
            anchor = self._unit(f"cluster::{cluster}")
            noise = self._unit(f"member::{cluster}::{token}")
            vec = normalize(
                self._anchor_weight * anchor + self._noise_weight * noise
            )
        self._cache[token] = vec
        return vec


class PinnedSimilarityModel:
    """An element-similarity lookup with explicitly pinned pair scores.

    Used to reproduce worked examples (the paper's Fig. 1) where exact
    edge weights are given. Identical tokens always score 1; unlisted
    pairs score ``default``.
    """

    def __init__(
        self,
        pairs: Mapping[tuple[str, str], float],
        *,
        default: float = 0.0,
    ) -> None:
        self._scores: dict[frozenset[str], float] = {}
        for (a, b), score in pairs.items():
            if not (0.0 <= score <= 1.0):
                raise InvalidParameterError(
                    f"similarity for ({a!r}, {b!r}) outside [0, 1]: {score}"
                )
            self._scores[frozenset((a, b))] = score
        self._default = default

    def __call__(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        return self._scores.get(frozenset((a, b)), self._default)
