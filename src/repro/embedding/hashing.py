"""Character-n-gram hashing embeddings — the FastText-style substitute.

FastText represents a token as the average of vectors of its character
n-grams, which is why typo variants (``Blaine`` / ``Blain``) land close in
embedding space. We reproduce exactly that mechanism with *deterministic*
n-gram vectors: each n-gram's vector is drawn from an RNG seeded by a
stable hash of the n-gram, so the provider needs no training data, no
files, and is identical across processes.

Semantic (as opposed to character-level) relatedness is layered on top by
:mod:`repro.embedding.synthetic`; this module supplies the subword
behaviour that makes the embedding space respond to string similarity the
way FastText does.
"""

from __future__ import annotations

import numpy as np

from repro.embedding.provider import normalize
from repro.errors import InvalidParameterError
from repro.utils.rng import token_rng


def char_ngrams(token: str, n_min: int = 3, n_max: int = 5) -> list[str]:
    """FastText-style character n-grams of a token, with boundary markers.

    The token is wrapped in ``<`` and ``>`` (as in FastText) and all
    n-grams for ``n_min <= n <= n_max`` are extracted; the full wrapped
    token is always included so distinct short tokens stay distinct.
    """
    wrapped = f"<{token}>"
    grams: list[str] = []
    for n in range(n_min, n_max + 1):
        if len(wrapped) < n:
            continue
        grams.extend(wrapped[i:i + n] for i in range(len(wrapped) - n + 1))
    grams.append(wrapped)
    return grams


class HashingEmbeddingProvider:
    """Deterministic subword-hashing embeddings.

    Parameters
    ----------
    dim:
        Vector dimensionality (paper uses 300-d FastText; tests use
        smaller dims for speed).
    n_min, n_max:
        Character n-gram range (FastText defaults: 3..6; we default to
        3..5 which behaves identically for the short tokens in set search
        workloads).
    salt:
        Distinguishes independent embedding spaces in tests.
    """

    def __init__(
        self,
        dim: int = 64,
        *,
        n_min: int = 3,
        n_max: int = 5,
        salt: str = "hashing-embedding",
    ) -> None:
        if dim < 1:
            raise InvalidParameterError("dim must be positive")
        if not (1 <= n_min <= n_max):
            raise InvalidParameterError("need 1 <= n_min <= n_max")
        self._dim = dim
        self._n_min = n_min
        self._n_max = n_max
        self._salt = salt
        self._gram_cache: dict[str, np.ndarray] = {}
        self._token_cache: dict[str, np.ndarray] = {}

    @property
    def dim(self) -> int:
        return self._dim

    def covers(self, token: str) -> bool:
        """Hashing embeddings cover every non-empty token."""
        return bool(token)

    def _gram_vector(self, gram: str) -> np.ndarray:
        cached = self._gram_cache.get(gram)
        if cached is None:
            rng = token_rng(gram, salt=self._salt)
            cached = rng.standard_normal(self._dim).astype(np.float32)
            self._gram_cache[gram] = cached
        return cached

    def vector(self, token: str) -> np.ndarray:
        """Mean of the token's n-gram vectors, unit-normalized."""
        cached = self._token_cache.get(token)
        if cached is not None:
            return cached
        if not token:
            raise InvalidParameterError("cannot embed the empty token")
        grams = char_ngrams(token, self._n_min, self._n_max)
        acc = np.zeros(self._dim, dtype=np.float32)
        for gram in grams:
            acc += self._gram_vector(gram)
        vec = normalize(acc / len(grams))
        self._token_cache[token] = vec
        return vec
