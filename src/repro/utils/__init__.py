"""Shared utilities: phase timing, memory accounting, seeded randomness."""

from repro.utils.memory import MemoryLedger, deep_sizeof
from repro.utils.rng import make_rng, stable_hash, token_rng
from repro.utils.timer import PhaseTimer

__all__ = [
    "MemoryLedger",
    "PhaseTimer",
    "deep_sizeof",
    "make_rng",
    "stable_hash",
    "token_rng",
]
