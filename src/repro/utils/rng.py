"""Seeded randomness helpers.

Everything stochastic in the library (dataset synthesis, partitioning,
benchmark sampling) is driven by a ``numpy.random.Generator`` derived from
an explicit seed, so every experiment in EXPERIMENTS.md is reproducible
bit-for-bit.
"""

from __future__ import annotations

import hashlib

import numpy as np


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``Generator`` for ``seed``.

    Accepts ``None`` (fresh entropy), an ``int`` seed, or an existing
    generator (returned unchanged) so that helpers can be composed without
    re-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def stable_hash(text: str, *, salt: str = "") -> int:
    """A process-independent 64-bit hash of ``text``.

    Python's builtin ``hash`` is randomized per process; the embedding
    substrate needs token hashes that are stable across runs so that
    hashing embeddings are deterministic.
    """
    digest = hashlib.blake2b(
        (salt + text).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


def token_rng(token: str, *, salt: str = "") -> np.random.Generator:
    """A generator seeded deterministically from a token string."""
    return np.random.default_rng(stable_hash(token, salt=salt))
