"""Deep memory accounting for search data structures.

The paper reports the memory footprint of Koios as the sum of the
footprints of its data structures (token stream, inverted index, buckets,
top-k lists, priority queues — §VIII-D). ``deep_sizeof`` walks Python
object graphs, and ``MemoryLedger`` aggregates named structure sizes the
same way the paper's Table III / Fig. 5d / Fig. 6d do.
"""

from __future__ import annotations

import sys
from typing import Any, Iterable

import numpy as np


def deep_sizeof(obj: Any, _seen: set[int] | None = None) -> int:
    """Recursively estimate the memory footprint of ``obj`` in bytes.

    Shared sub-objects are counted once. NumPy arrays report their buffer
    size (``nbytes``) plus object overhead, which dominates for the vector
    stores used by the index substrate.
    """
    seen = _seen if _seen is not None else set()
    oid = id(obj)
    if oid in seen:
        return 0
    seen.add(oid)

    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + sys.getsizeof(obj, 0)

    size = sys.getsizeof(obj, 0)
    if isinstance(obj, dict):
        size += sum(
            deep_sizeof(key, seen) + deep_sizeof(value, seen)
            for key, value in obj.items()
        )
    elif isinstance(obj, (list, tuple, set, frozenset)):
        size += sum(deep_sizeof(item, seen) for item in obj)
    elif hasattr(obj, "__dict__"):
        size += deep_sizeof(vars(obj), seen)
    elif hasattr(obj, "__slots__"):
        size += sum(
            deep_sizeof(getattr(obj, slot), seen)
            for slot in obj.__slots__
            if hasattr(obj, slot)
        )
    return size


class MemoryLedger:
    """Aggregates the peak deep size of named data structures.

    Each structure is measured at most when ``measure`` is called;
    the ledger keeps the maximum seen per name so that freeing refinement
    structures before post-processing (as Koios does) still reports the
    peak footprint, matching the paper's accounting.
    """

    def __init__(self) -> None:
        self._peaks: dict[str, int] = {}

    def measure(self, name: str, obj: Any) -> int:
        """Record the current deep size of ``obj`` under ``name``."""
        size = deep_sizeof(obj)
        if size > self._peaks.get(name, 0):
            self._peaks[name] = size
        return size

    def record(self, name: str, size_bytes: int) -> None:
        """Record an externally computed size."""
        if size_bytes > self._peaks.get(name, 0):
            self._peaks[name] = size_bytes

    def merge(self, other: "MemoryLedger") -> None:
        for name, size in other._peaks.items():
            self.record(name, size)

    @property
    def total_bytes(self) -> int:
        return sum(self._peaks.values())

    @property
    def total_mb(self) -> float:
        return self.total_bytes / (1024.0 * 1024.0)

    def breakdown(self) -> dict[str, int]:
        return dict(self._peaks)

    def names(self) -> Iterable[str]:
        return self._peaks.keys()
