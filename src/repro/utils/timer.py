"""Phase timers used to break a search down into refinement and
post-processing time, mirroring the per-phase reporting of the paper
(Fig. 5b/5c, 6b/6c, Table III)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class PhaseTimer:
    """Accumulates wall-clock seconds per named phase.

    >>> timer = PhaseTimer()
    >>> with timer.phase("refinement"):
    ...     pass
    >>> timer.seconds("refinement") >= 0.0
    True
    """

    totals: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a block of code and add it to the running total for ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed

    def seconds(self, name: str) -> float:
        """Total seconds recorded for ``name`` (0.0 if never timed)."""
        return self.totals.get(name, 0.0)

    @property
    def total(self) -> float:
        """Sum over all phases."""
        return sum(self.totals.values())

    def breakdown(self) -> dict[str, float]:
        """Fraction of total time per phase; empty if nothing was timed."""
        if not self.totals:
            return {}
        total = self.total
        if total == 0.0:
            # All phases were instantaneous; report uniform shares.
            share = 1.0 / len(self.totals)
            return {name: share for name in self.totals}
        return {name: spent / total for name, spent in self.totals.items()}

    def merge(self, other: "PhaseTimer") -> None:
        """Add another timer's totals into this one (used when merging
        per-partition timers)."""
        for name, spent in other.totals.items():
            self.totals[name] = self.totals.get(name, 0.0) + spent
