"""Binary index snapshots: cold-start by load instead of rebuild.

A snapshot persists a :class:`~repro.datasets.collection.SetCollection`
*together with its derived artifacts* so that ``repro serve`` starts by
deserializing buffers instead of re-tokenizing, re-embedding, and
re-indexing:

* the **token table** (the sorted vocabulary ``D``) and **set names**;
* **set memberships** as token-id arrays (one shared ``str`` object per
  vocabulary token instead of one per membership, which alone roughly
  halves collection-build time against JSON);
* the **inverted-index postings** (``token -> ascending set ids``),
  adopted verbatim by :meth:`~repro.index.inverted.InvertedIndex.from_postings`;
* optionally the **vector substrate**: the unit-normalized embedding
  matrix rows for the token table, adopted by
  :meth:`~repro.embedding.provider.VectorStore.from_state` — skipping
  the per-token embedding pass that dominates cold start.

Layout (all integers little-endian)::

    magic "RKOSNAP1" | u32 manifest_len | manifest JSON
    repeated sections: u32 name_len | name | u64 payload_len | payload

The manifest carries the format version, a fingerprint of the substrate
configuration (so a server never silently pairs a snapshot with the
wrong similarity space), a SHA-256 checksum over every section payload,
and shape counts for :func:`inspect_snapshot`. Writes go through a
temporary file + ``os.replace`` so a crashed save never leaves a torn
snapshot behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.datasets.collection import SetCollection
from repro.errors import SnapshotError
from repro.index.inverted import InvertedIndex

MAGIC = b"RKOSNAP1"
FORMAT_VERSION = 1

#: Conventional snapshot file extensions (the CLI loader sniffs these).
SNAPSHOT_SUFFIXES = (".snap", ".snapshot")

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


@dataclass(frozen=True)
class SnapshotManifest:
    """The self-describing header of one snapshot file."""

    format_version: int
    checksum: str
    fingerprint: str
    num_sets: int
    num_tokens: int
    total_memberships: int
    total_postings: int
    substrate: dict[str, Any] | None
    #: WAL-compaction handshake (see :mod:`repro.store.wal`): the log
    #: generation this snapshot folded records from, and how many of
    #: that generation's leading records it contains. None for
    #: snapshots written outside a compaction.
    wal_generation: int | None = None
    wal_applied: int = 0

    def to_obj(self) -> dict[str, Any]:
        obj = {
            "format_version": self.format_version,
            "checksum": self.checksum,
            "fingerprint": self.fingerprint,
            "num_sets": self.num_sets,
            "num_tokens": self.num_tokens,
            "total_memberships": self.total_memberships,
            "total_postings": self.total_postings,
            "substrate": self.substrate,
        }
        if self.wal_generation is not None:
            obj["wal_generation"] = self.wal_generation
            obj["wal_applied"] = self.wal_applied
        return obj

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "SnapshotManifest":
        try:
            wal_generation = obj.get("wal_generation")
            return cls(
                format_version=int(obj["format_version"]),
                checksum=str(obj["checksum"]),
                fingerprint=str(obj["fingerprint"]),
                num_sets=int(obj["num_sets"]),
                num_tokens=int(obj["num_tokens"]),
                total_memberships=int(obj["total_memberships"]),
                total_postings=int(obj["total_postings"]),
                substrate=obj.get("substrate"),
                wal_generation=(
                    None if wal_generation is None else int(wal_generation)
                ),
                wal_applied=int(obj.get("wal_applied", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"malformed snapshot manifest: {exc}") from exc


def substrate_fingerprint(substrate: dict[str, Any] | None) -> str:
    """Stable hash of the substrate configuration + format version."""
    canonical = json.dumps(
        {"format": FORMAT_VERSION, "substrate": substrate}, sort_keys=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _encode_strings(values: Sequence[str]) -> bytes:
    out = bytearray(_U32.pack(len(values)))
    for value in values:
        raw = value.encode("utf-8")
        out += _U32.pack(len(raw))
        out += raw
    return bytes(out)


def _decode_strings(payload: bytes) -> list[str]:
    (count,) = _U32.unpack_from(payload, 0)
    offset = 4
    values: list[str] = []
    for _ in range(count):
        (length,) = _U32.unpack_from(payload, offset)
        offset += 4
        values.append(payload[offset:offset + length].decode("utf-8"))
        offset += length
    return values


def save_snapshot(
    path: str | Path,
    collection: SetCollection,
    *,
    store=None,
    substrate: dict[str, Any] | None = None,
    wal_generation: int | None = None,
    wal_applied: int = 0,
) -> SnapshotManifest:
    """Serialize ``collection`` (+ optional vector ``store``) to ``path``.

    Set ids are densified to 0..len-1 in current id order, so snapshotting
    a mutated :class:`~repro.store.mutable.MutableSetCollection` folds its
    tombstones away — this is exactly what WAL compaction relies on.
    ``wal_generation``/``wal_applied`` stamp the compaction handshake
    into the manifest (see :func:`repro.store.wal.pending_records`).
    Returns the written manifest.
    """
    tokens = sorted(collection.vocabulary)
    token_to_id = {token: i for i, token in enumerate(tokens)}
    live_ids = list(collection.ids())
    names = [collection.name_of(set_id) for set_id in live_ids]

    set_lengths = np.empty(len(live_ids), dtype="<u4")
    member_ids: list[int] = []
    postings: list[list[int]] = [[] for _ in tokens]
    for dense_id, set_id in enumerate(live_ids):
        members = sorted(token_to_id[t] for t in collection[set_id])
        set_lengths[dense_id] = len(members)
        member_ids.extend(members)
        for token_id in members:
            postings[token_id].append(dense_id)
    posting_lengths = np.asarray(
        [len(p) for p in postings], dtype="<u4"
    )
    posting_members = np.asarray(
        [set_id for posting in postings for set_id in posting], dtype="<u4"
    )

    sections: list[tuple[str, bytes]] = [
        ("tokens", _encode_strings(tokens)),
        ("names", _encode_strings(names)),
        ("set_lengths", set_lengths.tobytes()),
        ("set_members", np.asarray(member_ids, dtype="<u4").tobytes()),
        ("posting_lengths", posting_lengths.tobytes()),
        ("posting_members", posting_members.tobytes()),
    ]
    if store is not None:
        sections.append(("vectors", _encode_vectors(store, tokens)))

    digest = hashlib.sha256()
    for _, payload in sections:
        digest.update(payload)
    manifest = SnapshotManifest(
        format_version=FORMAT_VERSION,
        checksum=digest.hexdigest(),
        fingerprint=substrate_fingerprint(substrate),
        num_sets=len(live_ids),
        num_tokens=len(tokens),
        total_memberships=len(member_ids),
        total_postings=int(posting_lengths.sum()) if len(tokens) else 0,
        substrate=substrate,
        wal_generation=wal_generation,
        wal_applied=wal_applied,
    )

    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    manifest_raw = json.dumps(manifest.to_obj(), sort_keys=True).encode("utf-8")
    with open(tmp, "wb") as handle:
        handle.write(MAGIC)
        handle.write(_U32.pack(len(manifest_raw)))
        handle.write(manifest_raw)
        for name, payload in sections:
            raw_name = name.encode("ascii")
            handle.write(_U32.pack(len(raw_name)))
            handle.write(raw_name)
            handle.write(_U64.pack(len(payload)))
            handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    # The rename is only durable once the *directory* entry is — a
    # power loss after replace but before the dirent reaches disk
    # could resurrect the old snapshot beside an already-reset WAL.
    _fsync_directory(path.parent)
    return manifest


def _fsync_directory(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _encode_vectors(store, tokens: list[str]) -> bytes:
    """Vector section: coverage mask over the token table + float32 rows
    (token-table order), so loading is two ``frombuffer`` calls."""
    mask = np.zeros(len(tokens), dtype="<u1")
    rows = []
    for i, token in enumerate(tokens):
        if token in store:
            mask[i] = 1
            rows.append(np.asarray(store.vector(token), dtype="<f4"))
    matrix = (
        np.stack(rows) if rows
        else np.zeros((0, store.dim), dtype="<f4")
    )
    header = json.dumps(
        {"rows": int(matrix.shape[0]), "dim": int(store.dim)},
        sort_keys=True,
    ).encode("utf-8")
    return (
        _U32.pack(len(header)) + header + mask.tobytes() + matrix.tobytes()
    )


def _read_exact(handle, count: int, what: str) -> bytes:
    raw = handle.read(count)
    if len(raw) != count:
        raise SnapshotError(f"truncated snapshot: short read in {what}")
    return raw


def read_manifest(handle) -> SnapshotManifest:
    magic = handle.read(len(MAGIC))
    if magic != MAGIC:
        raise SnapshotError(
            "not a repro snapshot (bad magic; expected a file written by "
            "'repro index build')"
        )
    (manifest_len,) = _U32.unpack(_read_exact(handle, 4, "manifest length"))
    try:
        obj = json.loads(_read_exact(handle, manifest_len, "manifest"))
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"unreadable snapshot manifest: {exc}") from exc
    manifest = SnapshotManifest.from_obj(obj)
    if manifest.format_version != FORMAT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot format version "
            f"{manifest.format_version} (this build reads {FORMAT_VERSION})"
        )
    return manifest


def inspect_snapshot(path: str | Path) -> SnapshotManifest:
    """Read only the manifest — O(header), no payload deserialization."""
    with open(path, "rb") as handle:
        return read_manifest(handle)


@dataclass
class LoadedSnapshot:
    """Everything a snapshot restores, ready to serve.

    ``token_index``/``sim`` are None when the snapshot carries no
    substrate description (build the substrate yourself, as for a plain
    JSON collection). ``tokens``/``posting_lengths``/``posting_members``
    are the raw id-table-aligned arrays of the file: the token table is
    the sorted vocabulary, so the postings sections are already the
    CSR layout the columnar engine indexes by, and
    :meth:`inverted_factory` adopts them without a Python rebuild.
    """

    manifest: SnapshotManifest
    collection: SetCollection
    postings: dict[str, list[int]]
    token_index: Any | None
    sim: Any | None
    tokens: list[str] | None = None
    posting_lengths: Any | None = None
    posting_members: Any | None = None

    def mutable(self):
        """A :class:`~repro.store.mutable.MutableSetCollection` overlay
        adopting the loaded postings (no re-index)."""
        from repro.store.mutable import MutableSetCollection

        return MutableSetCollection(self.collection, postings=self.postings)

    def inverted_factory(self):
        """Per-partition index factory reusing the loaded postings."""
        total = len(self.collection)

        def build(set_ids: Sequence[int]) -> InvertedIndex:
            if len(set_ids) == total:
                index = InvertedIndex.from_postings(self.postings)
                if self.tokens is not None:
                    # The snapshot's token section *is* the sorted
                    # vocabulary id table, so the postings arrays are
                    # the columnar CSR view verbatim.
                    index.adopt_csr(
                        self.tokens,
                        self.posting_lengths,
                        self.posting_members,
                    )
                return index
            members = frozenset(set_ids)
            return InvertedIndex.from_postings({
                token: kept
                for token, ids in self.postings.items()
                if (kept := [i for i in ids if i in members])
            })

        return build


def load_snapshot(
    path: str | Path, *, verify: bool = True
) -> LoadedSnapshot:
    """Deserialize a snapshot written by :func:`save_snapshot`.

    ``verify`` re-hashes every section payload against the manifest
    checksum (cheap relative to deserialization; disable only for
    trusted local files on hot restart paths).
    """
    with open(path, "rb") as handle:
        manifest = read_manifest(handle)
        sections: dict[str, bytes] = {}
        digest = hashlib.sha256() if verify else None
        while True:
            head = handle.read(4)
            if not head:
                break
            if len(head) != 4:
                raise SnapshotError(
                    "truncated snapshot: short read in section header"
                )
            (name_len,) = _U32.unpack(head)
            name = _read_exact(handle, name_len, "section name").decode("ascii")
            (payload_len,) = _U64.unpack(
                _read_exact(handle, 8, "section length")
            )
            payload = _read_exact(handle, payload_len, f"section {name}")
            sections[name] = payload
            if digest is not None:
                digest.update(payload)
    if digest is not None and digest.hexdigest() != manifest.checksum:
        raise SnapshotError(
            "snapshot checksum mismatch: file is corrupt or was modified"
        )
    required = (
        "tokens", "names", "set_lengths", "set_members",
        "posting_lengths", "posting_members",
    )
    missing = [name for name in required if name not in sections]
    if missing:
        raise SnapshotError(f"snapshot missing sections: {missing}")

    tokens = _decode_strings(sections["tokens"])
    names = _decode_strings(sections["names"])
    set_lengths = np.frombuffer(sections["set_lengths"], dtype="<u4")
    set_members = np.frombuffer(sections["set_members"], dtype="<u4").tolist()
    posting_lengths = np.frombuffer(sections["posting_lengths"], dtype="<u4")
    posting_members_arr = np.frombuffer(sections["posting_members"], dtype="<u4")
    posting_members = posting_members_arr.tolist()
    if len(names) != len(set_lengths):
        raise SnapshotError("snapshot name/set count mismatch")
    if len(posting_lengths) != len(tokens):
        raise SnapshotError("snapshot posting/token count mismatch")

    sets: list[frozenset[str]] = []
    offset = 0
    for length in set_lengths:
        end = offset + int(length)
        sets.append(frozenset(tokens[i] for i in set_members[offset:end]))
        offset = end
    collection = SetCollection.from_parts(sets, names, set(tokens))

    postings: dict[str, list[int]] = {}
    offset = 0
    for token, length in zip(tokens, posting_lengths):
        end = offset + int(length)
        if length:
            postings[token] = posting_members[offset:end]
        offset = end

    token_index = sim = None
    if manifest.substrate is not None:
        token_index, sim = restore_substrate(
            manifest.substrate, tokens, sections.get("vectors")
        )
    return LoadedSnapshot(
        manifest=manifest,
        collection=collection,
        postings=postings,
        token_index=token_index,
        sim=sim,
        tokens=tokens,
        posting_lengths=posting_lengths,
        posting_members=posting_members_arr,
    )


def _hashing_provider(substrate: dict[str, Any]):
    """The descriptor's embedding provider — one construction shared by
    every path that interprets a substrate description."""
    from repro.embedding.hashing import HashingEmbeddingProvider

    return HashingEmbeddingProvider(
        dim=int(substrate["dim"]),
        n_min=int(substrate.get("n_min", 3)),
        n_max=int(substrate.get("n_max", 5)),
        salt=str(substrate.get("salt", "hashing-embedding")),
    )


def build_substrate(substrate: dict[str, Any], vocabulary):
    """Derive ``(token_index, sim)`` from a descriptor + vocabulary.

    The from-scratch counterpart of :func:`restore_substrate` (no
    persisted artifacts): both substrate kinds are deterministic
    functions of (descriptor, vocabulary), so replicas built from the
    same inputs — in any process — stream identically. This is THE
    constructor behind the CLI's ``--jaccard``/``--dim`` flags and
    every cluster worker bootstrap; keep it the only copy, because the
    cluster's exactness contract dies quietly if two copies drift.
    """
    kind = substrate.get("kind")
    if kind == "hashing-cosine":
        from repro.embedding.provider import VectorStore
        from repro.index.vector_index import ExactCosineIndex
        from repro.sim.cosine import CosineSimilarity

        provider = _hashing_provider(substrate)
        store = VectorStore(provider, vocabulary)
        index = ExactCosineIndex(
            store, provider, batch_size=int(substrate.get("batch_size", 100))
        )
        return index, CosineSimilarity(provider)
    if kind == "qgram-jaccard":
        from repro.index.lsh import PrefixJaccardIndex
        from repro.sim.jaccard import QGramJaccardSimilarity

        sim = QGramJaccardSimilarity(q=int(substrate.get("q", 3)))
        index = PrefixJaccardIndex(
            vocabulary, alpha=float(substrate["alpha"]), similarity=sim
        )
        return index, sim
    raise SnapshotError(f"unknown substrate kind: {kind!r}")


def restore_substrate(
    substrate: dict[str, Any],
    tokens: list[str],
    vectors: bytes | None,
):
    """Rebuild the ``(token_index, sim)`` pair a snapshot describes.

    ``hashing-cosine`` adopts the persisted matrix; ``qgram-jaccard``
    re-derives the prefix index from the vocabulary (its build is cheap
    q-gram bookkeeping, not an embedding pass, so it is not persisted —
    it goes through :func:`build_substrate` like every other
    from-scratch derivation).
    """
    kind = substrate.get("kind")
    if kind == "hashing-cosine":
        from repro.embedding.provider import VectorStore
        from repro.index.vector_index import ExactCosineIndex
        from repro.sim.cosine import CosineSimilarity

        provider = _hashing_provider(substrate)
        if vectors is None:
            raise SnapshotError(
                "snapshot declares a hashing-cosine substrate but has no "
                "vectors section"
            )
        (header_len,) = _U32.unpack_from(vectors, 0)
        header = json.loads(vectors[4:4 + header_len])
        rows, dim = int(header["rows"]), int(header["dim"])
        if dim != provider.dim:
            raise SnapshotError(
                f"snapshot matrix dim {dim} != substrate dim {provider.dim}"
            )
        mask_off = 4 + header_len
        mask = np.frombuffer(
            vectors, dtype="<u1", count=len(tokens), offset=mask_off
        )
        matrix = np.frombuffer(
            vectors, dtype="<f4", offset=mask_off + len(tokens)
        ).reshape(rows, dim)
        covered = [t for t, m in zip(tokens, mask) if m]
        if len(covered) != rows:
            raise SnapshotError("snapshot vector mask/row count mismatch")
        store = VectorStore.from_state(provider, covered, matrix)
        index = ExactCosineIndex(
            store, provider, batch_size=int(substrate.get("batch_size", 100))
        )
        return index, CosineSimilarity(provider)
    return build_substrate(substrate, tokens)
