"""Binary index snapshots: cold-start by load instead of rebuild.

A snapshot persists a :class:`~repro.datasets.collection.SetCollection`
*together with its derived artifacts* so that ``repro serve`` starts by
deserializing buffers instead of re-tokenizing, re-embedding, and
re-indexing:

* the **token table** (the sorted vocabulary ``D``) and **set names**;
* **set memberships** as token-id arrays (one shared ``str`` object per
  vocabulary token instead of one per membership, which alone roughly
  halves collection-build time against JSON);
* the **inverted-index postings** (``token -> ascending set ids``) in
  flat CSR arrays, adopted verbatim by
  :meth:`~repro.index.inverted.InvertedIndex.from_csr`;
* optionally the **vector substrate**: the unit-normalized embedding
  matrix rows for the token table, adopted by
  :meth:`~repro.embedding.provider.VectorStore.from_state` — skipping
  the per-token embedding pass that dominates cold start.

Layout (all integers little-endian)::

    magic "RKOSNAP1" | u32 manifest_len | manifest JSON
    repeated sections: u32 name_len | name | u64 payload_len | payload

The manifest carries the format version, a fingerprint of the substrate
configuration (so a server never silently pairs a snapshot with the
wrong similarity space), a SHA-256 checksum over every section payload,
and shape counts for :func:`inspect_snapshot`. Writes go through a
temporary file + ``os.replace`` so a crashed save never leaves a torn
snapshot behind.

**Loading is zero-copy.** :func:`load_snapshot` walks the section
headers recording offsets, then serves every array section as a
read-only ``np.memmap`` view over the file — the membership, posting,
and embedding-matrix payloads never land on the Python heap, N
processes serving the same snapshot share one page-cache copy, and the
Python-object materializations (per-set frozensets via
:class:`SnapshotSetCollection`, the postings dict) are lazy properties
built only where object semantics are actually needed. See
``docs/store.md`` for the lifetime rules.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path
from typing import Any, Iterator, Sequence

import numpy as np

from repro.datasets.collection import SetCollection
from repro.errors import SnapshotError
from repro.index.inverted import InvertedIndex

MAGIC = b"RKOSNAP1"
FORMAT_VERSION = 2

#: Chunk size for streamed checksum verification / section reads.
_CHUNK_BYTES = 4 << 20

#: Conventional snapshot file extensions (the CLI loader sniffs these).
SNAPSHOT_SUFFIXES = (".snap", ".snapshot")

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


@dataclass(frozen=True)
class SnapshotManifest:
    """The self-describing header of one snapshot file."""

    format_version: int
    checksum: str
    fingerprint: str
    num_sets: int
    num_tokens: int
    total_memberships: int
    total_postings: int
    substrate: dict[str, Any] | None
    #: WAL-compaction handshake (see :mod:`repro.store.wal`): the log
    #: generation this snapshot folded records from, and how many of
    #: that generation's leading records it contains. None for
    #: snapshots written outside a compaction.
    wal_generation: int | None = None
    wal_applied: int = 0

    def to_obj(self) -> dict[str, Any]:
        obj = {
            "format_version": self.format_version,
            "checksum": self.checksum,
            "fingerprint": self.fingerprint,
            "num_sets": self.num_sets,
            "num_tokens": self.num_tokens,
            "total_memberships": self.total_memberships,
            "total_postings": self.total_postings,
            "substrate": self.substrate,
        }
        if self.wal_generation is not None:
            obj["wal_generation"] = self.wal_generation
            obj["wal_applied"] = self.wal_applied
        return obj

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "SnapshotManifest":
        try:
            wal_generation = obj.get("wal_generation")
            return cls(
                format_version=int(obj["format_version"]),
                checksum=str(obj["checksum"]),
                fingerprint=str(obj["fingerprint"]),
                num_sets=int(obj["num_sets"]),
                num_tokens=int(obj["num_tokens"]),
                total_memberships=int(obj["total_memberships"]),
                total_postings=int(obj["total_postings"]),
                substrate=obj.get("substrate"),
                wal_generation=(
                    None if wal_generation is None else int(wal_generation)
                ),
                wal_applied=int(obj.get("wal_applied", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"malformed snapshot manifest: {exc}") from exc


def substrate_fingerprint(substrate: dict[str, Any] | None) -> str:
    """Stable hash of the substrate configuration + format version."""
    canonical = json.dumps(
        {"format": FORMAT_VERSION, "substrate": substrate}, sort_keys=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _encode_strings(values: Sequence[str]) -> bytes:
    """Columnar string section: ``[count][u32 lengths][utf8 blob]``.

    The length table lives up front (not interleaved with the bytes) so
    a loader can index every entry with one vectorized cumsum and decode
    individual strings on demand — see :class:`LazyStrings`.
    """
    encoded = [value.encode("utf-8") for value in values]
    lengths = np.asarray([len(raw) for raw in encoded], dtype="<u4")
    return _U32.pack(len(encoded)) + lengths.tobytes() + b"".join(encoded)


class LazyStrings(Sequence[str]):
    """A string table decoded per entry, on demand.

    Wraps a columnar string section (``bytes`` or a ``uint8`` array — a
    read-only memmap slice on the zero-copy load path). Construction
    costs one cumsum over the length table; the blob itself is never
    copied wholesale, so a million-name snapshot holds an offsets array
    instead of a million heap strings. Entries decode on access, which
    the serving path only does for the handful of names a top-k answer
    actually returns.
    """

    __slots__ = ("_blob", "_offsets")

    def __init__(self, payload) -> None:
        arr = (
            payload
            if isinstance(payload, np.ndarray)
            else np.frombuffer(payload, dtype="<u1")
        )
        if arr.size < 4:
            raise SnapshotError("string section too short")
        (count,) = _U32.unpack(bytes(arr[:4]))
        table_end = 4 + 4 * count
        if table_end > arr.size:
            raise SnapshotError("string section length table out of bounds")
        lengths = arr[4:table_end].view("<u4")
        offsets = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        if table_end + int(offsets[-1]) != arr.size:
            raise SnapshotError("string section size mismatch")
        self._blob = arr[table_end:]
        self._offsets = offsets

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, index: int) -> str:
        offsets = self._offsets
        count = len(offsets) - 1
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError(index)
        start, end = int(offsets[index]), int(offsets[index + 1])
        return bytes(self._blob[start:end]).decode("utf-8")

    def __iter__(self) -> Iterator[str]:
        # Full scans (eager materialization, name->id map builds) decode
        # from one transient bytes copy of the blob instead of a million
        # tiny memmap reads.
        blob = self._blob.tobytes()
        offsets = self._offsets.tolist()
        for start, end in zip(offsets, offsets[1:]):
            yield blob[start:end].decode("utf-8")


def _decode_strings(payload) -> list[str]:
    return list(LazyStrings(payload))


def save_snapshot(
    path: str | Path,
    collection: SetCollection,
    *,
    store=None,
    substrate: dict[str, Any] | None = None,
    wal_generation: int | None = None,
    wal_applied: int = 0,
) -> SnapshotManifest:
    """Serialize ``collection`` (+ optional vector ``store``) to ``path``.

    Set ids are densified to 0..len-1 in current id order, so snapshotting
    a mutated :class:`~repro.store.mutable.MutableSetCollection` folds its
    tombstones away — this is exactly what WAL compaction relies on.
    ``wal_generation``/``wal_applied`` stamp the compaction handshake
    into the manifest (see :func:`repro.store.wal.pending_records`).
    Returns the written manifest.
    """
    tokens = sorted(collection.vocabulary)
    token_to_id = {token: i for i, token in enumerate(tokens)}
    live_ids = list(collection.ids())
    names = [collection.name_of(set_id) for set_id in live_ids]

    set_lengths = np.empty(len(live_ids), dtype="<u4")
    member_ids: list[int] = []
    postings: list[list[int]] = [[] for _ in tokens]
    for dense_id, set_id in enumerate(live_ids):
        members = sorted(token_to_id[t] for t in collection[set_id])
        set_lengths[dense_id] = len(members)
        member_ids.extend(members)
        for token_id in members:
            postings[token_id].append(dense_id)
    posting_lengths = np.asarray(
        [len(p) for p in postings], dtype="<u4"
    )
    posting_members = np.asarray(
        [set_id for posting in postings for set_id in posting], dtype="<u4"
    )

    sections: list[tuple[str, bytes]] = [
        ("tokens", _encode_strings(tokens)),
        ("names", _encode_strings(names)),
        ("set_lengths", set_lengths.tobytes()),
        ("set_members", np.asarray(member_ids, dtype="<u4").tobytes()),
        ("posting_lengths", posting_lengths.tobytes()),
        ("posting_members", posting_members.tobytes()),
    ]
    if store is not None:
        sections.append(("vectors", _encode_vectors(store, tokens)))

    digest = hashlib.sha256()
    for _, payload in sections:
        digest.update(payload)
    manifest = SnapshotManifest(
        format_version=FORMAT_VERSION,
        checksum=digest.hexdigest(),
        fingerprint=substrate_fingerprint(substrate),
        num_sets=len(live_ids),
        num_tokens=len(tokens),
        total_memberships=len(member_ids),
        total_postings=int(posting_lengths.sum()) if len(tokens) else 0,
        substrate=substrate,
        wal_generation=wal_generation,
        wal_applied=wal_applied,
    )

    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    manifest_raw = json.dumps(manifest.to_obj(), sort_keys=True).encode("utf-8")
    with open(tmp, "wb") as handle:
        handle.write(MAGIC)
        handle.write(_U32.pack(len(manifest_raw)))
        handle.write(manifest_raw)
        for name, payload in sections:
            raw_name = name.encode("ascii")
            handle.write(_U32.pack(len(raw_name)))
            handle.write(raw_name)
            handle.write(_U64.pack(len(payload)))
            handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    # The rename is only durable once the *directory* entry is — a
    # power loss after replace but before the dirent reaches disk
    # could resurrect the old snapshot beside an already-reset WAL.
    _fsync_directory(path.parent)
    return manifest


def _fsync_directory(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _encode_vectors(store, tokens: list[str]) -> bytes:
    """Vector section: coverage mask over the token table + float32 rows
    (token-table order), so loading is two ``frombuffer`` calls."""
    mask = np.zeros(len(tokens), dtype="<u1")
    rows = []
    for i, token in enumerate(tokens):
        if token in store:
            mask[i] = 1
            rows.append(np.asarray(store.vector(token), dtype="<f4"))
    matrix = (
        np.stack(rows) if rows
        else np.zeros((0, store.dim), dtype="<f4")
    )
    header = json.dumps(
        {"rows": int(matrix.shape[0]), "dim": int(store.dim)},
        sort_keys=True,
    ).encode("utf-8")
    return (
        _U32.pack(len(header)) + header + mask.tobytes() + matrix.tobytes()
    )


def _read_exact(handle, count: int, what: str) -> bytes:
    raw = handle.read(count)
    if len(raw) != count:
        raise SnapshotError(f"truncated snapshot: short read in {what}")
    return raw


def read_manifest(handle) -> SnapshotManifest:
    magic = handle.read(len(MAGIC))
    if magic != MAGIC:
        raise SnapshotError(
            "not a repro snapshot (bad magic; expected a file written by "
            "'repro index build')"
        )
    (manifest_len,) = _U32.unpack(_read_exact(handle, 4, "manifest length"))
    try:
        obj = json.loads(_read_exact(handle, manifest_len, "manifest"))
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"unreadable snapshot manifest: {exc}") from exc
    manifest = SnapshotManifest.from_obj(obj)
    if manifest.format_version != FORMAT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot format version "
            f"{manifest.format_version} (this build reads {FORMAT_VERSION})"
        )
    return manifest


def inspect_snapshot(path: str | Path) -> SnapshotManifest:
    """Read only the manifest — O(header), no payload deserialization."""
    with open(path, "rb") as handle:
        return read_manifest(handle)


class SnapshotSetCollection(SetCollection):
    """A :class:`SetCollection` view over snapshot CSR membership arrays.

    Per-set ``frozenset``s are built lazily on first access and cached —
    a loaded 1M-set snapshot holds two mapped arrays and a name list, not
    a million Python sets. The backing arrays may be ``np.memmap`` views,
    so every process serving the same snapshot shares one page-cache copy
    of the membership data.
    """

    def __init__(
        self,
        tokens: list[str],
        names: Sequence[str],
        set_lengths,
        set_members,
    ) -> None:
        self._tokens = tokens
        # May be a LazyStrings view — kept as-is so a million names stay
        # in the map until individually read.
        self._names = names
        # The token section is the sorted vocabulary; storing it as a
        # frozenset makes the ``vocabulary`` property's
        # ``frozenset(self._vocabulary)`` a same-object no-op.
        self._vocabulary: frozenset[str] = frozenset(tokens)
        self._set_lengths = set_lengths
        self._set_members = set_members
        self._set_offsets = np.zeros(len(names) + 1, dtype=np.int64)
        np.cumsum(set_lengths, out=self._set_offsets[1:])
        # Materialization cache; inherited methods that only need
        # len(self._sets) (ids, partition) work on the placeholders.
        self._sets: list[frozenset[str] | None] = [None] * len(names)

    def __getitem__(self, set_id: int) -> frozenset[str]:
        members = self._sets[set_id]
        if members is None:
            start = self._set_offsets[set_id]
            end = self._set_offsets[set_id + 1]
            tokens = self._tokens
            members = frozenset(
                tokens[tid]
                for tid in self._set_members[start:end].tolist()
            )
            self._sets[set_id] = members
        return members

    def __iter__(self):
        return (self[set_id] for set_id in range(len(self._sets)))

    def cardinality(self, set_id: int) -> int:
        return int(self._set_lengths[set_id])

    def stats(self):
        from repro.datasets.collection import CollectionStats

        num = len(self._sets)
        return CollectionStats(
            num_sets=num,
            max_size=int(self._set_lengths.max()) if num else 0,
            avg_size=float(self._set_lengths.mean()) if num else 0.0,
            num_unique_elements=len(self._vocabulary),
        )

    def subset(self, set_ids: Sequence[int]) -> SetCollection:
        return SetCollection(
            [self[i] for i in set_ids],
            names=[self._names[i] for i in set_ids],
        )


@dataclass
class LoadedSnapshot:
    """Everything a snapshot restores, ready to serve.

    ``token_index``/``sim`` are None when the snapshot carries no
    substrate description (build the substrate yourself, as for a plain
    JSON collection). ``tokens``/``set_lengths``/``set_members``/
    ``posting_lengths``/``posting_members`` are the raw id-table-aligned
    arrays of the file — read-only ``np.memmap`` views when loaded with
    ``mmap=True`` (the default), so they cost page cache, not heap, and
    every process mapping the same file shares one physical copy. The
    token table is the sorted vocabulary, so the postings sections are
    already the CSR layout the columnar engine indexes by, and
    :meth:`inverted_factory` adopts them without a Python rebuild.

    The Python-object materializations — per-set ``frozenset``s (via
    :attr:`collection`) and the ``postings`` dict-of-lists — are lazy
    cached properties, built only on paths that truly need objects
    (mutation overlay writes, JSON export, the reference engine). The
    maps outlive the file handle ``load_snapshot`` opened: dropping the
    :class:`LoadedSnapshot` (and every array view derived from it)
    releases the mapping.
    """

    manifest: SnapshotManifest
    token_index: Any | None
    sim: Any | None
    tokens: list[str]
    names: Sequence[str]
    set_lengths: Any
    set_members: Any
    posting_lengths: Any
    posting_members: Any

    @cached_property
    def collection(self) -> SnapshotSetCollection:
        """Lazy collection view over the mapped membership arrays."""
        return SnapshotSetCollection(
            self.tokens, self.names, self.set_lengths, self.set_members
        )

    @cached_property
    def postings(self) -> dict[str, list[int]]:
        """``token -> ascending set ids`` as Python lists.

        Materialized on first access (JSON export, eager overlays,
        tests); the serving path never touches it — engines adopt the
        CSR arrays directly.
        """
        offsets = self.posting_offsets
        members = self.posting_members
        return {
            token: members[offsets[i]:offsets[i + 1]].tolist()
            for i, token in enumerate(self.tokens)
            if offsets[i + 1] > offsets[i]
        }

    @cached_property
    def posting_offsets(self) -> np.ndarray:
        """int64 CSR offsets over ``posting_members`` (from the
        per-token lengths; tiny relative to the members array)."""
        offsets = np.zeros(len(self.tokens) + 1, dtype=np.int64)
        np.cumsum(self.posting_lengths, out=offsets[1:])
        return offsets

    @cached_property
    def csr(self):
        """The full-collection int64 CSR posting view (one conversion,
        shared by every engine shard built from this snapshot)."""
        from repro.index.interning import CSRPostings

        return CSRPostings(
            offsets=self.posting_offsets,
            sets=np.ascontiguousarray(self.posting_members, dtype=np.int64),
        )

    def mutable(self):
        """A :class:`~repro.store.mutable.MutableSetCollection` overlay
        adopting the mapped CSR arrays — per-set and per-token Python
        objects materialize copy-on-write, so R×P cluster workers keep
        sharing the page-cache copy until they actually mutate."""
        from repro.store.mutable import MutableSetCollection

        return MutableSetCollection.from_snapshot(self)

    def inverted_factory(self):
        """Per-partition index factory reusing the loaded CSR arrays.

        The full-collection branch adopts the arrays verbatim; the
        partition branch filters them with one vectorized mask pass
        (:func:`~repro.index.interning.csr_restrict`) instead of a
        Python scan over every posting list.
        """
        from repro.index.interning import csr_restrict

        total = len(self.names)

        def build(set_ids: Sequence[int]) -> InvertedIndex:
            if len(set_ids) == total:
                return InvertedIndex.from_csr(self.tokens, self.csr)
            return InvertedIndex.from_csr(
                self.tokens, csr_restrict(self.csr, set_ids, total)
            )

        return build


def _walk_sections(
    handle,
    file_size: int,
    *,
    digest,
    keep: frozenset[str],
) -> tuple[dict[str, tuple[int, int]], dict[str, bytes]]:
    """Walk the section headers after the manifest.

    Returns ``{name: (offset, length)}`` spans plus the payload bytes of
    the ``keep`` sections. Payloads outside ``keep`` are streamed through
    ``digest`` in bounded chunks when verifying, or skipped with a seek
    (bounds-checked against ``file_size``, since seeking past EOF does
    not fail) when not.
    """
    spans: dict[str, tuple[int, int]] = {}
    payloads: dict[str, bytes] = {}
    while True:
        head = handle.read(4)
        if not head:
            break
        if len(head) != 4:
            raise SnapshotError(
                "truncated snapshot: short read in section header"
            )
        (name_len,) = _U32.unpack(head)
        name = _read_exact(handle, name_len, "section name").decode("ascii")
        (payload_len,) = _U64.unpack(
            _read_exact(handle, 8, "section length")
        )
        offset = handle.tell()
        if offset + payload_len > file_size:
            raise SnapshotError(
                f"truncated snapshot: short read in section {name}"
            )
        spans[name] = (offset, payload_len)
        wanted = name in keep
        if digest is None and not wanted:
            handle.seek(offset + payload_len)
            continue
        chunks = bytearray() if wanted else None
        remaining = payload_len
        while remaining:
            chunk = handle.read(min(_CHUNK_BYTES, remaining))
            if not chunk:
                raise SnapshotError(
                    f"truncated snapshot: short read in section {name}"
                )
            remaining -= len(chunk)
            if digest is not None:
                digest.update(chunk)
            if chunks is not None:
                chunks += chunk
        if chunks is not None:
            payloads[name] = bytes(chunks)
    return spans, payloads


def verify_snapshot_checksum(path: str | Path) -> SnapshotManifest:
    """Stream-hash every section payload against the manifest checksum.

    O(file size) I/O, O(chunk) memory — no deserialization. The cluster
    coordinator runs this once per snapshot so that workers (and every
    replica) can bootstrap with ``verify=False`` instead of N processes
    re-hashing the same file. Returns the verified manifest; raises
    :class:`~repro.errors.SnapshotError` on corruption.
    """
    with open(path, "rb") as handle:
        manifest = read_manifest(handle)
        file_size = os.fstat(handle.fileno()).st_size
        digest = hashlib.sha256()
        _walk_sections(handle, file_size, digest=digest, keep=frozenset())
    if digest.hexdigest() != manifest.checksum:
        raise SnapshotError(
            "snapshot checksum mismatch: file is corrupt or was modified"
        )
    return manifest


_REQUIRED_SECTIONS = (
    "tokens", "names", "set_lengths", "set_members",
    "posting_lengths", "posting_members",
)


def load_snapshot(
    path: str | Path, *, verify: bool = True, mmap: bool = True
) -> LoadedSnapshot:
    """Deserialize a snapshot written by :func:`save_snapshot`.

    With ``mmap=True`` (the default) the array sections become read-only
    ``np.memmap`` views over the file: nothing but the (small) token
    table is copied onto the heap — set names stay a
    :class:`LazyStrings` view decoded per access — cold start is
    O(tokens) instead of O(file), and concurrent loaders of the same
    file share one page-cache copy of the big sections. ``mmap=False`` reads the sections onto the
    heap (read-only ``frombuffer`` arrays) — same lazy semantics, private
    memory; useful for files on filesystems without mmap or as the
    comparison baseline.

    ``verify`` streams every section payload through SHA-256 against the
    manifest checksum in bounded chunks (cheap relative to the old eager
    deserialization, but still O(file); the cluster verifies once
    coordinator-side via :func:`verify_snapshot_checksum` and bootstraps
    workers with ``verify=False``).
    """
    path = Path(path)
    with open(path, "rb") as handle:
        manifest = read_manifest(handle)
        file_size = os.fstat(handle.fileno()).st_size
        digest = hashlib.sha256() if verify else None
        # The mapped path needs no heap payloads at all — even the
        # string tables are served lazily out of the map; the heap path
        # keeps every section as bytes for frombuffer.
        keep = (
            frozenset() if mmap
            else frozenset(s for s in (*_REQUIRED_SECTIONS, "vectors"))
        )
        spans, payloads = _walk_sections(
            handle, file_size, digest=digest, keep=keep
        )
    if digest is not None and digest.hexdigest() != manifest.checksum:
        raise SnapshotError(
            "snapshot checksum mismatch: file is corrupt or was modified"
        )
    missing = [name for name in _REQUIRED_SECTIONS if name not in spans]
    if missing:
        raise SnapshotError(f"snapshot missing sections: {missing}")

    if mmap:
        # One mapping for the whole file; every section array is a
        # read-only view into it. numpy keeps the mapping alive through
        # the views' .base chain, so the arrays outlive this function's
        # handle (which the with-block already closed).
        raw = np.memmap(path, dtype=np.uint8, mode="r")

        def section_array(name: str, dtype: str) -> np.ndarray:
            offset, length = spans[name]
            return raw[offset:offset + length].view(dtype)

        def section_bytes(name: str):
            offset, length = spans[name]
            return raw[offset:offset + length]
    else:
        def section_array(name: str, dtype: str) -> np.ndarray:
            return np.frombuffer(payloads[name], dtype=dtype)

        def section_bytes(name: str):
            return payloads[name]

    # Tokens are needed as real strings everywhere (substrate restore,
    # interning, postings keys) and the vocabulary is small — decode
    # eagerly. Names are one-per-set and only read for top-k answers and
    # mutations, so they stay a lazy view over the (possibly mapped)
    # section.
    tokens = _decode_strings(section_bytes("tokens"))
    names = LazyStrings(section_bytes("names"))
    try:
        set_lengths = section_array("set_lengths", "<u4")
        set_members = section_array("set_members", "<u4")
        posting_lengths = section_array("posting_lengths", "<u4")
        posting_members = section_array("posting_members", "<u4")
    except ValueError as exc:
        raise SnapshotError(f"malformed snapshot section: {exc}") from exc
    if len(names) != len(set_lengths):
        raise SnapshotError("snapshot name/set count mismatch")
    if len(posting_lengths) != len(tokens):
        raise SnapshotError("snapshot posting/token count mismatch")
    # Cheap vectorized shape checks (the old eager loader would have
    # tripped over these while slicing; the lazy one must reject the
    # file up front, even with verify=False).
    if int(set_lengths.sum()) != len(set_members):
        raise SnapshotError("snapshot set_members length mismatch")
    if int(posting_lengths.sum()) != len(posting_members):
        raise SnapshotError("snapshot posting_members length mismatch")

    token_index = sim = None
    if manifest.substrate is not None:
        if mmap and "vectors" in spans:
            offset, length = spans["vectors"]
            vectors = raw[offset:offset + length]
        else:
            vectors = payloads.get("vectors")
        token_index, sim = restore_substrate(
            manifest.substrate, tokens, vectors
        )
    return LoadedSnapshot(
        manifest=manifest,
        token_index=token_index,
        sim=sim,
        tokens=tokens,
        names=names,
        set_lengths=set_lengths,
        set_members=set_members,
        posting_lengths=posting_lengths,
        posting_members=posting_members,
    )


def _hashing_provider(substrate: dict[str, Any]):
    """The descriptor's embedding provider — one construction shared by
    every path that interprets a substrate description."""
    from repro.embedding.hashing import HashingEmbeddingProvider

    return HashingEmbeddingProvider(
        dim=int(substrate["dim"]),
        n_min=int(substrate.get("n_min", 3)),
        n_max=int(substrate.get("n_max", 5)),
        salt=str(substrate.get("salt", "hashing-embedding")),
    )


def build_substrate(substrate: dict[str, Any], vocabulary):
    """Derive ``(token_index, sim)`` from a descriptor + vocabulary.

    The from-scratch counterpart of :func:`restore_substrate` (no
    persisted artifacts): both substrate kinds are deterministic
    functions of (descriptor, vocabulary), so replicas built from the
    same inputs — in any process — stream identically. This is THE
    constructor behind the CLI's ``--jaccard``/``--dim`` flags and
    every cluster worker bootstrap; keep it the only copy, because the
    cluster's exactness contract dies quietly if two copies drift.
    """
    kind = substrate.get("kind")
    if kind == "hashing-cosine":
        from repro.embedding.provider import VectorStore
        from repro.index.vector_index import ExactCosineIndex
        from repro.sim.cosine import CosineSimilarity

        provider = _hashing_provider(substrate)
        store = VectorStore(provider, vocabulary)
        index = ExactCosineIndex(
            store, provider, batch_size=int(substrate.get("batch_size", 100))
        )
        return index, CosineSimilarity(provider, store=store)
    if kind == "qgram-jaccard":
        from repro.index.lsh import PrefixJaccardIndex
        from repro.sim.jaccard import QGramJaccardSimilarity

        sim = QGramJaccardSimilarity(q=int(substrate.get("q", 3)))
        index = PrefixJaccardIndex(
            vocabulary, alpha=float(substrate["alpha"]), similarity=sim
        )
        return index, sim
    raise SnapshotError(f"unknown substrate kind: {kind!r}")


def restore_substrate(
    substrate: dict[str, Any],
    tokens: list[str],
    vectors,
):
    """Rebuild the ``(token_index, sim)`` pair a snapshot describes.

    ``vectors`` is the raw vectors-section payload: ``bytes`` or a
    ``uint8`` array view (a read-only memmap slice on the zero-copy load
    path — the embedding matrix then stays a map, never a heap copy).
    ``hashing-cosine`` adopts the persisted matrix; ``qgram-jaccard``
    re-derives the prefix index from the vocabulary (its build is cheap
    q-gram bookkeeping, not an embedding pass, so it is not persisted —
    it goes through :func:`build_substrate` like every other
    from-scratch derivation).
    """
    kind = substrate.get("kind")
    if kind == "hashing-cosine":
        from repro.embedding.provider import VectorStore
        from repro.index.vector_index import ExactCosineIndex
        from repro.sim.cosine import CosineSimilarity

        provider = _hashing_provider(substrate)
        if vectors is None:
            raise SnapshotError(
                "snapshot declares a hashing-cosine substrate but has no "
                "vectors section"
            )
        vec = (
            vectors if isinstance(vectors, np.ndarray)
            else np.frombuffer(vectors, dtype="<u1")
        )
        (header_len,) = _U32.unpack(bytes(vec[:4]))
        header = json.loads(bytes(vec[4:4 + header_len]))
        rows, dim = int(header["rows"]), int(header["dim"])
        if dim != provider.dim:
            raise SnapshotError(
                f"snapshot matrix dim {dim} != substrate dim {provider.dim}"
            )
        mask_off = 4 + header_len
        mask = vec[mask_off:mask_off + len(tokens)]
        try:
            matrix = (
                vec[mask_off + len(tokens):].view("<f4").reshape(rows, dim)
            )
        except ValueError as exc:
            raise SnapshotError(
                f"snapshot vector matrix shape mismatch: {exc}"
            ) from exc
        covered = [t for t, m in zip(tokens, mask.tolist()) if m]
        if len(covered) != rows:
            raise SnapshotError("snapshot vector mask/row count mismatch")
        store = VectorStore.from_state(provider, covered, matrix)
        index = ExactCosineIndex(
            store, provider, batch_size=int(substrate.get("batch_size", 100))
        )
        return index, CosineSimilarity(provider, store=store)
    return build_substrate(substrate, tokens)
