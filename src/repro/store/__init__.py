"""The persistent storage subsystem.

Turns the in-memory repository into something a long-lived service can
cold-start and mutate::

    snapshot (binary, checksummed)  ->  fast cold start
        + write-ahead log           ->  durable mutations
        + mutable overlay           ->  incremental index maintenance

* :mod:`repro.store.snapshot` — binary collection + derived-artifact
  snapshots (token table, postings, vector substrate) with a manifest;
* :mod:`repro.store.wal` — append-only insert/delete/replace log with
  replay and snapshot compaction;
* :mod:`repro.store.mutable` — :class:`MutableSetCollection`, the live
  overlay with delta postings, tombstones, and a monotone ``version``
  the serving stack keys caches on.

See ``docs/store.md`` for the format and lifecycle walk-through.
"""

from repro.store.mutable import DeltaInvertedIndex, MutableSetCollection
from repro.store.snapshot import (
    FORMAT_VERSION,
    SNAPSHOT_SUFFIXES,
    LoadedSnapshot,
    SnapshotManifest,
    SnapshotSetCollection,
    inspect_snapshot,
    load_snapshot,
    restore_substrate,
    save_snapshot,
    substrate_fingerprint,
    verify_snapshot_checksum,
)
from repro.store.wal import (
    WalRecord,
    WriteAheadLog,
    apply_record,
    compact,
    pending_records,
    replay_pending,
)

__all__ = [
    "DeltaInvertedIndex",
    "FORMAT_VERSION",
    "LoadedSnapshot",
    "MutableSetCollection",
    "SNAPSHOT_SUFFIXES",
    "SnapshotManifest",
    "SnapshotSetCollection",
    "WalRecord",
    "WriteAheadLog",
    "apply_record",
    "compact",
    "inspect_snapshot",
    "load_snapshot",
    "pending_records",
    "replay_pending",
    "restore_substrate",
    "save_snapshot",
    "substrate_fingerprint",
    "verify_snapshot_checksum",
]
