"""The write-ahead update log and its apply/compact cycle.

Mutations arriving at a live server are appended here *before* they are
applied to the in-memory overlay, so a crashed process replays the log
over its last snapshot and resumes exactly where it stopped::

    snapshot (durable base)  +  WAL (ordered mutations)  =  live state

One record per line: a JSON object carrying a monotone sequence number,
the operation, and a CRC-32 of the body. On replay a corrupt *final*
record is treated as a torn write and truncated (the classic WAL
contract — the mutation was never acknowledged); corruption anywhere
else raises :class:`~repro.errors.WalError`.

:func:`compact` folds the log back into a fresh snapshot: replay onto an
overlay, vacuum tombstones, write the densified state with
:func:`~repro.store.snapshot.save_snapshot` (atomic rename), then reset
the log. Ids are renumbered by compaction; the wire protocol and the WAL
therefore address sets by *name*, which survives it.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.errors import InvalidParameterError, WalError

#: Operations a WAL record may carry.
OPS = ("insert", "delete", "replace")


@dataclass(frozen=True)
class WalRecord:
    """One durable mutation."""

    seq: int
    op: str
    name: str
    tokens: tuple[str, ...] | None = None

    def body(self) -> dict[str, Any]:
        obj: dict[str, Any] = {
            "seq": self.seq, "op": self.op, "name": self.name,
        }
        if self.tokens is not None:
            obj["tokens"] = sorted(self.tokens)
        return obj

    def to_line(self) -> str:
        body = self.body()
        body["crc"] = _crc(body)
        return json.dumps(body, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_line(cls, line: str) -> "WalRecord":
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise WalError(f"unreadable WAL record: {exc}") from exc
        if not isinstance(obj, dict):
            raise WalError("WAL record must be a JSON object")
        crc = obj.pop("crc", None)
        if crc != _crc(obj):
            raise WalError("WAL record failed its CRC check")
        op = obj.get("op")
        if op not in OPS:
            raise WalError(f"unknown WAL op: {op!r}")
        tokens = obj.get("tokens")
        if op in ("insert", "replace"):
            if not isinstance(tokens, list) or not tokens:
                raise WalError(f"WAL {op} record needs a token list")
        return cls(
            seq=int(obj["seq"]),
            op=str(op),
            name=str(obj["name"]),
            tokens=None if tokens is None else tuple(tokens),
        )


def _crc(body: dict[str, Any]) -> str:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return format(zlib.crc32(canonical.encode("utf-8")), "08x")


class WriteAheadLog:
    """An append-only log of insert/delete/replace operations.

    Parameters
    ----------
    path:
        Log file; created empty on first append if missing.
    fsync:
        Force every append to disk before acknowledging. Durability per
        mutation vs throughput — the benchmark serves either way.

    The log keeps one append handle open across mutations (opening the
    file per record costs more than writing it); :meth:`flush` forces
    buffered records down, :meth:`close` flushes and releases the
    handle, and the log is a context manager so serving stacks can
    guarantee both on the way out. A closed log transparently reopens
    on the next :meth:`append`.
    """

    def __init__(self, path: str | Path, *, fsync: bool = False) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._next_seq = 1
        self._handle = None
        if self.path.exists():
            records, truncate_at = self._parse()
            if truncate_at is not None:
                # Repair now: a later append in 'a' mode would otherwise
                # concatenate onto the partial line, silently corrupting
                # the first acknowledged post-crash record. Truncating at
                # the durable prefix is a single metadata operation — a
                # crash mid-repair just leaves the same torn tail for
                # the next open (never touches acknowledged records).
                os.truncate(self.path, truncate_at)
            if records:
                self._next_seq = records[-1].seq + 1

    def _parse(self) -> tuple[list[WalRecord], int | None]:
        """Durable records, plus the byte offset to truncate a torn
        tail at (None when the file ends cleanly)."""
        if not self.path.exists():
            return [], None
        raw = self.path.read_bytes()
        raw_lines = raw.split(b"\n")
        records: list[WalRecord] = []
        offset = 0
        nonblank = [i for i, b in enumerate(raw_lines) if b.strip()]
        last_nonblank = nonblank[-1] if nonblank else -1
        for position, raw_line in enumerate(raw_lines):
            # +1 for the newline removed by split (absent on the final
            # fragment).
            line_bytes = len(raw_line) + (
                1 if position < len(raw_lines) - 1 else 0
            )
            if not raw_line.strip():
                offset += line_bytes
                continue
            try:
                record = WalRecord.from_line(
                    raw_line.decode("utf-8")
                )
            except WalError:
                if position == last_nonblank:
                    return records, offset  # torn tail: crash mid-append
                raise
            except UnicodeDecodeError as exc:
                if position == last_nonblank:
                    return records, offset  # tear mid multi-byte char
                raise WalError(
                    f"undecodable WAL record on line {position + 1}"
                ) from exc
            expected = records[-1].seq + 1 if records else record.seq
            if record.seq != expected:
                raise WalError(
                    f"WAL sequence gap: got {record.seq}, "
                    f"expected {expected}"
                )
            records.append(record)
            offset += line_bytes
        return records, None

    def records(self) -> list[WalRecord]:
        """All durable records, in sequence order.

        A corrupt or torn *final* line is dropped (the write was never
        acknowledged); earlier corruption or a sequence gap raises
        :class:`WalError`.
        """
        return self._parse()[0]

    def __len__(self) -> int:
        return len(self.records())

    def append(
        self, op: str, name: str, tokens: Iterable[str] | None = None
    ) -> WalRecord:
        """Durably record one mutation; returns the written record."""
        if op not in OPS:
            raise InvalidParameterError(f"unknown WAL op: {op!r}")
        record = WalRecord(
            seq=self._next_seq,
            op=op,
            name=name,
            tokens=None if tokens is None else tuple(tokens),
        )
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(record.to_line() + "\n")
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
        self._next_seq += 1
        return record

    def flush(self) -> None:
        """Force buffered records to the OS (and disk under ``fsync``)."""
        if self._handle is not None:
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush and release the append handle.

        Safe to call repeatedly; the next :meth:`append` reopens. The
        graceful-shutdown path of ``repro serve`` calls this after the
        scheduler drains so every acknowledged mutation is on disk
        before the process exits.
        """
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def reset(self) -> None:
        """Truncate the log (its contents are folded into a snapshot)."""
        self.close()
        self.path.write_text("", encoding="utf-8")
        self._next_seq = 1

    def replay_into(self, collection) -> int:
        """Apply every record to a mutable collection; returns the count."""
        count = 0
        for record in self.records():
            apply_record(record, collection)
            count += 1
        return count


def apply_record(record: WalRecord, collection) -> int:
    """Apply one record to a :class:`MutableSetCollection`-style target;
    returns the affected set id."""
    if record.op == "insert":
        assert record.tokens is not None
        return collection.insert(record.tokens, name=record.name)
    if record.op == "delete":
        return collection.delete(record.name)
    if record.op == "replace":
        assert record.tokens is not None
        return collection.replace(record.name, record.tokens)
    raise WalError(f"unknown WAL op: {record.op!r}")


def compact(
    snapshot_path: str | Path,
    wal: WriteAheadLog,
    *,
    output: str | Path | None = None,
    verify: bool = True,
):
    """Fold ``wal`` into the snapshot at ``snapshot_path``.

    Loads the snapshot, replays the log onto a mutable overlay, vacuums
    tombstoned postings, extends the vector substrate with any new
    vocabulary, and writes the densified state back (atomically, to
    ``output`` or in place). The log is reset only after the new
    snapshot is durable. Returns the new manifest.
    """
    from repro.store.snapshot import load_snapshot, save_snapshot

    loaded = load_snapshot(snapshot_path, verify=verify)
    overlay = loaded.mutable()
    applied = wal.replay_into(overlay)
    overlay.vacuum()
    store = getattr(loaded.token_index, "store", None)
    if store is not None and hasattr(store, "extend"):
        store.extend(overlay.vocabulary)
    manifest = save_snapshot(
        output or snapshot_path,
        overlay,
        store=store,
        substrate=loaded.manifest.substrate,
    )
    wal.reset()
    return manifest, applied
