"""The write-ahead update log and its apply/compact cycle.

Mutations arriving at a live server are appended here *before* they are
applied to the in-memory overlay, so a crashed process replays the log
over its last snapshot and resumes exactly where it stopped::

    snapshot (durable base)  +  WAL (ordered mutations)  =  live state

One record per line: a JSON object carrying a monotone sequence number,
the operation, and a CRC-32 of the body. On replay a corrupt *final*
record is treated as a torn write and truncated (the classic WAL
contract — the mutation was never acknowledged); corruption anywhere
else raises :class:`~repro.errors.WalError`.

:func:`compact` folds the log back into a fresh snapshot: replay onto an
overlay, vacuum tombstones, write the densified state with
:func:`~repro.store.snapshot.save_snapshot` (atomic rename), then reset
the log. Ids are renumbered by compaction; the wire protocol and the WAL
therefore address sets by *name*, which survives it.

Compaction is **crash-atomic**: the snapshot write is fsync'd, renamed
into place, and the containing directory fsync'd, so a crash leaves
either the old or the new snapshot — never a torn one. The window
*between* the snapshot rename and the log reset is covered by a
**generation handshake**: the new snapshot's manifest records the log's
``generation`` and how many of its records were folded in
(``wal_applied``), and :meth:`WriteAheadLog.reset` bumps the generation
(as a durable header line, written atomically). Recovery — and a
re-run of :func:`compact` itself — replays only
:func:`pending_records`: when the log's generation matches the
manifest's, the first ``wal_applied`` records are already inside the
snapshot and are skipped; any other generation replays in full. A crash
at *any* point therefore recovers to the same collection state, applied
exactly once.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.errors import InvalidParameterError, WalError

#: Operations a WAL record may carry.
OPS = ("insert", "delete", "replace")


@dataclass(frozen=True)
class WalRecord:
    """One durable mutation."""

    seq: int
    op: str
    name: str
    tokens: tuple[str, ...] | None = None

    def body(self) -> dict[str, Any]:
        obj: dict[str, Any] = {
            "seq": self.seq, "op": self.op, "name": self.name,
        }
        if self.tokens is not None:
            obj["tokens"] = sorted(self.tokens)
        return obj

    def to_line(self) -> str:
        body = self.body()
        body["crc"] = _crc(body)
        return json.dumps(body, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_line(cls, line: str) -> "WalRecord":
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise WalError(f"unreadable WAL record: {exc}") from exc
        if not isinstance(obj, dict):
            raise WalError("WAL record must be a JSON object")
        crc = obj.pop("crc", None)
        if crc != _crc(obj):
            raise WalError("WAL record failed its CRC check")
        op = obj.get("op")
        if op not in OPS:
            raise WalError(f"unknown WAL op: {op!r}")
        tokens = obj.get("tokens")
        if op in ("insert", "replace"):
            if not isinstance(tokens, list) or not tokens:
                raise WalError(f"WAL {op} record needs a token list")
        return cls(
            seq=int(obj["seq"]),
            op=str(op),
            name=str(obj["name"]),
            tokens=None if tokens is None else tuple(tokens),
        )


def _crc(body: dict[str, Any]) -> str:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return format(zlib.crc32(canonical.encode("utf-8")), "08x")


def _generation_header_line(generation: int) -> str:
    body: dict[str, Any] = {"gen": generation}
    body["crc"] = _crc({"gen": generation})
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _parse_generation_header(raw_line: bytes) -> int | None:
    """The generation a header line declares; None when the line is an
    ordinary record (or not a header at all — the caller then parses it
    as a record and surfaces the proper error)."""
    try:
        obj = json.loads(raw_line.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(obj, dict) or "gen" not in obj or "op" in obj:
        return None
    crc = obj.pop("crc", None)
    if crc != _crc(obj):
        raise WalError("WAL generation header failed its CRC check")
    try:
        return int(obj["gen"])
    except (TypeError, ValueError) as exc:
        raise WalError("malformed WAL generation header") from exc


class WriteAheadLog:
    """An append-only log of insert/delete/replace operations.

    Parameters
    ----------
    path:
        Log file; created empty on first append if missing.
    fsync:
        Force every append to disk before acknowledging. Durability per
        mutation vs throughput — the benchmark serves either way.

    The log keeps one append handle open across mutations (opening the
    file per record costs more than writing it); :meth:`flush` forces
    buffered records down, :meth:`close` flushes and releases the
    handle, and the log is a context manager so serving stacks can
    guarantee both on the way out. A closed log transparently reopens
    on the next :meth:`append`.
    """

    def __init__(self, path: str | Path, *, fsync: bool = False) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._next_seq = 1
        self._handle = None
        #: Bumped by every :meth:`reset`; persisted as a header line so
        #: a snapshot manifest can name exactly which log epoch its
        #: ``wal_applied`` count refers to. 0 for a headerless log.
        self.generation = 0
        if self.path.exists():
            records, truncate_at = self._parse()
            if truncate_at is not None:
                # Repair now: a later append in 'a' mode would otherwise
                # concatenate onto the partial line, silently corrupting
                # the first acknowledged post-crash record. Truncating at
                # the durable prefix is a single metadata operation — a
                # crash mid-repair just leaves the same torn tail for
                # the next open (never touches acknowledged records).
                os.truncate(self.path, truncate_at)
            if records:
                self._next_seq = records[-1].seq + 1

    def _parse(self) -> tuple[list[WalRecord], int | None]:
        """Durable records, plus the byte offset to truncate a torn
        tail at (None when the file ends cleanly)."""
        if not self.path.exists():
            return [], None
        raw = self.path.read_bytes()
        raw_lines = raw.split(b"\n")
        records: list[WalRecord] = []
        offset = 0
        nonblank = [i for i, b in enumerate(raw_lines) if b.strip()]
        last_nonblank = nonblank[-1] if nonblank else -1
        first_nonblank = nonblank[0] if nonblank else -1
        for position, raw_line in enumerate(raw_lines):
            # +1 for the newline removed by split (absent on the final
            # fragment).
            line_bytes = len(raw_line) + (
                1 if position < len(raw_lines) - 1 else 0
            )
            if not raw_line.strip():
                offset += line_bytes
                continue
            if position == first_nonblank:
                generation = _parse_generation_header(raw_line)
                if generation is not None:
                    self.generation = generation
                    offset += line_bytes
                    continue
            try:
                record = WalRecord.from_line(
                    raw_line.decode("utf-8")
                )
            except WalError:
                if position == last_nonblank:
                    return records, offset  # torn tail: crash mid-append
                raise
            except UnicodeDecodeError as exc:
                if position == last_nonblank:
                    return records, offset  # tear mid multi-byte char
                raise WalError(
                    f"undecodable WAL record on line {position + 1}"
                ) from exc
            expected = records[-1].seq + 1 if records else record.seq
            if record.seq != expected:
                raise WalError(
                    f"WAL sequence gap: got {record.seq}, "
                    f"expected {expected}"
                )
            records.append(record)
            offset += line_bytes
        return records, None

    def records(self) -> list[WalRecord]:
        """All durable records, in sequence order.

        A corrupt or torn *final* line is dropped (the write was never
        acknowledged); earlier corruption or a sequence gap raises
        :class:`WalError`.
        """
        return self._parse()[0]

    def __len__(self) -> int:
        return len(self.records())

    def append(
        self, op: str, name: str, tokens: Iterable[str] | None = None
    ) -> WalRecord:
        """Durably record one mutation; returns the written record."""
        if op not in OPS:
            raise InvalidParameterError(f"unknown WAL op: {op!r}")
        record = WalRecord(
            seq=self._next_seq,
            op=op,
            name=name,
            tokens=None if tokens is None else tuple(tokens),
        )
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(record.to_line() + "\n")
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
        self._next_seq += 1
        return record

    def flush(self) -> None:
        """Force buffered records to the OS (and disk under ``fsync``)."""
        if self._handle is not None:
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush and release the append handle.

        Safe to call repeatedly; the next :meth:`append` reopens. The
        graceful-shutdown path of ``repro serve`` calls this after the
        scheduler drains so every acknowledged mutation is on disk
        before the process exits.
        """
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def reset(self) -> None:
        """Truncate the log (its contents are folded into a snapshot),
        bumping the durable generation.

        Atomic (tmp file + ``os.replace`` + directory fsync): a crash
        mid-reset leaves either the full old log — whose generation
        still matches the new snapshot's manifest, so recovery skips
        its folded records — or the fresh next-generation header.
        """
        self.close()
        self.generation += 1
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(_generation_header_line(self.generation) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        _fsync_directory(self.path.parent)
        self._next_seq = 1

    def replay_into(self, collection) -> int:
        """Apply every record to a mutable collection; returns the count."""
        count = 0
        for record in self.records():
            apply_record(record, collection)
            count += 1
        return count


def _fsync_directory(directory: Path) -> None:
    """Make a rename in ``directory`` durable (no-op where directories
    cannot be opened, e.g. some network filesystems)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def pending_records(wal: WriteAheadLog, manifest) -> list[WalRecord]:
    """The records of ``wal`` not yet folded into the snapshot described
    by ``manifest`` (None = no snapshot: everything is pending).

    When the manifest's ``wal_generation`` matches the log's current
    generation, its first ``wal_applied`` records are already inside the
    snapshot — the compact that wrote it crashed before resetting the
    log — and replaying them again would double-apply. Any other
    generation (or a manifest that predates the handshake) replays in
    full.
    """
    records = wal.records()
    generation = getattr(manifest, "wal_generation", None)
    if generation is None or generation != wal.generation:
        return records
    applied = int(getattr(manifest, "wal_applied", 0) or 0)
    return records[applied:]


def replay_pending(wal: WriteAheadLog, manifest, collection) -> int:
    """Apply :func:`pending_records` to a mutable collection; returns
    the count (the crash-safe form of :meth:`WriteAheadLog.replay_into`
    for snapshot-backed serving)."""
    count = 0
    for record in pending_records(wal, manifest):
        apply_record(record, collection)
        count += 1
    return count


def apply_record(record: WalRecord, collection) -> int:
    """Apply one record to a :class:`MutableSetCollection`-style target;
    returns the affected set id."""
    if record.op == "insert":
        assert record.tokens is not None
        return collection.insert(record.tokens, name=record.name)
    if record.op == "delete":
        return collection.delete(record.name)
    if record.op == "replace":
        assert record.tokens is not None
        return collection.replace(record.name, record.tokens)
    raise WalError(f"unknown WAL op: {record.op!r}")


def compact(
    snapshot_path: str | Path,
    wal: WriteAheadLog,
    *,
    output: str | Path | None = None,
    verify: bool = True,
):
    """Fold ``wal`` into the snapshot at ``snapshot_path``.

    Loads the snapshot, replays the log's *pending* records onto a
    mutable overlay (skipping any leading records a crashed earlier
    compact already folded in — see :func:`pending_records`), vacuums
    tombstoned postings, extends the vector substrate with any new
    vocabulary, and writes the densified state back (atomically, to
    ``output`` or in place) with the generation handshake in its
    manifest. The log is reset only after the new snapshot is durable.
    Returns the new manifest.
    """
    from repro.store.snapshot import load_snapshot, save_snapshot

    loaded = load_snapshot(snapshot_path, verify=verify)
    overlay = loaded.mutable()
    records = pending_records(wal, loaded.manifest)
    for record in records:
        apply_record(record, overlay)
    applied = len(records)
    overlay.vacuum()
    store = getattr(loaded.token_index, "store", None)
    if store is not None and hasattr(store, "extend"):
        store.extend(overlay.vocabulary)
    manifest = save_snapshot(
        output or snapshot_path,
        overlay,
        store=store,
        substrate=loaded.manifest.substrate,
        # The handshake: *total* records now inside the snapshot — the
        # skipped prefix of a crashed earlier compact plus this fold.
        wal_generation=wal.generation,
        wal_applied=len(wal.records()),
    )
    wal.reset()
    return manifest, applied
