"""Live collection mutation: delta postings, tombstones, versions.

A :class:`MutableSetCollection` overlays insert/delete/replace on top of
a :class:`~repro.datasets.collection.SetCollection` without ever
rebuilding the derived structures:

* **ids are append-only** — an insert takes the next slot, a delete
  leaves a tombstone, a replace is delete + insert under the same name.
  Ids of surviving sets never shift, so cached results, WAL records, and
  per-shard engines all stay meaningful across mutations;
* **postings are delta-maintained** — each insert appends the new id to
  its tokens' posting lists (ids are assigned in increasing order, so
  lists stay ascending, exactly the order a full
  :class:`~repro.index.inverted.InvertedIndex` rebuild produces);
  deletes are *not* removed from the lists — readers filter tombstones,
  and :meth:`vacuum` (run by WAL compaction) rewrites the lists;
* **the vocabulary is reference-counted** — a token leaves the
  vocabulary the moment its last containing set dies, which is what
  keeps the token stream's vocabulary filter exact under deletes;
* **``version`` increases monotonically** with every mutation — the
  engine pool hot-swaps on it and the result cache keys on it.

The equivalence contract (proven by ``tests/store/test_equivalence.py``):
searching through the incremental structures returns bitwise-identical
results to an engine rebuilt from scratch on the final collection state.
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator, Mapping, Sequence

from repro.datasets.collection import CollectionStats, SetCollection
from repro.errors import InvalidParameterError
from repro.index.inverted import PostingStats

#: Rough bytes per posting entry (pointer + small-int object share),
#: used for the O(1) memory estimate delta indexes report instead of a
#: full object-graph walk.
_POSTING_ENTRY_BYTES = 32


class MutableSetCollection(SetCollection):
    """A :class:`SetCollection` that supports live mutation.

    Parameters
    ----------
    base:
        Initial contents (copied; the base collection is not touched).
    postings:
        Prebuilt ``token -> ascending live set ids`` map aligned with
        ``base`` (the snapshot loader passes the deserialized postings
        here so cold start skips the indexing pass). Built from ``base``
        when omitted.
    """

    def __init__(
        self,
        base: SetCollection | None = None,
        *,
        postings: Mapping[str, Sequence[int]] | None = None,
    ) -> None:
        self._sets: list[frozenset[str] | None] = []
        self._names: list[str | None] = []
        self._name_to_id: dict[str, int] = {}
        self._postings: dict[str, list[int]] = {}
        self._token_refs: dict[str, int] = {}
        self._vocabulary: set[str] = set()
        self._num_live = 0
        self._posting_entries = 0
        self._dead_posting_entries = 0
        self._version = 0
        self._mutation_lock = threading.Lock()
        if base is not None:
            self._adopt(base, postings)

    def _adopt(
        self,
        base: SetCollection,
        postings: Mapping[str, Sequence[int]] | None,
    ) -> None:
        self._sets = [base[set_id] for set_id in base.ids()]
        self._names = [base.name_of(set_id) for set_id in base.ids()]
        self._num_live = len(self._sets)
        for set_id, name in enumerate(self._names):
            if name in self._name_to_id:
                raise InvalidParameterError(
                    f"duplicate set name: {name!r} (mutation is keyed "
                    "by name, so names must be unique)"
                )
            self._name_to_id[name] = set_id
        if postings is None:
            for set_id, members in enumerate(self._sets):
                for token in members:
                    self._postings.setdefault(token, []).append(set_id)
        else:
            self._postings = {
                token: list(ids) for token, ids in postings.items()
            }
        for token, ids in self._postings.items():
            self._token_refs[token] = len(ids)
            self._posting_entries += len(ids)
        self._vocabulary = set(self._token_refs)

    # -- container protocol (live view) ------------------------------------

    def __len__(self) -> int:
        return self._num_live

    def __getitem__(self, set_id: int) -> frozenset[str]:
        members = self._sets[set_id]
        if members is None:
            raise InvalidParameterError(f"set {set_id} has been deleted")
        return members

    def __iter__(self) -> Iterator[frozenset[str]]:
        return (s for s in self._sets if s is not None)

    def ids(self) -> list[int]:  # type: ignore[override]
        """Ascending ids of live sets (tombstoned slots skipped)."""
        return [
            set_id for set_id, s in enumerate(self._sets) if s is not None
        ]

    def name_of(self, set_id: int) -> str:
        name = self._names[set_id]
        if name is None or self._sets[set_id] is None:
            raise InvalidParameterError(f"set {set_id} has been deleted")
        return name

    def id_of(self, name: str) -> int:
        try:
            return self._name_to_id[name]
        except KeyError:
            raise InvalidParameterError(
                f"no live set named {name!r}"
            ) from None

    def stats(self) -> CollectionStats:
        sizes = [len(s) for s in self._sets if s is not None]
        return CollectionStats(
            num_sets=len(sizes),
            max_size=max(sizes) if sizes else 0,
            avg_size=sum(sizes) / len(sizes) if sizes else 0.0,
            num_unique_elements=len(self._vocabulary),
        )

    # -- mutation ----------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone mutation counter; 0 for a freshly adopted base."""
        return self._version

    @property
    def num_slots(self) -> int:
        """Total id slots ever allocated (live + tombstoned)."""
        return len(self._sets)

    def contains_name(self, name: str) -> bool:
        return name in self._name_to_id

    def insert(
        self, tokens: Iterable[str], *, name: str | None = None
    ) -> int:
        """Add a new set; returns its id (the next free slot)."""
        members = frozenset(tokens)
        if not members:
            raise InvalidParameterError("collections may not contain empty sets")
        if any(not isinstance(token, str) for token in members):
            raise InvalidParameterError("set tokens must be strings")
        with self._mutation_lock:
            set_id = len(self._sets)
            if name is None:
                name = f"set_{set_id}"
            if name in self._name_to_id:
                raise InvalidParameterError(
                    f"a live set named {name!r} already exists "
                    "(delete or replace it instead)"
                )
            self._sets.append(members)
            self._names.append(name)
            self._name_to_id[name] = set_id
            for token in members:
                self._postings.setdefault(token, []).append(set_id)
                self._token_refs[token] = self._token_refs.get(token, 0) + 1
                self._vocabulary.add(token)
            self._posting_entries += len(members)
            self._num_live += 1
            self._version += 1
            return set_id

    def delete(self, ref: int | str) -> int:
        """Tombstone a live set by id or name; returns the id."""
        with self._mutation_lock:
            set_id = self._resolve(ref)
            members = self._sets[set_id]
            assert members is not None  # _resolve checked liveness
            self._sets[set_id] = None
            name = self._names[set_id]
            if name is not None:
                self._name_to_id.pop(name, None)
            for token in members:
                remaining = self._token_refs[token] - 1
                if remaining:
                    self._token_refs[token] = remaining
                else:
                    del self._token_refs[token]
                    self._vocabulary.discard(token)
            self._dead_posting_entries += len(members)
            self._num_live -= 1
            self._version += 1
            return set_id

    def replace(self, ref: int | str, tokens: Iterable[str]) -> int:
        """Delete ``ref`` and insert ``tokens`` under the same name.

        Returns the *new* id: replacement allocates a fresh slot so the
        ascending-posting invariant (and any result cached against the
        old id's version) stays intact.
        """
        members = frozenset(tokens)
        # Validate BEFORE the delete: a rejected replace must leave the
        # old set alive, or an unlogged op destroys data.
        if not members:
            raise InvalidParameterError(
                "collections may not contain empty sets"
            )
        if any(not isinstance(token, str) for token in members):
            raise InvalidParameterError("set tokens must be strings")
        old_id = self._resolve(ref)
        name = self._names[old_id]
        self.delete(old_id)
        assert name is not None
        return self.insert(members, name=name)

    def _resolve(self, ref: int | str) -> int:
        if isinstance(ref, str):
            try:
                return self._name_to_id[ref]
            except KeyError:
                raise InvalidParameterError(
                    f"no live set named {ref!r}"
                ) from None
        set_id = int(ref)
        if not (0 <= set_id < len(self._sets)) or self._sets[set_id] is None:
            raise InvalidParameterError(
                f"no live set with id {set_id}"
            )
        return set_id

    # -- derived structures -------------------------------------------------

    def alive(self, set_id: int) -> bool:
        return (
            0 <= set_id < len(self._sets) and self._sets[set_id] is not None
        )

    def live_postings(self, token: str) -> list[int]:
        """Current posting list of ``token``: ascending live ids only."""
        posting = self._postings.get(token)
        if not posting:
            return []
        return [i for i in posting if self._sets[i] is not None]

    def delta_index(
        self, set_ids: Sequence[int] | None = None
    ) -> "DeltaInvertedIndex":
        """An inverted-index view over the live postings, optionally
        restricted to ``set_ids`` (one per engine shard)."""
        return DeltaInvertedIndex(self, set_ids)

    def vacuum(self) -> int:
        """Rewrite posting lists without tombstoned ids; returns the
        number of dead entries dropped. Run by WAL compaction — routine
        serving never needs it, readers filter tombstones on the fly."""
        with self._mutation_lock:
            dropped = 0
            for token in list(self._postings):
                posting = self._postings[token]
                live = [i for i in posting if self._sets[i] is not None]
                dropped += len(posting) - len(live)
                if live:
                    self._postings[token] = live
                else:
                    del self._postings[token]
            self._posting_entries -= dropped
            self._dead_posting_entries = 0
            return dropped

    def compacted(self) -> SetCollection:
        """A dense immutable copy of the live state (ids renumbered
        0..len-1 in current id order, names preserved) — what snapshot
        compaction persists."""
        live = self.ids()
        return SetCollection(
            [self._sets[i] for i in live],
            names=[self._names[i] for i in live],
        )

    def posting_bytes(self) -> int:
        """O(1) estimate of the posting-list footprint."""
        return (
            self._posting_entries * _POSTING_ENTRY_BYTES
            + len(self._postings) * _POSTING_ENTRY_BYTES
        )


class DeltaInvertedIndex:
    """An :class:`~repro.index.inverted.InvertedIndex`-compatible view of
    a :class:`MutableSetCollection`'s delta-maintained postings.

    Reads filter tombstones (and, for shard views, non-members) on the
    fly, so the view is always current — building one is O(shard size),
    which is what makes the engine pool's hot swap cheap. Posting order
    matches a full rebuild exactly: ids are appended in increasing order
    and filtering preserves it.
    """

    def __init__(
        self,
        overlay: MutableSetCollection,
        set_ids: Sequence[int] | None = None,
    ) -> None:
        self._overlay = overlay
        self._members = None if set_ids is None else frozenset(set_ids)

    def sets_containing(self, token: str) -> list[int]:
        posting = self._overlay._postings.get(token)
        if not posting:
            return []
        sets = self._overlay._sets
        members = self._members
        if members is None:
            return [i for i in posting if sets[i] is not None]
        return [i for i in posting if i in members and sets[i] is not None]

    def __contains__(self, token: str) -> bool:
        return bool(self.sets_containing(token))

    def __len__(self) -> int:
        return sum(
            1 for token in self._overlay._postings
            if self.sets_containing(token)
        )

    def stats(self) -> PostingStats:
        lengths = [
            length
            for token in self._overlay._postings
            if (length := len(self.sets_containing(token)))
        ]
        if not lengths:
            return PostingStats(0, 0, 0, 0.0)
        return PostingStats(
            num_tokens=len(lengths),
            total_postings=sum(lengths),
            max_list_length=max(lengths),
            avg_list_length=sum(lengths) / len(lengths),
        )

    def memory_bytes(self) -> int:
        """Cheap footprint estimate (shared overlay postings, counted
        once per engine build instead of deep-walked)."""
        return self._overlay.posting_bytes()
