"""Live collection mutation: delta postings, tombstones, versions.

A :class:`MutableSetCollection` overlays insert/delete/replace on top of
a :class:`~repro.datasets.collection.SetCollection` without ever
rebuilding the derived structures:

* **ids are append-only** — an insert takes the next slot, a delete
  leaves a tombstone, a replace is delete + insert under the same name.
  Ids of surviving sets never shift, so cached results, WAL records, and
  per-shard engines all stay meaningful across mutations;
* **postings are delta-maintained** — each insert appends the new id to
  its tokens' posting lists (ids are assigned in increasing order, so
  lists stay ascending, exactly the order a full
  :class:`~repro.index.inverted.InvertedIndex` rebuild produces);
  deletes are *not* removed from the lists — readers filter tombstones,
  and :meth:`vacuum` (run by WAL compaction) rewrites the lists;
* **the vocabulary is reference-counted** — a token leaves the
  vocabulary the moment its last containing set dies, which is what
  keeps the token stream's vocabulary filter exact under deletes;
* **``version`` increases monotonically** with every mutation — the
  engine pool hot-swaps on it and the result cache keys on it.

Overlays adopted from a memmap-backed snapshot
(:meth:`MutableSetCollection.from_snapshot`) are *copy-on-write*: the
base postings stay CSR array slices over the snapshot file and per-set
``frozenset``s materialize only when read, so a worker that never
mutates keeps sharing the snapshot's single page-cache copy. A posting
list is copied onto the heap the first time a mutation touches its
token; :meth:`vacuum` (WAL compaction) materializes everything and drops
the array backing.

The equivalence contract (proven by ``tests/store/test_equivalence.py``):
searching through the incremental structures returns bitwise-identical
results to an engine rebuilt from scratch on the final collection state.
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.datasets.collection import CollectionStats, SetCollection
from repro.errors import InvalidParameterError
from repro.index.interning import CSRPostings, csr_from_index, csr_restrict
from repro.index.inverted import PostingStats

#: Rough bytes per posting entry (pointer + small-int object share),
#: used for the O(1) memory estimate delta indexes report instead of a
#: full object-graph walk.
_POSTING_ENTRY_BYTES = 32

#: Placeholder for a not-yet-materialized set slot in a lazy overlay.
#: Distinct from ``None``, which marks a tombstone.
_LAZY = object()


class _CowNames:
    """Copy-on-write name table for snapshot-adopted overlays.

    The base is a lazy snapshot string view (names decode from the map
    on access); inserts land in a heap tail. Names are never overwritten
    in place — deletion tombstones ``_sets`` and drops the name-map
    entry, leaving the table untouched — so base + tail is the complete
    picture.
    """

    __slots__ = ("_base", "_tail")

    def __init__(self, base: Sequence[str]) -> None:
        self._base = base
        self._tail: list[str | None] = []

    def __len__(self) -> int:
        return len(self._base) + len(self._tail)

    def __getitem__(self, index: int) -> str | None:
        base = self._base
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        if index < len(base):
            return base[index]
        return self._tail[index - len(base)]

    def append(self, name: str | None) -> None:
        self._tail.append(name)

    def __iter__(self) -> Iterator[str | None]:
        yield from self._base
        yield from self._tail


class MutableSetCollection(SetCollection):
    """A :class:`SetCollection` that supports live mutation.

    Parameters
    ----------
    base:
        Initial contents (copied; the base collection is not touched).
    postings:
        Prebuilt ``token -> ascending live set ids`` map aligned with
        ``base``. Built from ``base`` when omitted. (The snapshot loader
        no longer goes through this eager path — it adopts CSR arrays
        via :meth:`from_snapshot` instead.)
    """

    def __init__(
        self,
        base: SetCollection | None = None,
        *,
        postings: Mapping[str, Sequence[int]] | None = None,
    ) -> None:
        self._sets: list[frozenset[str] | None] = []
        self._names: list[str | None] = []
        #: ``None`` means "not built yet" (lazy adoption); use
        #: :meth:`_names_map` for every access.
        self._name_to_id: dict[str, int] | None = {}
        #: Heap posting lists: deltas + copy-on-write materializations.
        self._postings: dict[str, list[int]] = {}
        self._token_refs: dict[str, int] = {}
        self._vocabulary: set[str] = set()
        self._num_live = 0
        self._posting_entries = 0
        self._dead_posting_entries = 0
        self._version = 0
        self._mutation_lock = threading.Lock()
        # CSR backing of a snapshot-adopted overlay (None when eager).
        self._base: SetCollection | None = None
        self._csr_tokens: list[str] | None = None
        self._csr_offsets: np.ndarray | None = None
        self._csr_members: np.ndarray | None = None
        self._csr_token_id: dict[str, int] | None = None
        self._csr_bytes = 0
        self._csr64: tuple[object, CSRPostings] | None = None
        self._csr_table_match: tuple[object, bool] | None = None
        if base is not None:
            self._adopt(base, postings)

    def _adopt(
        self,
        base: SetCollection,
        postings: Mapping[str, Sequence[int]] | None,
    ) -> None:
        self._sets = [base[set_id] for set_id in base.ids()]
        self._names = [base.name_of(set_id) for set_id in base.ids()]
        self._num_live = len(self._sets)
        assert self._name_to_id is not None
        for set_id, name in enumerate(self._names):
            if name in self._name_to_id:
                raise InvalidParameterError(
                    f"duplicate set name: {name!r} (mutation is keyed "
                    "by name, so names must be unique)"
                )
            self._name_to_id[name] = set_id
        if postings is None:
            for set_id, members in enumerate(self._sets):
                for token in members:
                    self._postings.setdefault(token, []).append(set_id)
        else:
            self._postings = {
                token: list(ids) for token, ids in postings.items()
            }
        for token, ids in self._postings.items():
            self._token_refs[token] = len(ids)
            self._posting_entries += len(ids)
        self._vocabulary = set(self._token_refs)

    @classmethod
    def from_snapshot(cls, loaded) -> "MutableSetCollection":
        """Adopt a :class:`~repro.store.snapshot.LoadedSnapshot` lazily.

        No Python posting lists, frozensets, or name map are built here:
        base postings are served as slices of the (possibly memmapped)
        CSR arrays, sets materialize on read, and lists are copied onto
        the heap only when a mutation touches their token. Cold start is
        O(tokens), not O(postings).
        """
        overlay = cls()
        base = loaded.collection
        overlay._base = base
        overlay._sets = [_LAZY] * len(base)
        overlay._names = _CowNames(loaded.names)
        overlay._name_to_id = None
        overlay._num_live = len(base)
        tokens = loaded.tokens
        lengths = loaded.posting_lengths
        overlay._csr_tokens = tokens
        overlay._csr_offsets = loaded.posting_offsets
        overlay._csr_members = loaded.posting_members
        overlay._csr_bytes = int(
            loaded.posting_members.nbytes + loaded.posting_offsets.nbytes
        )
        overlay._token_refs = {
            token: count
            for token, count in zip(tokens, lengths.tolist())
            if count
        }
        overlay._vocabulary = set(overlay._token_refs)
        # The snapshot token section IS the sorted vocabulary: pre-seed
        # the per-version token-table cache (see
        # :func:`~repro.index.interning.token_table_for`) so engine
        # builds skip re-sorting 100k+ strings at bootstrap.
        from repro.index.interning import TokenTable

        overlay._token_table_cache = (0, TokenTable(tokens))
        return overlay

    # -- container protocol (live view) ------------------------------------

    def __len__(self) -> int:
        return self._num_live

    def _set_at(self, set_id: int):
        """The slot's frozenset, materialized from the base if lazy;
        ``None`` for tombstones."""
        members = self._sets[set_id]
        if members is _LAZY:
            members = self._base[set_id]  # type: ignore[index]
            self._sets[set_id] = members
        return members

    def __getitem__(self, set_id: int) -> frozenset[str]:
        members = self._set_at(set_id)
        if members is None:
            raise InvalidParameterError(f"set {set_id} has been deleted")
        return members

    def __iter__(self) -> Iterator[frozenset[str]]:
        for set_id, members in enumerate(self._sets):
            if members is _LAZY:
                members = self._set_at(set_id)
            if members is not None:
                yield members

    def ids(self) -> list[int]:  # type: ignore[override]
        """Ascending ids of live sets (tombstoned slots skipped)."""
        return [
            set_id for set_id, s in enumerate(self._sets) if s is not None
        ]

    def name_of(self, set_id: int) -> str:
        name = self._names[set_id]
        if name is None or self._sets[set_id] is None:
            raise InvalidParameterError(f"set {set_id} has been deleted")
        return name

    def id_of(self, name: str) -> int:
        try:
            return self._names_map()[name]
        except KeyError:
            raise InvalidParameterError(
                f"no live set named {name!r}"
            ) from None

    def cardinality(self, set_id: int) -> int:
        members = self._sets[set_id]
        if members is _LAZY:
            return self._base.cardinality(set_id)  # type: ignore[union-attr]
        if members is None:
            raise InvalidParameterError(f"set {set_id} has been deleted")
        return len(members)

    def subset(self, set_ids: Sequence[int]) -> SetCollection:
        return SetCollection(
            [self[i] for i in set_ids],
            names=[self.name_of(i) for i in set_ids],
        )

    def stats(self) -> CollectionStats:
        sizes = []
        for set_id, members in enumerate(self._sets):
            if members is _LAZY:
                sizes.append(self._base.cardinality(set_id))  # type: ignore[union-attr]
            elif members is not None:
                sizes.append(len(members))
        return CollectionStats(
            num_sets=len(sizes),
            max_size=max(sizes) if sizes else 0,
            avg_size=sum(sizes) / len(sizes) if sizes else 0.0,
            num_unique_elements=len(self._vocabulary),
        )

    # -- mutation ----------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone mutation counter; 0 for a freshly adopted base."""
        return self._version

    @property
    def num_slots(self) -> int:
        """Total id slots ever allocated (live + tombstoned)."""
        return len(self._sets)

    def _names_map(self) -> dict[str, int]:
        """``name -> live set id``, built on first use for lazy overlays
        (duplicate names are rejected here, at first keyed access,
        instead of at adoption)."""
        mapping = self._name_to_id
        if mapping is None:
            mapping = {}
            for set_id, name in enumerate(self._names):
                if name is None or self._sets[set_id] is None:
                    continue
                if name in mapping:
                    raise InvalidParameterError(
                        f"duplicate set name: {name!r} (mutation is keyed "
                        "by name, so names must be unique)"
                    )
                mapping[name] = set_id
            self._name_to_id = mapping
        return mapping

    def contains_name(self, name: str) -> bool:
        return name in self._names_map()

    def insert(
        self, tokens: Iterable[str], *, name: str | None = None
    ) -> int:
        """Add a new set; returns its id (the next free slot)."""
        members = frozenset(tokens)
        if not members:
            raise InvalidParameterError("collections may not contain empty sets")
        if any(not isinstance(token, str) for token in members):
            raise InvalidParameterError("set tokens must be strings")
        with self._mutation_lock:
            set_id = len(self._sets)
            if name is None:
                name = f"set_{set_id}"
            names = self._names_map()
            if name in names:
                raise InvalidParameterError(
                    f"a live set named {name!r} already exists "
                    "(delete or replace it instead)"
                )
            self._sets.append(members)
            self._names.append(name)
            names[name] = set_id
            for token in members:
                self._posting_for_write(token).append(set_id)
                self._token_refs[token] = self._token_refs.get(token, 0) + 1
                self._vocabulary.add(token)
            self._posting_entries += len(members)
            self._num_live += 1
            self._version += 1
            return set_id

    def delete(self, ref: int | str) -> int:
        """Tombstone a live set by id or name; returns the id."""
        with self._mutation_lock:
            set_id = self._resolve(ref)
            members = self._set_at(set_id)
            assert members is not None  # _resolve checked liveness
            self._sets[set_id] = None
            name = self._names[set_id]
            if name is not None:
                self._names_map().pop(name, None)
            for token in members:
                remaining = self._token_refs[token] - 1
                if remaining:
                    self._token_refs[token] = remaining
                else:
                    del self._token_refs[token]
                    self._vocabulary.discard(token)
            self._dead_posting_entries += len(members)
            self._num_live -= 1
            self._version += 1
            return set_id

    def replace(self, ref: int | str, tokens: Iterable[str]) -> int:
        """Delete ``ref`` and insert ``tokens`` under the same name.

        Returns the *new* id: replacement allocates a fresh slot so the
        ascending-posting invariant (and any result cached against the
        old id's version) stays intact.
        """
        members = frozenset(tokens)
        # Validate BEFORE the delete: a rejected replace must leave the
        # old set alive, or an unlogged op destroys data.
        if not members:
            raise InvalidParameterError(
                "collections may not contain empty sets"
            )
        if any(not isinstance(token, str) for token in members):
            raise InvalidParameterError("set tokens must be strings")
        old_id = self._resolve(ref)
        name = self._names[old_id]
        self.delete(old_id)
        assert name is not None
        return self.insert(members, name=name)

    def _resolve(self, ref: int | str) -> int:
        if isinstance(ref, str):
            try:
                return self._names_map()[ref]
            except KeyError:
                raise InvalidParameterError(
                    f"no live set named {ref!r}"
                ) from None
        set_id = int(ref)
        if not (0 <= set_id < len(self._sets)) or self._sets[set_id] is None:
            raise InvalidParameterError(
                f"no live set with id {set_id}"
            )
        return set_id

    # -- posting access (heap deltas over optional CSR backing) ------------

    def _base_posting(self, token: str) -> np.ndarray | None:
        """The base CSR slice for ``token`` (zero-copy; ``None`` when
        there is no CSR backing or the token is not in it)."""
        if self._csr_tokens is None:
            return None
        ids = self._csr_token_id
        if ids is None:
            ids = {t: i for i, t in enumerate(self._csr_tokens)}
            self._csr_token_id = ids
        token_id = ids.get(token, -1)
        if token_id < 0:
            return None
        start = self._csr_offsets[token_id]  # type: ignore[index]
        end = self._csr_offsets[token_id + 1]  # type: ignore[index]
        if end <= start:
            return None
        return self._csr_members[start:end]  # type: ignore[index]

    def _posting_for_write(self, token: str) -> list[int]:
        """The heap posting list of ``token``, copying the base CSR
        slice on first write (copy-on-write materialization)."""
        posting = self._postings.get(token)
        if posting is None:
            base = self._base_posting(token)
            posting = [] if base is None else base.tolist()
            self._postings[token] = posting
            if posting:
                # These entries move from array- to heap-accounting.
                self._posting_entries += len(posting)
        return posting

    def posting_of(self, token: str):
        """Current posting list of ``token`` including tombstoned ids:
        a heap ``list`` (delta/materialized) or a read-only array slice
        of the CSR backing; ``None`` when the token has no postings.
        Readers must filter tombstones themselves (see
        :class:`DeltaInvertedIndex`)."""
        posting = self._postings.get(token)
        if posting is not None:
            return posting
        return self._base_posting(token)

    def posting_tokens(self) -> Iterator[str]:
        """Every token with any posting entries (dead ones included)."""
        yield from self._postings
        if self._csr_tokens is not None:
            overridden = self._postings
            offsets = self._csr_offsets
            for token_id, token in enumerate(self._csr_tokens):
                if token not in overridden and (
                    offsets[token_id + 1] > offsets[token_id]  # type: ignore[index]
                ):
                    yield token

    # -- derived structures -------------------------------------------------

    def alive(self, set_id: int) -> bool:
        return (
            0 <= set_id < len(self._sets) and self._sets[set_id] is not None
        )

    def live_postings(self, token: str) -> list[int]:
        """Current posting list of ``token``: ascending live ids only."""
        posting = self.posting_of(token)
        if posting is None or len(posting) == 0:
            return []
        if not isinstance(posting, list):
            posting = posting.tolist()
        return [i for i in posting if self._sets[i] is not None]

    def delta_index(
        self, set_ids: Sequence[int] | None = None
    ) -> "DeltaInvertedIndex":
        """An inverted-index view over the live postings, optionally
        restricted to ``set_ids`` (one per engine shard)."""
        return DeltaInvertedIndex(self, set_ids)

    def _table_matches(self, table) -> bool:
        """Whether ``table`` is aligned with the CSR backing's token
        section (one O(vocab) comparison, cached per table object)."""
        cached = self._csr_table_match
        if cached is not None and cached[0] is table:
            return cached[1]
        ok = table.tokens == self._csr_tokens
        self._csr_table_match = (table, ok)
        return ok

    def csr_raw(self, table) -> CSRPostings | None:
        """The base CSR arrays verbatim (``sets`` in on-disk ``u4``) —
        only available while the overlay is an *unmutated* CSR-backed
        snapshot adoption (version 0), where the base arrays are the
        live postings verbatim. Shard views mask-restrict this without
        ever converting the full array. ``None`` otherwise."""
        if self._csr_tokens is None or self._version != 0:
            return None
        if not self._table_matches(table):
            return None
        return CSRPostings(
            offsets=self._csr_offsets, sets=self._csr_members
        )

    def csr_live(self, table) -> CSRPostings | None:
        """Like :meth:`csr_raw` but with ``sets`` converted to the
        engine's int64 dtype; the one conversion is cached so every
        full-view engine of a pool shares it."""
        cached = self._csr64
        if cached is not None and cached[0] is table:
            return cached[1]
        raw = self.csr_raw(table)
        if raw is None:
            return None
        csr = CSRPostings(
            offsets=raw.offsets,
            sets=np.ascontiguousarray(raw.sets, dtype=np.int64),
        )
        self._csr64 = (table, csr)
        return csr

    def vacuum(self) -> int:
        """Rewrite posting lists without tombstoned ids; returns the
        number of dead entries dropped. Run by WAL compaction — routine
        serving never needs it, readers filter tombstones on the fly.
        On a CSR-backed overlay this materializes every base posting
        list and drops the array backing (compaction rewrites the world
        anyway)."""
        with self._mutation_lock:
            if self._csr_tokens is not None:
                for token in self._csr_tokens:
                    if token not in self._postings:
                        base = self._base_posting(token)
                        if base is not None:
                            posting = base.tolist()
                            self._postings[token] = posting
                            self._posting_entries += len(posting)
                self._csr_tokens = None
                self._csr_offsets = None
                self._csr_members = None
                self._csr_token_id = None
                self._csr_bytes = 0
                self._csr64 = None
            dropped = 0
            for token in list(self._postings):
                posting = self._postings[token]
                live = [i for i in posting if self._sets[i] is not None]
                dropped += len(posting) - len(live)
                if live:
                    self._postings[token] = live
                else:
                    del self._postings[token]
            self._posting_entries -= dropped
            self._dead_posting_entries = 0
            return dropped

    def compacted(self) -> SetCollection:
        """A dense immutable copy of the live state (ids renumbered
        0..len-1 in current id order, names preserved) — what snapshot
        compaction persists."""
        live = self.ids()
        return SetCollection(
            [self._set_at(i) for i in live],
            names=[self._names[i] for i in live],
        )

    def posting_bytes(self) -> int:
        """O(1) estimate of the posting-list footprint: exact array
        bytes for the CSR backing plus the rough per-entry object cost
        of heap lists."""
        return (
            self._csr_bytes
            + self._posting_entries * _POSTING_ENTRY_BYTES
            + len(self._postings) * _POSTING_ENTRY_BYTES
        )


class DeltaInvertedIndex:
    """An :class:`~repro.index.inverted.InvertedIndex`-compatible view of
    a :class:`MutableSetCollection`'s delta-maintained postings.

    Reads filter tombstones (and, for shard views, non-members) on the
    fly, so the view is always current — building one is O(shard size),
    which is what makes the engine pool's hot swap cheap. Posting order
    matches a full rebuild exactly: ids are appended in increasing order
    and filtering preserves it.
    """

    def __init__(
        self,
        overlay: MutableSetCollection,
        set_ids: Sequence[int] | None = None,
    ) -> None:
        self._overlay = overlay
        self._members = None if set_ids is None else frozenset(set_ids)

    def sets_containing(self, token: str) -> list[int]:
        posting = self._overlay.posting_of(token)
        if posting is None or len(posting) == 0:
            return []
        if not isinstance(posting, list):
            posting = posting.tolist()
        sets = self._overlay._sets
        members = self._members
        if members is None:
            return [i for i in posting if sets[i] is not None]
        return [i for i in posting if i in members and sets[i] is not None]

    def __contains__(self, token: str) -> bool:
        return bool(self.sets_containing(token))

    def __len__(self) -> int:
        return sum(
            1 for token in self._overlay.posting_tokens()
            if self.sets_containing(token)
        )

    def columnar(self, table) -> CSRPostings:
        """The CSR posting view aligned to ``table``.

        While the overlay is an unmutated CSR-backed snapshot adoption,
        this is pure array work: the shared int64 conversion of the
        snapshot arrays, mask-filtered to the shard's members
        (:func:`~repro.index.interning.csr_restrict`) — no Python pass
        over posting lists. After the first mutation it falls back to
        the generic per-token build, same as any delta view.
        """
        if self._members is None:
            base = self._overlay.csr_live(table)
            if base is None:
                return csr_from_index(self, table)
            return base
        raw = self._overlay.csr_raw(table)
        if raw is None:
            return csr_from_index(self, table)
        # Restrict the on-disk u4 arrays directly: only the shard's
        # surviving entries are ever converted to int64 heap memory.
        return csr_restrict(raw, self._members, self._overlay.num_slots)

    def stats(self) -> PostingStats:
        lengths = [
            length
            for token in self._overlay.posting_tokens()
            if (length := len(self.sets_containing(token)))
        ]
        if not lengths:
            return PostingStats(0, 0, 0, 0.0)
        return PostingStats(
            num_tokens=len(lengths),
            total_postings=sum(lengths),
            max_list_length=max(lengths),
            avg_list_length=sum(lengths) / len(lengths),
        )

    def memory_bytes(self) -> int:
        """Cheap footprint estimate (shared overlay postings, counted
        once per engine build instead of deep-walked)."""
        return self._overlay.posting_bytes()
