"""MinHash signatures for Jaccard similarity estimation.

The paper notes that when ``sim`` is Jaccard, a MinHash LSH index can
back the token stream (§IV). Signatures here use k independent universal
hash functions over stable 64-bit token-feature hashes, so signatures are
deterministic across processes.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import InvalidParameterError
from repro.utils.rng import make_rng, stable_hash

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


class MinHasher:
    """Generates MinHash signatures with ``num_perm`` permutations."""

    def __init__(self, num_perm: int = 128, *, seed: int = 1) -> None:
        if num_perm < 1:
            raise InvalidParameterError("num_perm must be >= 1")
        rng = make_rng(seed)
        self._a = rng.integers(1, _MERSENNE_PRIME, size=num_perm, dtype=np.uint64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=num_perm, dtype=np.uint64)
        self._num_perm = num_perm

    @property
    def num_perm(self) -> int:
        return self._num_perm

    def signature(self, features: Iterable[str]) -> np.ndarray:
        """MinHash signature of a feature set, shape ``(num_perm,)``.

        Empty feature sets get the all-max signature (similar to nothing).
        """
        values = [stable_hash(f, salt="minhash") & _MAX_HASH for f in features]
        if not values:
            return np.full(self._num_perm, _MAX_HASH, dtype=np.uint64)
        hashes = np.asarray(values, dtype=np.uint64)
        # (a * x + b) mod p, then truncate; vectorized over permutations.
        products = (
            np.outer(self._a, hashes) + self._b[:, None]
        ) % _MERSENNE_PRIME
        return (products & _MAX_HASH).min(axis=1).astype(np.uint64)

    @staticmethod
    def estimate_jaccard(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Unbiased Jaccard estimate: fraction of agreeing components."""
        if sig_a.shape != sig_b.shape:
            raise InvalidParameterError("signatures must have equal length")
        return float(np.mean(sig_a == sig_b))
