"""Exact cosine top-k streaming index — the Faiss substitute.

The paper generates the token stream with a GPU Faiss flat index probed
in batches of 100 (§VIII-A3). An exact flat index returns vocabulary
tokens in exactly descending cosine order; this module reproduces that
stream with a vectorized NumPy scan. Batching is kept (similarities are
argpartitioned lazily in blocks) so probing cost is incremental, the way
Koios consumes it: most streams are abandoned long before exhaustion once
similarities fall below ``alpha``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.embedding.provider import EmbeddingProvider, VectorStore, normalize


class ExactCosineIndex:
    """Streams vocabulary tokens by exact descending cosine similarity.

    Parameters
    ----------
    store:
        The unit-normalized vocabulary vector store.
    provider:
        Embedding provider used to embed probe tokens (probe tokens need
        not be in the store).
    batch_size:
        Tokens are released in sorted blocks of this size; mirrors the
        paper's batched Faiss probing and keeps the per-probe cost at one
        O(|D|) scan plus O(|D| log batch) incremental partial sorts.
    """

    def __init__(
        self,
        store: VectorStore,
        provider: EmbeddingProvider,
        *,
        batch_size: int = 100,
    ) -> None:
        self._store = store
        self._provider = provider
        self._batch_size = max(1, int(batch_size))

    @property
    def store(self) -> VectorStore:
        return self._store

    @property
    def batch_size(self) -> int:
        return self._batch_size

    def extend(self, tokens) -> int:
        """Embed and index tokens the store does not know yet.

        Live collection mutation calls this so inserted vocabulary
        streams immediately (a row absent from the store can never be
        similar to anything). Returns the number of rows added.
        """
        return self._store.extend(tokens)

    def probe_similarities(self, token: str) -> np.ndarray | None:
        """Clipped cosine of ``token`` against every store row.

        One float32 matrix-vector product — numerically the exact
        computation :meth:`stream` releases tuple by tuple, exposed as a
        block so the columnar drain can sort/filter it vectorized.
        Returns None for probes without an embedding (their stream is
        empty) and for an empty store.
        """
        if len(self._store) == 0 or not self._provider.covers(token):
            return None
        probe = normalize(self._provider.vector(token))
        return np.clip(self._store.matrix @ probe, 0.0, 1.0)

    def row_token_ids(self, table) -> np.ndarray:
        """Store row -> id in ``table`` (-1 for rows outside it).

        The store may hold stale rows for tokens that left the
        collection vocabulary (see :meth:`VectorStore.extend`); mapping
        rows through the collection's token table is exactly the
        vocabulary filter the reference drain applies per tuple. Cached
        per (table, store size) — the store only ever grows. The cache
        holds the table object itself (identity compare): keying by
        ``id()`` alone would let a garbage-collected table's reused id
        serve a stale mapping.
        """
        cached = getattr(self, "_row_ids_cache", None)
        if (
            cached is not None
            and cached[0] is table
            and cached[1] == len(self._store)
        ):
            return cached[2]
        row_ids = table.encode(self._store.tokens)
        self._row_ids_cache = (table, len(self._store), row_ids)
        return row_ids

    def stream(self, token: str) -> Iterator[tuple[str, float]]:
        """Yield ``(vocab_token, cosine)`` in non-increasing order.

        Out-of-vocabulary probes (no embedding) yield nothing; negative
        cosines are clamped to zero, matching the [0, 1] similarity range
        of Definition 1 (callers stop at ``alpha > 0`` anyway).
        """
        sims = self.probe_similarities(token)
        if sims is None:
            return
        yield from self._stream_sorted(sims)

    def _stream_sorted(self, sims: np.ndarray) -> Iterator[tuple[str, float]]:
        size = sims.shape[0]
        batch = self._batch_size
        if size > batch:
            # Cheaply split off the top `batch` rows first: streams are
            # usually abandoned at `alpha` after a handful of tuples, so
            # the full sort below is frequently never reached.
            top = np.argpartition(-sims, batch - 1)[:batch]
            top = top[np.argsort(-sims[top], kind="stable")]
            for row in top:
                yield self._store.token_at(int(row)), float(sims[row])
            order = np.argsort(-sims, kind="stable")
            released = set(int(r) for r in top)
            for row in order:
                if int(row) in released:
                    continue
                yield self._store.token_at(int(row)), float(sims[row])
            return
        order = np.argsort(-sims, kind="stable")
        for row in order:
            yield self._store.token_at(int(row)), float(sims[row])


class BatchedProbeLog:
    """Counts index probes and streamed tuples for instrumentation."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.probes = 0
        self.tuples_streamed = 0

    def stream(self, token: str) -> Iterator[tuple[str, float]]:
        self.probes += 1
        for pair in self._inner.stream(token):
            self.tuples_streamed += 1
            yield pair
