"""Exact cosine top-k streaming index — the Faiss substitute.

The paper generates the token stream with a GPU Faiss flat index probed
in batches of 100 (§VIII-A3). An exact flat index returns vocabulary
tokens in exactly descending cosine order; this module reproduces that
stream with a vectorized NumPy scan. Batching is kept (similarities are
argpartitioned lazily in blocks) so probing cost is incremental, the way
Koios consumes it: most streams are abandoned long before exhaustion once
similarities fall below ``alpha``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.embedding.provider import EmbeddingProvider, VectorStore, normalize


class ExactCosineIndex:
    """Streams vocabulary tokens by exact descending cosine similarity.

    Parameters
    ----------
    store:
        The unit-normalized vocabulary vector store.
    provider:
        Embedding provider used to embed probe tokens (probe tokens need
        not be in the store).
    batch_size:
        Tokens are released in sorted blocks of this size; mirrors the
        paper's batched Faiss probing and keeps the per-probe cost at one
        O(|D|) scan plus O(|D| log batch) incremental partial sorts.
    """

    def __init__(
        self,
        store: VectorStore,
        provider: EmbeddingProvider,
        *,
        batch_size: int = 100,
    ) -> None:
        self._store = store
        self._provider = provider
        self._batch_size = max(1, int(batch_size))

    @property
    def store(self) -> VectorStore:
        return self._store

    def extend(self, tokens) -> int:
        """Embed and index tokens the store does not know yet.

        Live collection mutation calls this so inserted vocabulary
        streams immediately (a row absent from the store can never be
        similar to anything). Returns the number of rows added.
        """
        return self._store.extend(tokens)

    def stream(self, token: str) -> Iterator[tuple[str, float]]:
        """Yield ``(vocab_token, cosine)`` in non-increasing order.

        Out-of-vocabulary probes (no embedding) yield nothing; negative
        cosines are clamped to zero, matching the [0, 1] similarity range
        of Definition 1 (callers stop at ``alpha > 0`` anyway).
        """
        if len(self._store) == 0 or not self._provider.covers(token):
            return
        probe = normalize(self._provider.vector(token))
        sims = self._store.matrix @ probe
        yield from self._stream_sorted(np.clip(sims, 0.0, 1.0))

    def _stream_sorted(self, sims: np.ndarray) -> Iterator[tuple[str, float]]:
        size = sims.shape[0]
        batch = self._batch_size
        if size > batch:
            # Cheaply split off the top `batch` rows first: streams are
            # usually abandoned at `alpha` after a handful of tuples, so
            # the full sort below is frequently never reached.
            top = np.argpartition(-sims, batch - 1)[:batch]
            top = top[np.argsort(-sims[top], kind="stable")]
            for row in top:
                yield self._store.token_at(int(row)), float(sims[row])
            order = np.argsort(-sims, kind="stable")
            released = set(int(r) for r in top)
            for row in order:
                if int(row) in released:
                    continue
                yield self._store.token_at(int(row)), float(sims[row])
            return
        order = np.argsort(-sims, kind="stable")
        for row in order:
            yield self._store.token_at(int(row)), float(sims[row])


class BatchedProbeLog:
    """Counts index probes and streamed tuples for instrumentation."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.probes = 0
        self.tuples_streamed = 0

    def stream(self, token: str) -> Iterator[tuple[str, float]]:
        self.probes += 1
        for pair in self._inner.stream(token):
            self.tuples_streamed += 1
            yield pair
