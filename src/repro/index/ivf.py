"""Approximate IVF (inverted-file) vector index — the ablation substitute
for a non-exact Faiss configuration.

The paper's exactness guarantee holds "as long as the index returns exact
results" (§VIII-E). This index intentionally violates that premise the
same way a Faiss IVF index with ``nprobe < nlist`` does: vectors are
clustered with a few rounds of Lloyd's k-means, and a probe only scans the
``nprobe`` nearest clusters. The ablation bench measures the recall Koios
loses as a function of ``nprobe``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.embedding.provider import EmbeddingProvider, VectorStore, normalize
from repro.errors import InvalidParameterError
from repro.utils.rng import make_rng


class IVFCosineIndex:
    """Cluster-pruned approximate cosine streaming index."""

    def __init__(
        self,
        store: VectorStore,
        provider: EmbeddingProvider,
        *,
        nlist: int = 16,
        nprobe: int = 4,
        kmeans_iters: int = 5,
        seed: int = 7,
    ) -> None:
        if nlist < 1 or nprobe < 1:
            raise InvalidParameterError("nlist and nprobe must be >= 1")
        self._store = store
        self._provider = provider
        self._nlist = min(nlist, max(1, len(store)))
        self._nprobe = min(nprobe, self._nlist)
        self._centroids, self._assignments = self._train(kmeans_iters, seed)
        self._cluster_rows: list[np.ndarray] = [
            np.where(self._assignments == c)[0] for c in range(self._nlist)
        ]

    def _train(self, iters: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
        matrix = self._store.matrix
        size = matrix.shape[0]
        if size == 0:
            return (
                np.zeros((0, self._store.dim), dtype=np.float32),
                np.zeros(0, dtype=np.int64),
            )
        rng = make_rng(seed)
        centroids = matrix[rng.choice(size, size=self._nlist, replace=False)].copy()
        assignments = np.zeros(size, dtype=np.int64)
        for _ in range(max(1, iters)):
            sims = matrix @ centroids.T
            assignments = sims.argmax(axis=1)
            for c in range(self._nlist):
                members = matrix[assignments == c]
                if len(members):
                    centroids[c] = normalize(members.mean(axis=0))
        return centroids, assignments

    @property
    def nprobe(self) -> int:
        return self._nprobe

    def stream(self, token: str) -> Iterator[tuple[str, float]]:
        """Descending cosine stream over the ``nprobe`` nearest clusters.

        The order *within* the scanned subset is exact; tokens in
        unscanned clusters are silently missed — that is the approximation
        under study.
        """
        if len(self._store) == 0 or not self._provider.covers(token):
            return
        probe = normalize(self._provider.vector(token))
        centroid_sims = self._centroids @ probe
        probe_clusters = np.argsort(-centroid_sims)[: self._nprobe]
        rows = np.concatenate(
            [self._cluster_rows[int(c)] for c in probe_clusters]
        )
        if rows.size == 0:
            return
        sims = np.clip(self._store.matrix[rows] @ probe, 0.0, 1.0)
        order = np.argsort(-sims, kind="stable")
        for idx in order:
            yield self._store.token_at(int(rows[idx])), float(sims[idx])
