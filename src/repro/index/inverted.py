"""The inverted index ``Is``: vocabulary token -> posting list of set ids.

Built on the fly and held in an in-memory hash map, exactly as the paper
implements it (§VIII-A3). Posting-list length statistics are exposed
because the paper repeatedly attributes WDC's behaviour to its
"excessively large posting lists".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.datasets.collection import SetCollection
from repro.index.interning import (
    CSRPostings,
    TokenTable,
    csr_from_index,
    csr_from_lengths,
)


@dataclass(frozen=True)
class PostingStats:
    """Posting-list length distribution of an inverted index."""

    num_tokens: int
    total_postings: int
    max_list_length: int
    avg_list_length: float


class InvertedIndex:
    """Maps each vocabulary token to the ids of the sets containing it."""

    def __init__(
        self,
        collection: SetCollection,
        set_ids: Sequence[int] | None = None,
    ) -> None:
        """Index ``collection``, optionally restricted to ``set_ids``
        (used to build one index per partition)."""
        postings: dict[str, list[int]] = {}
        ids = collection.ids() if set_ids is None else set_ids
        for set_id in ids:
            for token in collection[set_id]:
                postings.setdefault(token, []).append(set_id)
        self._postings = postings
        self._csr_cache: tuple[TokenTable, CSRPostings] | None = None
        self._adopted_csr: tuple[list[str], CSRPostings] | None = None

    @classmethod
    def from_postings(
        cls, postings: Mapping[str, Sequence[int]]
    ) -> "InvertedIndex":
        """Adopt prebuilt posting lists (snapshot load, delta overlays)
        instead of re-indexing a collection. Lists are copied so the
        index owns its postings."""
        index = cls.__new__(cls)
        index._postings = {
            token: list(set_ids) for token, set_ids in postings.items()
        }
        index._csr_cache = None
        index._adopted_csr = None
        return index

    def adopt_csr(self, tokens: list[str], lengths, members) -> None:
        """Pre-seed the columnar view from snapshot arrays.

        ``tokens`` is the sorted token table the ``lengths``/``members``
        arrays are aligned to (the snapshot's token section);
        :meth:`columnar` hands these arrays out directly when asked for
        a matching table, skipping the Python CSR-building pass on the
        snapshot cold-start path.
        """
        self._adopted_csr = (list(tokens), csr_from_lengths(lengths, members))

    def columnar(self, table: TokenTable) -> CSRPostings:
        """The CSR posting view aligned to ``table`` (cached).

        The index is immutable, so the view is built once per table; a
        view adopted from a snapshot via :meth:`adopt_csr` is reused
        when its token section matches ``table``.
        """
        cached = self._csr_cache
        if cached is not None and cached[0] is table:
            return cached[1]
        if (
            self._adopted_csr is not None
            and self._adopted_csr[0] == table.tokens
        ):
            csr = self._adopted_csr[1]
        else:
            csr = csr_from_index(self, table)
        # Hold the table itself: an id()-keyed cache could alias a
        # garbage-collected table's reused id.
        self._csr_cache = (table, csr)
        return csr

    def postings(self) -> dict[str, list[int]]:
        """A copy of the full ``token -> set ids`` map (snapshot save)."""
        return {token: list(ids) for token, ids in self._postings.items()}

    def __contains__(self, token: str) -> bool:
        return token in self._postings

    def __len__(self) -> int:
        return len(self._postings)

    def sets_containing(self, token: str) -> list[int]:
        """Posting list for ``token`` (empty list if absent)."""
        return self._postings.get(token, [])

    def stats(self) -> PostingStats:
        lengths = [len(lst) for lst in self._postings.values()]
        if not lengths:
            return PostingStats(0, 0, 0, 0.0)
        return PostingStats(
            num_tokens=len(lengths),
            total_postings=sum(lengths),
            max_list_length=max(lengths),
            avg_list_length=sum(lengths) / len(lengths),
        )
