"""The inverted index ``Is``: vocabulary token -> posting list of set ids.

Built on the fly and held in an in-memory hash map, exactly as the paper
implements it (§VIII-A3). Posting-list length statistics are exposed
because the paper repeatedly attributes WDC's behaviour to its
"excessively large posting lists".

Two adoption paths avoid the build entirely:

* :meth:`InvertedIndex.from_postings` adopts a prebuilt dict of lists
  (``own=True`` skips even the defensive copy when the caller hands over
  freshly built lists it never reuses);
* :meth:`InvertedIndex.from_csr` adopts snapshot-style CSR arrays
  verbatim — the dict-of-lists view is *never* materialized unless a
  dict consumer (reference engine, snapshot save) actually asks, which
  is what keeps memmap-backed cold starts allocation-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.datasets.collection import SetCollection
from repro.index.interning import (
    CSRPostings,
    TokenTable,
    csr_from_index,
    csr_from_lengths,
)


@dataclass(frozen=True)
class PostingStats:
    """Posting-list length distribution of an inverted index."""

    num_tokens: int
    total_postings: int
    max_list_length: int
    avg_list_length: float


class InvertedIndex:
    """Maps each vocabulary token to the ids of the sets containing it."""

    def __init__(
        self,
        collection: SetCollection,
        set_ids: Sequence[int] | None = None,
    ) -> None:
        """Index ``collection``, optionally restricted to ``set_ids``
        (used to build one index per partition)."""
        postings: dict[str, list[int]] = {}
        ids = collection.ids() if set_ids is None else set_ids
        for set_id in ids:
            for token in collection[set_id]:
                postings.setdefault(token, []).append(set_id)
        self._postings: dict[str, list[int]] | None = postings
        self._csr_cache: tuple[TokenTable, CSRPostings] | None = None
        self._adopted_csr: tuple[list[str], CSRPostings] | None = None
        self._csr_token_ids: dict[str, int] | None = None

    @classmethod
    def from_postings(
        cls, postings: Mapping[str, Sequence[int]], *, own: bool = False
    ) -> "InvertedIndex":
        """Adopt prebuilt posting lists (snapshot load, delta overlays)
        instead of re-indexing a collection.

        Lists are copied so the index owns its postings — unless
        ``own=True``, which adopts the mapping *and its lists* verbatim.
        Use ``own`` only for freshly built structures the caller never
        touches again (the mapping must be a real ``dict`` of ``list``s);
        mutating them afterwards corrupts the index.
        """
        index = cls.__new__(cls)
        if own:
            index._postings = postings  # type: ignore[assignment]
        else:
            index._postings = {
                token: list(set_ids) for token, set_ids in postings.items()
            }
        index._csr_cache = None
        index._adopted_csr = None
        index._csr_token_ids = None
        return index

    @classmethod
    def from_csr(
        cls, tokens: Sequence[str], csr: CSRPostings
    ) -> "InvertedIndex":
        """Adopt a CSR posting view aligned to ``tokens`` (the sorted
        token table) without materializing any per-token Python lists.

        This is the snapshot cold-start path: the columnar engine asks
        for :meth:`columnar` and gets ``csr`` back verbatim; dict-style
        consumers (``sets_containing``, :meth:`postings`) slice lists
        out of the arrays lazily. ``tokens`` is adopted by reference —
        do not mutate it afterwards.
        """
        index = cls.__new__(cls)
        index._postings = None
        index._csr_cache = None
        tokens = tokens if isinstance(tokens, list) else list(tokens)
        index._adopted_csr = (tokens, csr)
        index._csr_token_ids = None
        return index

    def adopt_csr(self, tokens: list[str], lengths, members) -> None:
        """Pre-seed the columnar view from snapshot arrays.

        ``tokens`` is the sorted token table the ``lengths``/``members``
        arrays are aligned to (the snapshot's token section);
        :meth:`columnar` hands these arrays out directly when asked for
        a matching table, skipping the Python CSR-building pass on the
        snapshot cold-start path.
        """
        self._adopted_csr = (list(tokens), csr_from_lengths(lengths, members))
        self._csr_token_ids = None

    def columnar(self, table: TokenTable) -> CSRPostings:
        """The CSR posting view aligned to ``table`` (cached).

        The index is immutable, so the view is built once per table; a
        view adopted from a snapshot via :meth:`from_csr` /
        :meth:`adopt_csr` is reused when its token section matches
        ``table``.
        """
        cached = self._csr_cache
        if cached is not None and cached[0] is table:
            return cached[1]
        if (
            self._adopted_csr is not None
            and self._adopted_csr[0] == table.tokens
        ):
            csr = self._adopted_csr[1]
        else:
            csr = csr_from_index(self, table)
        # Hold the table itself: an id()-keyed cache could alias a
        # garbage-collected table's reused id.
        self._csr_cache = (table, csr)
        return csr

    def _postings_map(self) -> dict[str, list[int]]:
        """The dict-of-lists view, materialized from the adopted CSR on
        first dict-style access (reference engine, snapshot save)."""
        if self._postings is None:
            tokens, csr = self._adopted_csr  # type: ignore[misc]
            offsets, sets = csr.offsets, csr.sets
            self._postings = {
                token: sets[offsets[i]:offsets[i + 1]].tolist()
                for i, token in enumerate(tokens)
                if offsets[i + 1] > offsets[i]
            }
        return self._postings

    def _token_ids(self) -> dict[str, int]:
        if self._csr_token_ids is None:
            tokens = self._adopted_csr[0]  # type: ignore[index]
            self._csr_token_ids = {t: i for i, t in enumerate(tokens)}
        return self._csr_token_ids

    def postings(self) -> dict[str, list[int]]:
        """A copy of the full ``token -> set ids`` map (snapshot save)."""
        return {
            token: list(ids) for token, ids in self._postings_map().items()
        }

    def __contains__(self, token: str) -> bool:
        if self._postings is not None:
            return token in self._postings
        token_id = self._token_ids().get(token, -1)
        if token_id < 0:
            return False
        offsets = self._adopted_csr[1].offsets  # type: ignore[index]
        return bool(offsets[token_id + 1] > offsets[token_id])

    def __len__(self) -> int:
        if self._postings is not None:
            return len(self._postings)
        offsets = self._adopted_csr[1].offsets  # type: ignore[index]
        return int(np.count_nonzero(np.diff(offsets)))

    def sets_containing(self, token: str) -> list[int]:
        """Posting list for ``token`` (empty list if absent)."""
        if self._postings is not None:
            return self._postings.get(token, [])
        token_id = self._token_ids().get(token, -1)
        if token_id < 0:
            return []
        csr = self._adopted_csr[1]  # type: ignore[index]
        start = csr.offsets[token_id]
        end = csr.offsets[token_id + 1]
        return csr.sets[start:end].tolist()

    def stats(self) -> PostingStats:
        if self._postings is None:
            offsets = self._adopted_csr[1].offsets  # type: ignore[index]
            lengths_arr = np.diff(offsets)
            lengths_arr = lengths_arr[lengths_arr > 0]
            if lengths_arr.size == 0:
                return PostingStats(0, 0, 0, 0.0)
            total = int(lengths_arr.sum())
            return PostingStats(
                num_tokens=int(lengths_arr.size),
                total_postings=total,
                max_list_length=int(lengths_arr.max()),
                avg_list_length=total / int(lengths_arr.size),
            )
        lengths = [len(lst) for lst in self._postings.values()]
        if not lengths:
            return PostingStats(0, 0, 0, 0.0)
        return PostingStats(
            num_tokens=len(lengths),
            total_postings=sum(lengths),
            max_list_length=max(lengths),
            avg_list_length=sum(lengths) / len(lengths),
        )
