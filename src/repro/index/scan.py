"""A brute-force token index over any similarity function.

Scores the entire vocabulary per probe and yields it in descending
order — O(|D|) per probe, no preprocessing, works with *any*
:class:`~repro.sim.base.SimilarityFunction`. The right choice for small
vocabularies, pinned-similarity experiments, and as a correctness
reference for the accelerated indexes (exact cosine, prefix-filter
Jaccard, MinHash LSH), which must produce the same stream above their
respective thresholds.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.sim.base import SimilarityFunction


class ScanTokenIndex:
    """Exact descending-similarity stream via a full vocabulary scan."""

    def __init__(
        self, vocabulary: Iterable[str], sim: SimilarityFunction
    ) -> None:
        self._tokens = sorted(set(vocabulary))
        self._sim = sim

    def __len__(self) -> int:
        return len(self._tokens)

    def stream(self, token: str) -> Iterator[tuple[str, float]]:
        """Yield ``(vocabulary token, similarity)`` in non-increasing
        order; zero-similarity tokens are suppressed."""
        scored = [
            (vocab_token, self._sim.score(token, vocab_token))
            for vocab_token in self._tokens
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        for vocab_token, score in scored:
            if score <= 0.0:
                return
            yield vocab_token, score
