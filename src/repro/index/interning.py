"""Token-id interning and CSR posting views — the columnar substrate.

The reference engine addresses everything by token *strings*: posting
lists are ``dict[str, list[int]]``, the stream is ``(str, str, float)``
tuples, and candidate bookkeeping hashes strings on every probe. The
columnar fast path (:mod:`repro.core.fastpath`) replaces those hash
probes with integer indexing, which requires one shared coordinate
system: the :class:`TokenTable` interns a vocabulary to dense integer
ids (sorted token order, so the table is reproducible from the
vocabulary alone and identical to the snapshot format's token section),
and :class:`CSRPostings` lays an inverted index out as two NumPy arrays
in CSR style — ``offsets[token_id] : offsets[token_id + 1]`` slices the
posting list of a token out of one flat ``sets`` array.

A useful side effect of the CSR layout: every ``(token, set)``
membership pair owns exactly one global position in ``sets``, so a
boolean array over positions is a dense "is this member token matched
in this candidate" table — the structure that lets refinement replace
per-candidate ``set.add``/``in`` bookkeeping with vectorized masks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


class TokenTable:
    """Dense integer ids for a fixed vocabulary, in sorted token order."""

    __slots__ = ("_tokens", "_ids")

    def __init__(self, tokens: Sequence[str]) -> None:
        """``tokens`` must be unique and sorted (the canonical id order
        shared with the snapshot format); use :meth:`from_vocabulary` for
        an arbitrary token set."""
        self._tokens: list[str] = list(tokens)
        self._ids: dict[str, int] = {
            token: i for i, token in enumerate(self._tokens)
        }

    @classmethod
    def from_vocabulary(cls, vocabulary: Iterable[str]) -> "TokenTable":
        return cls(sorted(vocabulary))

    @property
    def tokens(self) -> list[str]:
        """The id -> token list (do not mutate)."""
        return self._tokens

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._ids

    def id_of(self, token: str, default: int = -1) -> int:
        """The id of ``token``, or ``default`` when not interned."""
        return self._ids.get(token, default)

    def token_at(self, token_id: int) -> str:
        return self._tokens[token_id]

    def encode(self, tokens: Iterable[str]) -> np.ndarray:
        """Ids for ``tokens`` (-1 for tokens outside the table)."""
        get = self._ids.get
        return np.fromiter(
            (get(token, -1) for token in tokens), dtype=np.int64
        )


def token_table_for(collection) -> TokenTable:
    """The shared :class:`TokenTable` of a collection's vocabulary.

    Cached on the collection object keyed by its live ``version`` (when
    mutable), so every shard engine of a pool — and every partition of
    each engine — interns against one table object and the stream's
    column cache is shared instead of rebuilt per shard.
    """
    version = getattr(collection, "version", None)
    cached = getattr(collection, "_token_table_cache", None)
    if cached is not None and cached[0] == version:
        return cached[1]
    table = TokenTable.from_vocabulary(collection.vocabulary)
    collection._token_table_cache = (version, table)
    return table


@dataclass(frozen=True)
class CSRPostings:
    """One inverted index as flat arrays aligned to a :class:`TokenTable`.

    Attributes
    ----------
    offsets:
        ``int64[len(table) + 1]``; token ``t``'s posting list is
        ``sets[offsets[t]:offsets[t + 1]]`` (empty for absent tokens).
    sets:
        ``int64[total_postings]`` of global set ids, in the same order
        the dict-backed index stores them (ascending ids).
    """

    offsets: np.ndarray
    sets: np.ndarray

    @property
    def total_postings(self) -> int:
        return int(self.sets.shape[0])

    def set_sizes(self) -> np.ndarray:
        """``int64[max_set_id + 1]`` member counts per set id.

        Every member token of an indexed set has a posting entry, so the
        per-id entry count *is* the set cardinality.
        """
        if self.sets.size == 0:
            return np.zeros(0, dtype=np.int64)
        return np.bincount(self.sets)

    def nbytes(self) -> int:
        return int(self.offsets.nbytes + self.sets.nbytes)


def csr_from_lengths(
    lengths: np.ndarray, members: np.ndarray
) -> CSRPostings:
    """Adopt snapshot-style ``(per-token lengths, flat members)`` arrays."""
    offsets = np.zeros(len(lengths) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    return CSRPostings(
        offsets=offsets, sets=np.ascontiguousarray(members, dtype=np.int64)
    )


def csr_restrict(
    csr: CSRPostings, keep_ids: Iterable[int], num_slots: int
) -> CSRPostings:
    """``csr`` restricted to the set ids in ``keep_ids``.

    One vectorized boolean-mask pass over the flat ``sets`` array —
    per-token order (ascending ids) is preserved, so the result is
    bitwise-identical to filtering each posting list in Python. This is
    what partition/shard engines use to carve their slice out of a
    snapshot's full CSR arrays without an O(total postings) Python scan.
    """
    mask = np.zeros(num_slots, dtype=bool)
    keep_arr = np.fromiter(
        (int(i) for i in keep_ids), dtype=np.int64
    ) if not isinstance(keep_ids, np.ndarray) else keep_ids
    mask[keep_arr] = True
    keep = mask[csr.sets]
    # prefix[i] = how many of the first i entries survive; indexing it by
    # the old offsets yields the new offsets, correct even for runs of
    # empty posting lists (np.add.reduceat is not).
    prefix = np.zeros(len(keep) + 1, dtype=np.int64)
    np.cumsum(keep, out=prefix[1:])
    return CSRPostings(
        offsets=prefix[csr.offsets],
        sets=np.ascontiguousarray(csr.sets[keep], dtype=np.int64),
    )


def csr_from_index(index, table: TokenTable) -> CSRPostings:
    """CSR view of any inverted index exposing ``sets_containing``.

    Works for :class:`~repro.index.inverted.InvertedIndex` and the
    store's delta views alike; the dedicated
    :meth:`~repro.index.inverted.InvertedIndex.columnar` fast path
    should be preferred when available (it caches, and adopts snapshot
    arrays without a Python pass).
    """
    offsets = np.zeros(len(table) + 1, dtype=np.int64)
    chunks: list[Sequence[int]] = []
    total = 0
    for token_id, token in enumerate(table.tokens):
        ids = index.sets_containing(token)
        total += len(ids)
        offsets[token_id + 1] = total
        if ids:
            chunks.append(ids)
    if total:
        sets = np.fromiter(
            (set_id for chunk in chunks for set_id in chunk),
            dtype=np.int64,
            count=total,
        )
    else:
        sets = np.zeros(0, dtype=np.int64)
    return CSRPostings(offsets=offsets, sets=sets)
