"""Jaccard token indexes: an exact scan, a prefix-filter-accelerated
exact index, and a MinHash-LSH-accelerated approximate one.

All satisfy the :class:`repro.index.base.TokenIndex` protocol so they can
back the token stream when the element similarity is Jaccard on q-grams —
the configuration of the paper's SilkMoth comparison (§VIII-B). The
prefix-filter index is the faithful stand-in for the paper's precomputed
token stream ("using the set similarity join techniques [9]").
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Iterator

from repro.errors import InvalidParameterError
from repro.index.minhash import MinHasher
from repro.sim.jaccard import QGramJaccardSimilarity, jaccard


class ExactJaccardIndex:
    """Exact descending-Jaccard stream via a full vocabulary scan.

    Plays the role of the precomputed set-similarity join the paper uses
    to build the token stream for the SilkMoth experiment: exact, and
    amortized over the whole stream by sorting once per probe.
    """

    def __init__(
        self,
        vocabulary: Iterable[str],
        similarity: QGramJaccardSimilarity | None = None,
    ) -> None:
        self._similarity = similarity or QGramJaccardSimilarity(q=3)
        self._tokens = sorted(set(vocabulary))

    def stream(self, token: str) -> Iterator[tuple[str, float]]:
        probe = self._similarity.features(token)
        scored = [
            (vocab_token, jaccard(probe, self._similarity.features(vocab_token)))
            for vocab_token in self._tokens
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        for vocab_token, score in scored:
            if score <= 0.0:
                return
            yield vocab_token, score


class PrefixJaccardIndex:
    """Exact threshold-bounded Jaccard stream via prefix filtering.

    Implements the classic set-similarity-join candidate generation: the
    grams of every vocabulary token are ordered rarest-first; the prefix
    of length ``|f| - ceil(alpha * |f|) + 1`` is indexed, and a probe
    only verifies tokens sharing a prefix gram with its own prefix. Any
    pair with Jaccard >= ``alpha`` must collide (prefix-filter
    principle), so the stream is *exact above alpha* — precisely the
    part the token stream consumes — at a fraction of the full-scan
    cost. This reproduces §VIII-B's precomputed token stream.
    """

    def __init__(
        self,
        vocabulary: Iterable[str],
        *,
        alpha: float,
        similarity: QGramJaccardSimilarity | None = None,
    ) -> None:
        if not (0.0 < alpha <= 1.0):
            raise InvalidParameterError("alpha must be in (0, 1]")
        self._alpha = alpha
        self._similarity = similarity or QGramJaccardSimilarity(q=3)
        self._tokens = sorted(set(vocabulary))
        self._token_set = set(self._tokens)
        self._gram_freq: Counter = Counter()
        for token in self._tokens:
            self._gram_freq.update(self._similarity.features(token))
        self._prefix_index: dict[str, list[str]] = {}
        for token in self._tokens:
            for gram in self._prefix(token):
                self._prefix_index.setdefault(gram, []).append(token)

    @property
    def alpha(self) -> float:
        return self._alpha

    def extend(self, tokens: Iterable[str]) -> int:
        """Index any ``tokens`` not yet in the vocabulary.

        Gram frequencies are deliberately *not* recomputed: the prefix
        principle only needs probe and index to agree on one global gram
        order, and freezing the construction-time frequencies keeps
        every already-indexed prefix valid. Returns the number of tokens
        added.
        """
        fresh = [t for t in sorted(set(tokens)) if t not in self._token_set]
        for token in fresh:
            self._token_set.add(token)
            self._tokens.append(token)
            for gram in self._prefix(token):
                self._prefix_index.setdefault(gram, []).append(token)
        return len(fresh)

    def _prefix(self, token: str) -> list[str]:
        grams = sorted(
            self._similarity.features(token),
            key=lambda g: (self._gram_freq[g], g),
        )
        required = math.ceil(self._alpha * len(grams))
        return grams[: max(1, len(grams) - required + 1)]

    def stream(self, token: str) -> Iterator[tuple[str, float]]:
        """Descending exact-Jaccard stream of all tokens >= alpha."""
        probe = self._similarity.features(token)
        candidates: set[str] = set()
        for gram in self._prefix(token):
            candidates.update(self._prefix_index.get(gram, ()))
        scored = [
            (candidate, jaccard(probe, self._similarity.features(candidate)))
            for candidate in candidates
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        for candidate, score in scored:
            if score < self._alpha:
                return
            yield candidate, score


class MinHashLSHIndex:
    """Banded MinHash LSH with exact rescoring.

    Candidates are retrieved from LSH bands (union over bands), rescored
    with exact Jaccard, and streamed in descending exact order. The index
    is *approximate*: pairs whose signatures collide in no band are
    missed, with miss probability ``(1 - s^r)^b`` for true Jaccard ``s``.
    Koios remains exact "as long as the index returns exact results"
    (§VIII-E); this index exists to study that trade-off.
    """

    def __init__(
        self,
        vocabulary: Iterable[str],
        *,
        num_perm: int = 128,
        bands: int = 32,
        similarity: QGramJaccardSimilarity | None = None,
        seed: int = 1,
    ) -> None:
        if num_perm % bands != 0:
            raise InvalidParameterError("bands must divide num_perm")
        self._similarity = similarity or QGramJaccardSimilarity(q=3)
        self._hasher = MinHasher(num_perm, seed=seed)
        self._bands = bands
        self._rows_per_band = num_perm // bands
        self._tokens = sorted(set(vocabulary))
        self._tables: list[dict[tuple[int, ...], list[str]]] = [
            {} for _ in range(bands)
        ]
        for vocab_token in self._tokens:
            sig = self._hasher.signature(self._similarity.features(vocab_token))
            for band, key in enumerate(self._band_keys(sig)):
                self._tables[band].setdefault(key, []).append(vocab_token)

    def _band_keys(self, signature) -> list[tuple[int, ...]]:
        rows = self._rows_per_band
        return [
            tuple(int(v) for v in signature[band * rows:(band + 1) * rows])
            for band in range(self._bands)
        ]

    def candidates(self, token: str) -> set[str]:
        """Union of LSH band collisions for ``token``."""
        sig = self._hasher.signature(self._similarity.features(token))
        found: set[str] = set()
        for band, key in enumerate(self._band_keys(sig)):
            found.update(self._tables[band].get(key, ()))
        return found

    def stream(self, token: str) -> Iterator[tuple[str, float]]:
        probe = self._similarity.features(token)
        scored = [
            (candidate, jaccard(probe, self._similarity.features(candidate)))
            for candidate in self.candidates(token)
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        for candidate, score in scored:
            if score <= 0.0:
                return
            yield candidate, score
