"""Index substrate: inverted index ``Is``, token stream ``Ie``, exact
cosine vector index (Faiss substitute), MinHash LSH, and the pluggable
:class:`TokenIndex` protocol."""

from repro.index.base import TokenIndex
from repro.index.interning import (
    CSRPostings,
    TokenTable,
    csr_from_index,
    token_table_for,
)
from repro.index.inverted import InvertedIndex, PostingStats
from repro.index.ivf import IVFCosineIndex
from repro.index.lsh import (
    ExactJaccardIndex,
    MinHashLSHIndex,
    PrefixJaccardIndex,
)
from repro.index.minhash import MinHasher
from repro.index.scan import ScanTokenIndex
from repro.index.token_stream import (
    MaterializedTokenStream,
    StreamTuple,
    TokenStream,
)
from repro.index.vector_index import BatchedProbeLog, ExactCosineIndex

__all__ = [
    "BatchedProbeLog",
    "CSRPostings",
    "ExactCosineIndex",
    "TokenTable",
    "csr_from_index",
    "token_table_for",
    "IVFCosineIndex",
    "ExactJaccardIndex",
    "InvertedIndex",
    "MaterializedTokenStream",
    "MinHashLSHIndex",
    "PrefixJaccardIndex",
    "ScanTokenIndex",
    "MinHasher",
    "PostingStats",
    "StreamTuple",
    "TokenIndex",
    "TokenStream",
]
