"""Protocol for the pluggable per-token similarity index.

Koios is agnostic to the element similarity: any index that can stream
the vocabulary in descending similarity to a probe token can back the
token stream ``Ie`` (§IV — "for a given sim, any index that enables
efficient threshold-based similarity search is suitable", e.g. Faiss for
cosine or MinHash LSH for Jaccard). This protocol captures that contract.
"""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable


@runtime_checkable
class TokenIndex(Protocol):
    """Streams vocabulary tokens by descending similarity to a probe."""

    def stream(self, token: str) -> Iterator[tuple[str, float]]:
        """Yield ``(vocabulary_token, similarity)`` pairs in non-increasing
        similarity order. The stream may be infinite in principle; callers
        stop consuming once similarities drop below their ``alpha``.

        Probing with an out-of-vocabulary token yields an empty stream —
        the token-stream wrapper layers the paper's "a query token always
        matches itself" rule on top.
        """
        ...
