"""The token stream ``Ie`` (§IV).

``Ie`` merges, for every query element ``q``, the index's descending
similarity stream over the vocabulary ``D`` into one global stream of
``(q, token, sim)`` tuples in non-increasing ``sim`` order. It is
realized exactly as in the paper: one shared token index ``I`` plus a
priority queue ``P`` of size ``|Q|`` holding the next most similar unseen
token per query element; popping the top refills only the popped query
element's stream.

Two paper-mandated details:

* the stream stops per query element as soon as similarity falls below
  ``alpha``;
* on the very first probe, a query element yields *itself* with
  similarity 1.0 when it occurs in the collection vocabulary — this is
  how Koios initializes bounds with the vanilla overlap and how
  out-of-vocabulary tokens still contribute exact matches (§V).
"""

from __future__ import annotations

import heapq
import itertools
from typing import AbstractSet, Iterable, Iterator

from repro.errors import EmptyQueryError, InvalidParameterError
from repro.index.base import TokenIndex

#: One stream element: (query_token, vocabulary_token, similarity).
StreamTuple = tuple[str, str, float]


class TokenStream:
    """Merged descending-similarity stream over all query elements."""

    def __init__(
        self,
        query_tokens: Iterable[str],
        index: TokenIndex,
        alpha: float,
        *,
        collection_vocabulary: AbstractSet[str] | None = None,
    ) -> None:
        """
        Parameters
        ----------
        query_tokens:
            The query set ``Q`` (duplicates collapse).
        index:
            The shared per-token similarity index ``I``.
        alpha:
            Element similarity threshold; tuples below it are never
            emitted.
        collection_vocabulary:
            The vocabulary ``D`` of the searched collection. Used for the
            self-match rule and to drop index results that are not in the
            collection (relevant when one index serves many partitions).
        """
        if not (0.0 < alpha <= 1.0):
            raise InvalidParameterError("alpha must be in (0, 1]")
        query = sorted(set(query_tokens))
        if not query:
            raise EmptyQueryError("query set is empty")
        self._alpha = alpha
        self._vocab = collection_vocabulary
        self._index = index
        self._tiebreak = itertools.count()
        # heap of (-sim, tiebreak, q_token, vocab_token, source_iterator)
        self._heap: list[tuple[float, int, str, str, Iterator[tuple[str, float]]]] = []
        self.tuples_emitted = 0
        for q_token in query:
            self._refill(q_token, self._per_query_stream(q_token))

    def _per_query_stream(self, q_token: str) -> Iterator[tuple[str, float]]:
        """Descending stream for one query element, with the self-match
        rule applied and restricted to the collection vocabulary."""
        if self._vocab is None or q_token in self._vocab:
            yield q_token, 1.0
        for token, sim in self._index.stream(q_token):
            if token == q_token:
                continue  # self-match already emitted above
            if self._vocab is not None and token not in self._vocab:
                continue
            yield token, sim

    def _refill(
        self, q_token: str, source: Iterator[tuple[str, float]]
    ) -> None:
        """Buffer the next tuple of one query element's stream, unless the
        stream is exhausted or dropped below alpha."""
        entry = next(source, None)
        if entry is None:
            return
        token, sim = entry
        if sim < self._alpha:
            return  # descending stream: nothing below alpha matters
        heapq.heappush(
            self._heap, (-sim, next(self._tiebreak), q_token, token, source)
        )

    def __iter__(self) -> Iterator[StreamTuple]:
        return self

    def __next__(self) -> StreamTuple:
        if not self._heap:
            raise StopIteration
        neg_sim, _, q_token, token, source = heapq.heappop(self._heap)
        self._refill(q_token, source)
        self.tuples_emitted += 1
        return q_token, token, -neg_sim


class MaterializedTokenStream:
    """A fully drained token stream, replayable any number of times.

    Partitioned search (§VI) runs one Koios instance per partition; all
    instances consume the *same* tuple sequence, so the stream is drained
    once and replayed per partition instead of re-probing the index.

    A drained stream records the query tokens and ``alpha`` it was drained
    for. The serving layer drains one stream for the *union* of a
    micro-batch's query sets and hands each request its
    :meth:`restrict`-ed view, so a whole batch costs one index drain.
    """

    def __init__(
        self,
        tuples: list[StreamTuple],
        *,
        query_tokens: AbstractSet[str] | None = None,
        alpha: float | None = None,
        version: object | None = None,
    ) -> None:
        self._tuples = tuples
        self.query_tokens = (
            None if query_tokens is None else frozenset(query_tokens)
        )
        self.alpha = alpha
        #: Collection version at drain time (stamped by the serving
        #: layer). A backend refuses to replay a stream drained at a
        #: different version than it is about to search — the drained
        #: vocabulary filter would not match the live collection.
        self.version = version
        # Lazy derived views (never pickled; see __getstate__):
        # per-query-element tuple positions, and interned column arrays.
        self._positions: dict[str, "object"] | None = None
        self._columns: tuple[object, list[str], tuple] | None = None

    # Derived caches are process-local: the position index is cheap to
    # rebuild, and the column arrays are keyed by the *identity* of a
    # TokenTable that does not travel with the stream (cluster
    # coordinators ship drained streams to worker processes).
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_positions"] = None
        state["_columns"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)

    @classmethod
    def drain(
        cls,
        query_tokens: Iterable[str],
        index: TokenIndex,
        alpha: float,
        *,
        collection_vocabulary: AbstractSet[str] | None = None,
    ) -> "MaterializedTokenStream":
        query = frozenset(query_tokens)
        stream = TokenStream(
            query,
            index,
            alpha,
            collection_vocabulary=collection_vocabulary,
        )
        return cls(list(stream), query_tokens=query, alpha=alpha)

    def covers(self, query_tokens: AbstractSet[str], alpha: float) -> bool:
        """Whether this stream can serve a search for ``query_tokens`` at
        ``alpha``: it must have been drained for a superset of the query
        at exactly the same threshold (a looser alpha would smuggle
        below-threshold edges into refinement)."""
        if self.query_tokens is None or self.alpha is None:
            return False
        return self.alpha == alpha and query_tokens <= self.query_tokens

    def _position_index(self) -> dict[str, "object"]:
        """Lazy ``query_token -> ascending tuple positions`` index.

        Built once per drained stream (one O(n) pass); every
        :meth:`restrict` after that gathers positions instead of
        scanning the full union stream — the serving layer restricts a
        micro-batch's union drain once per request, so per-request cost
        drops from O(union stream) to O(restricted stream).
        """
        if self._positions is None:
            import numpy as np

            grouped: dict[str, list[int]] = {}
            for position, (q_token, _, _) in enumerate(self._tuples):
                grouped.setdefault(q_token, []).append(position)
            self._positions = {
                q_token: np.asarray(positions, dtype=np.int64)
                for q_token, positions in grouped.items()
            }
        return self._positions

    def restrict(
        self, query_tokens: AbstractSet[str]
    ) -> "MaterializedTokenStream":
        """The sub-stream of tuples belonging to ``query_tokens``.

        A subsequence of a non-increasing sequence is non-increasing, and
        per query element the retained tuples are exactly what a solo
        drain of that element produces — so the restriction is a valid
        stream for any query that is a subset of ``query_tokens``.
        """
        import numpy as np

        wanted = frozenset(query_tokens)
        if self.query_tokens is not None and wanted >= self.query_tokens:
            return self
        positions_by_q = self._position_index()
        parts = [
            positions_by_q[q_token]
            for q_token in sorted(wanted)
            if q_token in positions_by_q
        ]
        if parts:
            positions = np.sort(np.concatenate(parts))
            tuples = [self._tuples[i] for i in positions.tolist()]
        else:
            positions = np.zeros(0, dtype=np.int64)
            tuples = []
        restricted = MaterializedTokenStream(
            tuples,
            query_tokens=wanted,
            alpha=self.alpha,
            version=self.version,
        )
        restricted._adopt_restricted_columns(self, positions, wanted)
        return restricted

    def _adopt_restricted_columns(
        self, parent: "MaterializedTokenStream", positions, wanted
    ) -> None:
        """Slice the parent's cached column arrays for a restriction
        (query indexes are remapped to the restricted sorted query)."""
        if parent._columns is None:
            return
        import numpy as np

        table, parent_query, (q_col, t_col, s_col) = parent._columns
        sub_query = sorted(wanted)
        remap = np.full(len(parent_query), -1, dtype=np.int64)
        sub_index = {q_token: i for i, q_token in enumerate(sub_query)}
        for i, q_token in enumerate(parent_query):
            remap[i] = sub_index.get(q_token, -1)
        self._columns = (
            table,
            sub_query,
            (remap[q_col[positions]], t_col[positions], s_col[positions]),
        )

    def attach_columns(self, table, query_sorted: list[str], columns) -> None:
        """Adopt interned column arrays ``(q_index, token_id, sim)``
        aligned with the tuple list (the columnar drain produces both
        representations in one pass). The cache holds the table object
        itself — identity-compared on read, so a recycled ``id()`` can
        never alias a stale encoding."""
        self._columns = (table, list(query_sorted), columns)

    def columns(self, table, query_sorted: list[str]):
        """Interned column arrays for the columnar refinement engine.

        Returns ``(q_index, token_id, sim)`` NumPy arrays aligned with
        the tuple order: ``q_index`` indexes into ``query_sorted``,
        ``token_id`` into ``table`` (-1 for tokens outside it). Cached
        per table/query pair — every partition and shard replaying this
        stream shares one encoding pass.
        """
        cached = self._columns
        if (
            cached is not None
            and cached[0] is table
            and cached[1] == query_sorted
        ):
            return cached[2]
        import numpy as np

        q_index = {q_token: i for i, q_token in enumerate(query_sorted)}
        count = len(self._tuples)
        q_col = np.fromiter(
            (q_index[t[0]] for t in self._tuples), dtype=np.int64, count=count
        )
        token_id = table.id_of
        t_col = np.fromiter(
            (token_id(t[1]) for t in self._tuples), dtype=np.int64, count=count
        )
        s_col = np.fromiter(
            (t[2] for t in self._tuples), dtype=np.float64, count=count
        )
        columns = (q_col, t_col, s_col)
        self._columns = (table, list(query_sorted), columns)
        return columns

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[StreamTuple]:
        return iter(self._tuples)
