"""The token stream ``Ie`` (§IV).

``Ie`` merges, for every query element ``q``, the index's descending
similarity stream over the vocabulary ``D`` into one global stream of
``(q, token, sim)`` tuples in non-increasing ``sim`` order. It is
realized exactly as in the paper: one shared token index ``I`` plus a
priority queue ``P`` of size ``|Q|`` holding the next most similar unseen
token per query element; popping the top refills only the popped query
element's stream.

Two paper-mandated details:

* the stream stops per query element as soon as similarity falls below
  ``alpha``;
* on the very first probe, a query element yields *itself* with
  similarity 1.0 when it occurs in the collection vocabulary — this is
  how Koios initializes bounds with the vanilla overlap and how
  out-of-vocabulary tokens still contribute exact matches (§V).
"""

from __future__ import annotations

import heapq
import itertools
from typing import AbstractSet, Iterable, Iterator

from repro.errors import EmptyQueryError, InvalidParameterError
from repro.index.base import TokenIndex

#: One stream element: (query_token, vocabulary_token, similarity).
StreamTuple = tuple[str, str, float]


class TokenStream:
    """Merged descending-similarity stream over all query elements."""

    def __init__(
        self,
        query_tokens: Iterable[str],
        index: TokenIndex,
        alpha: float,
        *,
        collection_vocabulary: AbstractSet[str] | None = None,
    ) -> None:
        """
        Parameters
        ----------
        query_tokens:
            The query set ``Q`` (duplicates collapse).
        index:
            The shared per-token similarity index ``I``.
        alpha:
            Element similarity threshold; tuples below it are never
            emitted.
        collection_vocabulary:
            The vocabulary ``D`` of the searched collection. Used for the
            self-match rule and to drop index results that are not in the
            collection (relevant when one index serves many partitions).
        """
        if not (0.0 < alpha <= 1.0):
            raise InvalidParameterError("alpha must be in (0, 1]")
        query = sorted(set(query_tokens))
        if not query:
            raise EmptyQueryError("query set is empty")
        self._alpha = alpha
        self._vocab = collection_vocabulary
        self._index = index
        self._tiebreak = itertools.count()
        # heap of (-sim, tiebreak, q_token, vocab_token, source_iterator)
        self._heap: list[tuple[float, int, str, str, Iterator[tuple[str, float]]]] = []
        self.tuples_emitted = 0
        for q_token in query:
            self._refill(q_token, self._per_query_stream(q_token))

    def _per_query_stream(self, q_token: str) -> Iterator[tuple[str, float]]:
        """Descending stream for one query element, with the self-match
        rule applied and restricted to the collection vocabulary."""
        if self._vocab is None or q_token in self._vocab:
            yield q_token, 1.0
        for token, sim in self._index.stream(q_token):
            if token == q_token:
                continue  # self-match already emitted above
            if self._vocab is not None and token not in self._vocab:
                continue
            yield token, sim

    def _refill(
        self, q_token: str, source: Iterator[tuple[str, float]]
    ) -> None:
        """Buffer the next tuple of one query element's stream, unless the
        stream is exhausted or dropped below alpha."""
        entry = next(source, None)
        if entry is None:
            return
        token, sim = entry
        if sim < self._alpha:
            return  # descending stream: nothing below alpha matters
        heapq.heappush(
            self._heap, (-sim, next(self._tiebreak), q_token, token, source)
        )

    def __iter__(self) -> Iterator[StreamTuple]:
        return self

    def __next__(self) -> StreamTuple:
        if not self._heap:
            raise StopIteration
        neg_sim, _, q_token, token, source = heapq.heappop(self._heap)
        self._refill(q_token, source)
        self.tuples_emitted += 1
        return q_token, token, -neg_sim


class MaterializedTokenStream:
    """A fully drained token stream, replayable any number of times.

    Partitioned search (§VI) runs one Koios instance per partition; all
    instances consume the *same* tuple sequence, so the stream is drained
    once and replayed per partition instead of re-probing the index.

    A drained stream records the query tokens and ``alpha`` it was drained
    for. The serving layer drains one stream for the *union* of a
    micro-batch's query sets and hands each request its
    :meth:`restrict`-ed view, so a whole batch costs one index drain.
    """

    def __init__(
        self,
        tuples: list[StreamTuple],
        *,
        query_tokens: AbstractSet[str] | None = None,
        alpha: float | None = None,
        version: object | None = None,
    ) -> None:
        self._tuples = tuples
        self.query_tokens = (
            None if query_tokens is None else frozenset(query_tokens)
        )
        self.alpha = alpha
        #: Collection version at drain time (stamped by the serving
        #: layer). A backend refuses to replay a stream drained at a
        #: different version than it is about to search — the drained
        #: vocabulary filter would not match the live collection.
        self.version = version

    @classmethod
    def drain(
        cls,
        query_tokens: Iterable[str],
        index: TokenIndex,
        alpha: float,
        *,
        collection_vocabulary: AbstractSet[str] | None = None,
    ) -> "MaterializedTokenStream":
        query = frozenset(query_tokens)
        stream = TokenStream(
            query,
            index,
            alpha,
            collection_vocabulary=collection_vocabulary,
        )
        return cls(list(stream), query_tokens=query, alpha=alpha)

    def covers(self, query_tokens: AbstractSet[str], alpha: float) -> bool:
        """Whether this stream can serve a search for ``query_tokens`` at
        ``alpha``: it must have been drained for a superset of the query
        at exactly the same threshold (a looser alpha would smuggle
        below-threshold edges into refinement)."""
        if self.query_tokens is None or self.alpha is None:
            return False
        return self.alpha == alpha and query_tokens <= self.query_tokens

    def restrict(
        self, query_tokens: AbstractSet[str]
    ) -> "MaterializedTokenStream":
        """The sub-stream of tuples belonging to ``query_tokens``.

        A subsequence of a non-increasing sequence is non-increasing, and
        per query element the retained tuples are exactly what a solo
        drain of that element produces — so the restriction is a valid
        stream for any query that is a subset of ``query_tokens``.
        """
        wanted = frozenset(query_tokens)
        if self.query_tokens is not None and wanted >= self.query_tokens:
            return self
        return MaterializedTokenStream(
            [t for t in self._tuples if t[0] in wanted],
            query_tokens=wanted,
            alpha=self.alpha,
            version=self.version,
        )

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[StreamTuple]:
        return iter(self._tuples)
