"""Admission, dedup, and micro-batching of search requests.

The :class:`QueryScheduler` is the front door of the service. Each
accepted request flows through three short-circuits before any engine
work happens:

1. **Cache** — a finished result for the same
   ``(query, k, alpha, collection_version)`` is returned immediately;
2. **In-flight dedup** — an identical query already being computed
   shares its future instead of computing twice (the thundering-herd
   case: one expensive query arriving many times at once costs one
   search);
3. **Micro-batching** — remaining requests are grouped by compatible
   ``(k, alpha)``; a batch is dispatched when it reaches ``max_batch``
   or on :meth:`QueryScheduler.flush`. The batch worker drains ONE
   token stream for the union of the batch's query sets and replays a
   restricted view per request, so the index is probed once per batch
   instead of once per request.

Dispatch runs on a small worker pool; callers get a :class:`Ticket`
whose ``result()`` blocks until the response is ready.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, InvalidStateError, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.stats import SearchStats
from repro.errors import InvalidParameterError, ReproError
from repro.obs import Stopwatch, build_explain, get_tracer
from repro.service.backend import SearchBackend
from repro.service.cache import CacheKey, ResultCache, make_key
from repro.service.metrics import ServiceMetrics
from repro.service.request import (
    Hit,
    SearchRequest,
    SearchResponse,
    hits_from_result,
)

#: Scheduler phase names (recorded in ``ServiceMetrics.timer``).
DRAIN = "drain"
SEARCH = "search"


@dataclass(frozen=True)
class _Payload:
    """What one computed search stores in futures and the cache.

    ``stats``/``partition_stats`` are carried so EXPLAIN can be built
    for any ticket sharing the payload — a cache hit or a dedup rider
    explains the computation that produced its answer (references only;
    a payload costs no more when nobody asks).
    """

    hits: tuple[Hit, ...]
    timed_out: bool
    seconds: float
    stats: SearchStats | None = None
    partition_stats: tuple[SearchStats, ...] = ()
    degraded: bool = False
    coverage: tuple[int, int] | None = None


class Ticket:
    """A claim on one accepted request's eventual response."""

    def __init__(
        self,
        request: SearchRequest,
        future: "Future[_Payload]",
        *,
        cached: bool = False,
        deduplicated: bool = False,
        alpha: float | None = None,
        engine: dict | None = None,
    ) -> None:
        self._request = request
        self._future = future
        self._cached = cached
        self._deduplicated = deduplicated
        self._alpha = alpha
        self._engine = engine

    @property
    def request(self) -> SearchRequest:
        return self._request

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: float | None = None) -> SearchResponse:
        """Block for the response. Engine-level :class:`ReproError`\\ s
        become error responses; unexpected exceptions propagate.

        A funnel-invariant violation surfaced by the EXPLAIN build
        (:class:`~repro.errors.StatsInvariantError`, raised only under
        pytest) is deliberately NOT converted into an error response:
        it means the engine's own accounting is wrong, and a test run
        must fail loudly rather than serve the report.
        """
        try:
            payload = self._future.result(timeout)
        except ReproError as exc:
            return SearchResponse.failure(self._request.request_id, str(exc))
        explain = None
        if self._request.explain:
            trace = self._request.trace
            explain = build_explain(
                stats=payload.stats,
                partition_stats=payload.partition_stats,
                request_id=self._request.request_id,
                trace_id=getattr(trace, "trace_id", None),
                k=self._request.k,
                alpha=self._alpha,
                seconds=0.0 if self._cached else payload.seconds,
                cached=self._cached,
                deduplicated=self._deduplicated,
                timed_out=payload.timed_out,
                engine=self._engine,
            )
        return SearchResponse(
            request_id=self._request.request_id,
            hits=payload.hits,
            k=self._request.k,
            cached=self._cached,
            deduplicated=self._deduplicated,
            timed_out=payload.timed_out,
            seconds=0.0 if self._cached else payload.seconds,
            explain=explain,
            degraded=payload.degraded,
            coverage=payload.coverage,
        )


class QueryScheduler:
    """Serve :class:`SearchRequest`\\ s through a
    :class:`~repro.service.backend.SearchBackend`.

    Parameters
    ----------
    pool:
        The serving backend executing searches and mutations — the
        in-process :class:`~repro.service.pool.EnginePool`, the
        multi-process :class:`~repro.cluster.ClusterPool`, or anything
        else satisfying :class:`~repro.service.backend.SearchBackend`.
        The scheduler is transport-agnostic: admission, caching, dedup,
        and batching behave identically over any backend.
    cache:
        Result cache; None disables caching.
    metrics:
        Metrics sink (a fresh one is created when omitted).
    max_batch:
        Dispatch a ``(k, alpha)`` bucket as soon as it holds this many
        distinct queries; 1 disables batching.
    workers:
        Worker threads executing batches; >1 overlaps independent
        batches (useful whenever engine work releases the GIL or when
        callers block on tickets).
    wal:
        A :class:`~repro.store.wal.WriteAheadLog` that durably records
        every mutation accepted through :meth:`insert_set` /
        :meth:`delete_set` / :meth:`replace_set`. None = in-memory
        mutation only (still versioned, just not crash-durable).
    cache_namespace:
        A hashable tag mixed into every cache key's version component
        (``(namespace, pool.version)`` instead of the bare version).
        Multi-tenant deployments point several schedulers at ONE shared
        :class:`ResultCache` and give each its tenant id here: capacity
        is shared fleet-wide, yet one tenant's entries can never be
        returned for — nor invalidated by — another tenant, because no
        key collides across namespaces. None (the default) leaves the
        key shape exactly as before.
    """

    def __init__(
        self,
        pool: SearchBackend,
        *,
        cache: ResultCache | None = None,
        metrics: ServiceMetrics | None = None,
        max_batch: int = 8,
        workers: int = 1,
        wal=None,
        cache_namespace=None,
    ) -> None:
        if max_batch < 1:
            raise InvalidParameterError("max_batch must be >= 1")
        if workers < 1:
            raise InvalidParameterError("workers must be >= 1")
        self._pool = pool
        self._cache = cache
        self._wal = wal
        self._cache_namespace = cache_namespace
        self.metrics = metrics or ServiceMetrics()
        self._max_batch = max_batch
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-query"
        )
        self._lock = threading.Lock()
        self._inflight: dict[CacheKey, Future] = {}
        self._pending: dict[
            tuple[int, float], list[tuple[SearchRequest, CacheKey, Future]]
        ] = {}

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "QueryScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Dispatch whatever is pending, wait for workers to drain, and
        flush/close the write-ahead log (the scheduler is its only
        writer, so every acknowledged mutation is durable once this
        returns — the graceful-shutdown contract of ``repro serve``)."""
        self.flush()
        self._executor.shutdown(wait=True)
        if self._wal is not None:
            close = getattr(self._wal, "close", None)
            if close is not None:
                close()

    # -- admission ---------------------------------------------------------

    def submit(self, request: SearchRequest) -> Ticket:
        """Accept one request; returns immediately with a ticket."""
        alpha = (
            self._pool.alpha if request.alpha is None else request.alpha
        )
        key = make_key(
            request.query, request.k, alpha, self._cache_version()
        )
        self.metrics.record_accepted()
        ready: list[tuple[SearchRequest, CacheKey, Future]] | None = None
        bucket = (request.k, alpha)
        engine = self.engine_info() if request.explain else None
        with self._lock:
            if self._cache is not None:
                payload = self._cache.get(key)
                if payload is not None:
                    self.metrics.record_cache_hit()
                    future: Future = Future()
                    future.set_result(payload)
                    return Ticket(
                        request, future, cached=True,
                        alpha=alpha, engine=engine,
                    )
            future = self._inflight.get(key)
            if future is not None:
                self.metrics.record_deduplicated()
                return Ticket(
                    request, future, deduplicated=True,
                    alpha=alpha, engine=engine,
                )
            future = Future()
            self._inflight[key] = future
            queue = self._pending.setdefault(bucket, [])
            queue.append((request, key, future))
            if len(queue) >= self._max_batch:
                ready = self._pending.pop(bucket)
        if ready is not None:
            self._dispatch(bucket, ready)
        return Ticket(request, future, alpha=alpha, engine=engine)

    def flush(self) -> None:
        """Dispatch every pending bucket regardless of occupancy.

        Interrupt-safe: an exception raised mid-dispatch (e.g. a
        signal-raised GracefulShutdown during the serve loop's drain)
        re-queues the batches not yet handed to the executor, so their
        futures can still be completed by a retried flush — an
        abandoned batch would leave callers blocked on futures nobody
        will ever finish.
        """
        with self._lock:
            batches = list(self._pending.items())
            self._pending.clear()
        try:
            while batches:
                bucket, items = batches[-1]
                self._dispatch(bucket, items)
                batches.pop()
        except BaseException:
            with self._lock:
                for bucket, items in batches:
                    self._pending.setdefault(bucket, []).extend(items)
            raise

    # -- conveniences ------------------------------------------------------

    def answer(self, request: SearchRequest) -> SearchResponse:
        """Submit one request and block for its response."""
        ticket = self.submit(request)
        self.flush()
        return ticket.result()

    def answer_many(
        self, requests: Iterable[SearchRequest]
    ) -> list[SearchResponse]:
        """Submit a whole workload, then flush once — maximal batching.
        Responses come back in request order."""
        tickets = [self.submit(request) for request in requests]
        self.flush()
        return [ticket.result() for ticket in tickets]

    def engine_info(self) -> dict:
        """Identify the backend for EXPLAIN reports (best-effort: any
        backend without :meth:`engine_description` reports its class)."""
        describe = getattr(self._pool, "engine_description", None)
        if describe is not None:
            return describe()
        return {"backend": type(self._pool).__name__}

    def _cache_version(self):
        """The version component of this scheduler's cache keys — the
        backend version, tagged with the tenant namespace when set."""
        version = self._pool.version
        if self._cache_namespace is None:
            return version
        return (self._cache_namespace, version)

    def invalidate_cache(self) -> int:
        """Explicitly drop cached results (e.g. after ``pool.reload``).

        A namespaced scheduler drops only its own namespace's entries —
        on a shared multi-tenant cache, one tenant's ``invalidate`` wire
        op must never evict a neighbour's warm results.
        """
        if self._cache is None:
            return 0
        if self._cache_namespace is None:
            return self._cache.invalidate()
        namespace = self._cache_namespace
        return self._cache.invalidate(
            where=lambda key: (
                isinstance(key[3], tuple)
                and len(key[3]) == 2
                and key[3][0] == namespace
            )
        )

    # -- mutation ----------------------------------------------------------
    #
    # Mutations apply to the pool's live collection first and are logged
    # once they succeed; the caller's acknowledgement (and any WAL
    # replay after a crash) therefore only ever covers mutations that
    # validated. Version-keyed caching makes stale results unreachable
    # immediately — no eager invalidation required. Mutations are not
    # fenced against in-flight batches; the JSON-lines server drains its
    # response window before applying one, which is the ordering callers
    # should preserve.

    @property
    def pool(self) -> SearchBackend:
        return self._pool

    @property
    def cache(self) -> ResultCache | None:
        """The (possibly shared) result cache; None when disabled."""
        return self._cache

    def insert_set(
        self, tokens: Iterable[str], *, name: str | None = None
    ) -> int:
        """Insert a set into the live collection (WAL-logged); returns
        its id."""
        members = frozenset(tokens)
        set_id = self._pool.insert(members, name=name)
        if self._wal is not None:
            record = self._wal.append(
                "insert", self._pool.collection.name_of(set_id), members
            )
            self._meter_wal(record)
        return set_id

    def delete_set(self, ref: int | str) -> int:
        """Delete a live set by id or name (WAL-logged); returns the id."""
        collection = self._pool.collection
        name = ref if isinstance(ref, str) else collection.name_of(ref)
        set_id = self._pool.delete(ref)
        if self._wal is not None:
            self._meter_wal(self._wal.append("delete", name))
        return set_id

    def replace_set(self, ref: int | str, tokens: Iterable[str]) -> int:
        """Replace a live set's contents (WAL-logged); returns the new id."""
        collection = self._pool.collection
        name = ref if isinstance(ref, str) else collection.name_of(ref)
        members = frozenset(tokens)
        set_id = self._pool.replace(ref, members)
        if self._wal is not None:
            self._meter_wal(self._wal.append("replace", name, members))
        return set_id

    def _meter_wal(self, record) -> None:
        """Charge one appended record's wire size (line + newline) to
        the tenant ledger."""
        self.metrics.record_wal_bytes(len(record.to_line()) + 1)

    # -- execution ---------------------------------------------------------

    def _dispatch(
        self,
        bucket: tuple[int, float],
        items: Sequence[tuple[SearchRequest, CacheKey, Future]],
    ) -> None:
        self._executor.submit(self._run_batch, bucket, items)

    def _run_batch(
        self,
        bucket: tuple[int, float],
        items: Sequence[tuple[SearchRequest, CacheKey, Future]],
    ) -> None:
        k, alpha = bucket
        tracer = get_tracer()
        self.metrics.record_batch(len(items))
        stream = None
        if len(items) > 1:
            union = frozenset().union(
                *(request.query for request, _, _ in items)
            )
            # The union drain serves the whole batch; its span hangs off
            # the first traced request (one drain cannot parent into
            # every trace) and tags the batch width.
            drain_parent = next(
                (r.trace for r, _, _ in items if r.trace is not None), None
            )
            try:
                with tracer.span(
                    "scheduler.drain",
                    parent=drain_parent,
                    tags={"batch": len(items)},
                ):
                    with self.metrics.phase(DRAIN):
                        stream = self._pool.drain(union, alpha=alpha)
            except Exception as exc:
                for _, key, future in items:
                    self._finish_error(key, future, exc)
                return
        for request, key, future in items:
            if future.done():
                # Double-dispatch guard: flush()'s interrupt re-queue
                # can in a narrow race dispatch a batch twice; the
                # first completion wins, the rerun skips.
                continue
            watch = Stopwatch()
            try:
                # The span stays open across the backend call on this
                # worker thread, so engine-side spans (shards, phases)
                # nest under it via the context variable.
                with tracer.span(
                    "scheduler.search",
                    parent=request.trace,
                    tags={"request_id": request.request_id},
                ):
                    request_stream = (
                        None
                        if stream is None
                        else stream.restrict(request.query)
                    )
                    with self.metrics.phase(SEARCH):
                        result = self._pool.search(
                            request.query,
                            k,
                            alpha=alpha,
                            stream=request_stream,
                        )
            except Exception as exc:
                self._finish_error(key, future, exc)
                continue
            seconds = watch.stop()
            payload = _Payload(
                hits=hits_from_result(result),
                timed_out=result.timed_out,
                seconds=seconds,
                stats=result.stats,
                partition_stats=tuple(result.partition_stats),
                degraded=getattr(result, "degraded", False),
                coverage=getattr(result, "coverage", None),
            )
            # Degraded answers (like timed-out ones) are honest but
            # partial — never cache them, or a transient outage would
            # keep answering after the fleet recovered.
            if (
                self._cache is not None
                and not result.timed_out
                and not payload.degraded
            ):
                self._cache.put(key, payload)
            self.metrics.record_completed(
                seconds, result.stats, degraded=payload.degraded
            )
            with self._lock:
                self._inflight.pop(key, None)
            try:
                future.set_result(payload)
            except InvalidStateError:
                pass  # a double-dispatched twin finished first

    def _finish_error(
        self, key: CacheKey, future: Future, exc: Exception
    ) -> None:
        self.metrics.record_error()
        with self._lock:
            self._inflight.pop(key, None)
        try:
            future.set_exception(exc)
        except InvalidStateError:
            pass  # a double-dispatched twin finished first
