"""Serving-side observability.

The engine's :class:`~repro.core.stats.SearchStats` instruments one
query; :class:`ServiceMetrics` instruments the *service*: completed
request throughput (QPS), latency quantiles over a sliding window,
cache hit rate, in-flight dedup rate, and micro-batch occupancy. Phase
accounting (drain / search / merge) reuses
:class:`~repro.utils.timer.PhaseTimer`, and engine-level counters
aggregate into one long-running ``SearchStats`` via its ``merge``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Mapping

from repro.core.stats import SearchStats
from repro.obs.accounting import ResourceLedger
from repro.obs.histogram import Reservoir, StreamingHistogram
from repro.obs.slo import SLOMonitor
from repro.utils.timer import PhaseTimer

#: Latency samples kept for quantile estimation — the reservoir size.
#: A week-long serve process holds exactly this many floats per
#: scheduler no matter how many requests it absorbs.
LATENCY_WINDOW = 4096


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]); 0.0 for no samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


class ServiceMetrics:
    """Thread-safe counters and timers for one scheduler instance.

    ``slo`` is the stack's :class:`~repro.obs.slo.SLOMonitor` — pass a
    configured one (the gateway builds it from the tenant spec with the
    registry's injectable clock) or let a default-objective monitor be
    created. Every recorded completion, error, and shed feeds it, so
    burn rates stay wire-accurate by construction. ``resources`` is the
    tenant's :class:`~repro.obs.accounting.ResourceLedger`, charged on
    the same calls.
    """

    def __init__(
        self, *, clock=time.perf_counter, slo: SLOMonitor | None = None
    ) -> None:
        self._clock = clock
        self.resources = ResourceLedger()
        self.slo = slo if slo is not None else SLOMonitor(clock=clock)
        self._lock = threading.Lock()
        self._started = clock()
        self.requests = 0
        self.completed = 0
        self.errors = 0
        self.rejected = 0
        self.shed = 0
        self.queue_depth = 0
        self.queue_depth_peak = 0
        self.cache_hits = 0
        self.deduplicated = 0
        self.degraded = 0
        self.batches = 0
        self.batched_requests = 0
        self.timer = PhaseTimer()
        self.phase_calls: dict[str, int] = {}
        self.engine_stats = SearchStats()
        # Bounded latency accounting: a fixed-size uniform reservoir
        # backs the percentile keys (same nearest-rank math as before),
        # and streaming fixed-bucket histograms carry the full
        # distribution for Prometheus exposition — neither grows with
        # request count.
        self._latencies = Reservoir(LATENCY_WINDOW)
        self._latency_hist = StreamingHistogram()
        self._phase_hists: dict[str, StreamingHistogram] = {}

    # -- recording ---------------------------------------------------------

    def record_accepted(self) -> None:
        with self._lock:
            self.requests += 1

    def record_cache_hit(self) -> None:
        with self._lock:
            self.cache_hits += 1
            self.completed += 1
            self._latencies.observe(0.0)
            self._latency_hist.observe(0.0)
            self.resources.charge_cache_hit()
        self.slo.record(0.0)

    def record_deduplicated(self) -> None:
        """A request that attached to an identical in-flight computation.
        Counted separately: ``completed`` tracks finished computations and
        cache hits, not the riders that shared them."""
        with self._lock:
            self.deduplicated += 1

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size

    def record_completed(
        self,
        seconds: float,
        stats: SearchStats | None = None,
        *,
        degraded: bool = False,
    ) -> None:
        with self._lock:
            self.completed += 1
            if degraded:
                self.degraded += 1
            self._latencies.observe(seconds)
            self._latency_hist.observe(seconds)
            if stats is not None:
                self.engine_stats.merge(stats)
            self.resources.charge_search(seconds, stats)
        # A degraded answer burns error budget: the service responded,
        # but with partial coverage — an SLO that only counted hard
        # errors would sleep through a partition outage.
        self.slo.record(seconds, error=degraded)

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1
        self.slo.record(error=True)

    def record_rejected(self) -> None:
        """A request refused before any engine work (quota exhausted or
        auth denied) — the structured-``retry_after_seconds`` path of the
        gateway. Not counted in ``requests``: rejection is the service
        protecting itself, not serving."""
        with self._lock:
            self.rejected += 1

    def record_shed(self) -> None:
        """An *accepted* request dropped under overload (its bounded
        admission queue overflowed and load-shedding evicted it,
        oldest-first)."""
        with self._lock:
            self.shed += 1
        self.slo.record(error=True)

    def record_wal_bytes(self, nbytes: int) -> None:
        """Bytes durably appended to this stack's write-ahead log."""
        with self._lock:
            self.resources.charge_wal(nbytes)

    def set_queue_depth(self, depth: int) -> None:
        """Gauge: requests currently waiting in the admission queue
        feeding this scheduler (the gateway updates it as jobs enqueue
        and dispatch; the peak is kept for the snapshot)."""
        with self._lock:
            self.queue_depth = depth
            if depth > self.queue_depth_peak:
                self.queue_depth_peak = depth

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a block into :attr:`timer` under the metrics lock (worker
        threads share this object; ``PhaseTimer`` alone is not
        thread-safe)."""
        started = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - started
            with self._lock:
                self.timer.totals[name] = (
                    self.timer.totals.get(name, 0.0) + elapsed
                )
                self.phase_calls[name] = self.phase_calls.get(name, 0) + 1
                hist = self._phase_hists.get(name)
                if hist is None:
                    hist = self._phase_hists[name] = StreamingHistogram()
                hist.observe(elapsed)

    # -- reading -----------------------------------------------------------

    @property
    def uptime_seconds(self) -> float:
        return self._clock() - self._started

    @property
    def qps(self) -> float:
        elapsed = self.uptime_seconds
        if elapsed <= 0.0:
            return 0.0
        return self.completed / elapsed

    @property
    def mean_batch_occupancy(self) -> float:
        """Average requests served per engine-side micro-batch."""
        if self.batches == 0:
            return 0.0
        return self.batched_requests / self.batches

    def latency_percentile(self, q: float) -> float:
        with self._lock:
            samples = self._latencies.samples()
        return percentile(samples, q)

    def histogram_snapshot(self) -> dict:
        """Plain-dict streaming-histogram states (request latency +
        per-phase) for the Prometheus adapter and wire shipping."""
        with self._lock:
            return {
                "latency": self._latency_hist.state(),
                "phases": {
                    name: hist.state()
                    for name, hist in self._phase_hists.items()
                },
            }

    def snapshot(self) -> Mapping[str, float]:
        """A JSON-ready summary (the ``{"op": "metrics"}`` response)."""
        with self._lock:
            samples = self._latencies.samples()
            snapshot = {
                "uptime_seconds": round(self.uptime_seconds, 6),
                "requests": self.requests,
                "completed": self.completed,
                "errors": self.errors,
                "rejected": self.rejected,
                "shed": self.shed,
                "queue_depth": self.queue_depth,
                "queue_depth_peak": self.queue_depth_peak,
                "qps": round(self.qps, 3),
                "cache_hits": self.cache_hits,
                "cache_hit_rate": (
                    round(self.cache_hits / self.requests, 4)
                    if self.requests
                    else 0.0
                ),
                "deduplicated": self.deduplicated,
                "degraded": self.degraded,
                "batches": self.batches,
                "mean_batch_occupancy": round(self.mean_batch_occupancy, 3),
                "latency_p50": round(percentile(samples, 0.50), 6),
                "latency_p95": round(percentile(samples, 0.95), 6),
                "latency_p99": round(percentile(samples, 0.99), 6),
                "stream_tuples": self.engine_stats.stream_tuples,
                "candidates": self.engine_stats.candidates,
                "resources": self.resources.snapshot(),
            }
            # Per-phase aggregates: total seconds, call count, and mean
            # seconds per call, so operators can see *where* latency
            # lives (drain vs search) and how batching amortizes it.
            for phase, spent in self.timer.totals.items():
                calls = self.phase_calls.get(phase, 0)
                snapshot[f"seconds_{phase}"] = round(spent, 6)
                snapshot[f"calls_{phase}"] = calls
                snapshot[f"mean_seconds_{phase}"] = (
                    round(spent / calls, 6) if calls else 0.0
                )
        return snapshot
