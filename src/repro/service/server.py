"""JSON-lines front-ends: the ``repro serve`` loop and ``repro batch``.

``serve_lines`` implements a newline-delimited JSON protocol over any
text streams (the CLI wires stdin/stdout): each input line is either a
search request (see :mod:`repro.service.request`) or a control object::

    {"op": "metrics"}      -> one line with the metrics snapshot
    {"op": "invalidate"}   -> drops the result cache
    {"op": "flush"}        -> dispatches pending micro-batches now

Requests are answered in arrival order. Lines accumulate into
micro-batches of up to ``linger`` requests before the scheduler flushes,
so piping a burst of queries in costs a fraction of the index drains
that one-at-a-time serving would.

``run_batch`` is the offline variant: parse a whole request file, submit
everything (maximal batching/dedup/caching), and emit one response line
per request in input order.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, TextIO

from repro.errors import ReproError
from repro.service.request import SearchRequest, SearchResponse
from repro.service.scheduler import QueryScheduler, Ticket


def parse_request_lines(
    lines: Iterable[str],
) -> Iterator[SearchRequest | SearchResponse]:
    """Parse request lines, yielding a failure response for bad ones.

    Blank lines and ``#`` comments are skipped so hand-written query
    files stay pleasant.
    """
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            yield SearchRequest.from_json(line)
        except ReproError as exc:
            yield SearchResponse.failure(f"line-{number}", str(exc))


def run_batch(
    scheduler: QueryScheduler, lines: Iterable[str]
) -> list[SearchResponse]:
    """Answer a whole request file; responses in input order."""
    parsed = list(parse_request_lines(lines))
    tickets: list[Ticket | SearchResponse] = []
    for item in parsed:
        if isinstance(item, SearchRequest):
            tickets.append(scheduler.submit(item))
        else:
            tickets.append(item)
    scheduler.flush()
    return [
        item.result() if isinstance(item, Ticket) else item
        for item in tickets
    ]


def _control_line(scheduler: QueryScheduler, op: str) -> str:
    if op == "metrics":
        return json.dumps(
            {"metrics": dict(scheduler.metrics.snapshot())},
            separators=(",", ":"),
        )
    if op == "invalidate":
        dropped = scheduler.invalidate_cache()
        return json.dumps({"invalidated": dropped}, separators=(",", ":"))
    if op == "flush":
        scheduler.flush()
        return json.dumps({"flushed": True}, separators=(",", ":"))
    return json.dumps({"error": f"unknown op: {op}"}, separators=(",", ":"))


def serve_lines(
    scheduler: QueryScheduler,
    in_stream: TextIO,
    out_stream: TextIO,
    *,
    linger: int = 1,
) -> int:
    """The request loop behind ``repro serve``.

    ``linger`` is how many requests may accumulate before the scheduler
    is flushed; with stdin pipes the loop cannot see "no more input yet",
    so linger>1 trades a little per-request latency for batched drains
    on bursty input. Returns the number of requests served.
    """
    served = 0
    window: list[Ticket] = []

    def emit_window() -> None:
        nonlocal served
        if not window:
            return
        scheduler.flush()
        for ticket in window:
            out_stream.write(ticket.result().to_json() + "\n")
            served += 1
        out_stream.flush()
        window.clear()

    def emit_immediate(text: str) -> None:
        emit_window()  # keep responses in arrival order
        out_stream.write(text + "\n")
        out_stream.flush()

    for line in in_stream:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            obj = json.loads(stripped)
        except json.JSONDecodeError as exc:
            failure = SearchResponse.failure("parse", f"bad request JSON: {exc}")
            emit_immediate(failure.to_json())
            continue
        if isinstance(obj, dict) and isinstance(obj.get("op"), str):
            emit_immediate(_control_line(scheduler, obj["op"]))
            continue
        try:
            request = SearchRequest.from_obj(obj)
        except ReproError as exc:
            emit_immediate(SearchResponse.failure("parse", str(exc)).to_json())
            continue
        window.append(scheduler.submit(request))
        if len(window) >= max(1, linger):
            emit_window()
    emit_window()
    return served
