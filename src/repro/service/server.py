"""JSON-lines front-ends: the ``repro serve`` loop and ``repro batch``.

``serve_lines`` implements a newline-delimited JSON protocol over any
text streams (the CLI wires stdin/stdout): each input line is either a
search request (see :mod:`repro.service.request`) or a control object::

    {"op": "metrics"}      -> one line with the metrics snapshot
    {"op": "prometheus"}   -> {"prometheus": "<text exposition>", ...}
                              (the scheduler's metrics rendered in
                              Prometheus text format)
    {"op": "stats"}        -> metrics snapshot + backend-side stats
                              (live latency quantiles incl. p99,
                              per-phase timing aggregates, and — for a
                              cluster backend — the per-worker rollup)
    {"op": "slo"}          -> the SLO monitor's burn-rate snapshot
    {"op": "explain", "query": [...], ...}
                           -> run the search and return its response
                              with the EXPLAIN report attached (same
                              as a request line with "explain": true)
    {"op": "invalidate"}   -> drops the result cache
    {"op": "flush"}        -> dispatches pending micro-batches now
    {"op": "insert", "name": ..., "tokens": [...]}
                           -> add a set to the live collection
    {"op": "delete", "name": ...}
                           -> remove a set (by name or {"set_id": n})
    {"op": "replace", "name": ..., "tokens": [...]}
                           -> swap a set's contents under its name

Mutation ops require the server to hold a mutable collection
(``repro serve`` wraps one whenever ``--wal`` is given or the input is a
snapshot); they are applied after the pending response window drains, so
earlier requests see the old state and later ones the new version.

Requests are answered in arrival order. Lines accumulate into
micro-batches of up to ``linger`` requests before the scheduler flushes,
so piping a burst of queries in costs a fraction of the index drains
that one-at-a-time serving would.

``run_batch`` is the offline variant: parse a whole request file, submit
everything (maximal batching/dedup/caching), and emit one response line
per request in input order.
"""

from __future__ import annotations

import json
import weakref
from typing import Iterable, Iterator, TextIO

from repro.errors import ReproError
from repro.service.request import SearchRequest, SearchResponse
from repro.service.scheduler import QueryScheduler, Ticket

#: One long-lived Prometheus registry per scheduler (counters must be
#: monotone across scrapes); weak keys let schedulers die normally.
_PROM_REGISTRIES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _prometheus_line(scheduler: QueryScheduler) -> str:
    """The ``prometheus`` wire op: this scheduler's metrics as text
    exposition, wrapped in one JSON line."""
    from repro.obs import PromRegistry
    from repro.obs.adapters import service_to_registry

    registry = _PROM_REGISTRIES.get(scheduler)
    if registry is None:
        registry = _PROM_REGISTRIES[scheduler] = PromRegistry()
    service_to_registry(registry, scheduler.metrics)
    return json.dumps(
        {
            "prometheus": registry.render(),
            "content_type": PromRegistry.CONTENT_TYPE,
        },
        separators=(",", ":"),
    )


class GracefulShutdown(Exception):
    """Raised (typically from a SIGINT/SIGTERM handler) to stop the
    serve loop cleanly: pending responses are drained and emitted, then
    :func:`serve_lines` returns normally instead of unwinding with a
    traceback."""


def parse_request_lines(
    lines: Iterable[str],
) -> Iterator[SearchRequest | SearchResponse]:
    """Parse request lines, yielding a failure response for bad ones.

    Blank lines and ``#`` comments are skipped so hand-written query
    files stay pleasant.
    """
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            yield SearchRequest.from_json(line)
        except ReproError as exc:
            yield SearchResponse.failure(f"line-{number}", str(exc))


def run_batch(
    scheduler: QueryScheduler, lines: Iterable[str]
) -> list[SearchResponse]:
    """Answer a whole request file; responses in input order."""
    parsed = list(parse_request_lines(lines))
    tickets: list[Ticket | SearchResponse] = []
    for item in parsed:
        if isinstance(item, SearchRequest):
            try:
                tickets.append(scheduler.submit(item))
            except ReproError as exc:
                tickets.append(
                    SearchResponse.failure(item.request_id, str(exc))
                )
        else:
            tickets.append(item)
    scheduler.flush()
    return [
        item.result() if isinstance(item, Ticket) else item
        for item in tickets
    ]


def _mutation_args(obj: dict) -> tuple[str | int, list[str] | None]:
    """Validate and extract (ref, tokens) from a mutation control line."""
    if "set_id" in obj:
        if not isinstance(obj["set_id"], int) or isinstance(
            obj["set_id"], bool
        ):
            raise ReproError('"set_id" must be an integer')
        ref: str | int = obj["set_id"]
    elif isinstance(obj.get("name"), str):
        ref = obj["name"]
    else:
        raise ReproError('mutation needs a "name" (or "set_id")')
    tokens = obj.get("tokens")
    if tokens is not None:
        if not isinstance(tokens, list) or any(
            not isinstance(t, str) for t in tokens
        ):
            raise ReproError('"tokens" must be a list of strings')
    return ref, tokens


def _control_line(scheduler: QueryScheduler, obj: dict) -> str:
    """One control op -> one response line.

    Total by construction: *every* failure — a user error
    (:class:`ReproError`), an unknown op, or an unexpected exception out
    of a backend hook — becomes a structured ``{"error": ..., "op":
    ...}`` line. A long-lived server must never lose its serve loop to
    one bad control line.
    """
    op = obj["op"]
    compact = {"separators": (",", ":")}
    try:
        if op == "metrics":
            return json.dumps(
                {"metrics": dict(scheduler.metrics.snapshot())}, **compact
            )
        if op == "prometheus":
            return _prometheus_line(scheduler)
        if op == "stats":
            payload: dict = {"stats": dict(scheduler.metrics.snapshot())}
            backend_stats = getattr(scheduler.pool, "stats_snapshot", None)
            if callable(backend_stats):
                payload["backend"] = backend_stats()
            return json.dumps(payload, **compact)
        if op == "slo":
            return json.dumps(
                {"slo": scheduler.metrics.slo.snapshot()}, **compact
            )
        if op == "explain":
            spec = {
                key: value for key, value in obj.items() if key != "op"
            }
            spec["explain"] = True
            request = SearchRequest.from_obj(spec)
            return scheduler.answer(request).to_json()
        if op == "invalidate":
            dropped = scheduler.invalidate_cache()
            return json.dumps({"invalidated": dropped}, **compact)
        if op == "flush":
            scheduler.flush()
            return json.dumps({"flushed": True}, **compact)
        if op in ("insert", "delete", "replace"):
            ref, tokens = _mutation_args(obj)
            if op == "insert":
                if tokens is None:
                    raise ReproError('"insert" needs a "tokens" list')
                if not isinstance(ref, str):
                    raise ReproError('"insert" addresses sets by "name"')
                set_id = scheduler.insert_set(tokens, name=ref)
            elif op == "delete":
                set_id = scheduler.delete_set(ref)
            else:
                if tokens is None:
                    raise ReproError('"replace" needs a "tokens" list')
                set_id = scheduler.replace_set(ref, tokens)
            version = scheduler.pool.version
            return json.dumps(
                {
                    "op": op,
                    "set_id": set_id,
                    "version": list(version)
                    if isinstance(version, tuple) else version,
                },
                **compact,
            )
    except ReproError as exc:
        return json.dumps({"error": str(exc), "op": op}, **compact)
    except Exception as exc:  # noqa: BLE001 — the loop must survive
        return json.dumps(
            {
                "error": f"internal error in op {op!r}: "
                f"{type(exc).__name__}: {exc}",
                "op": op,
            },
            **compact,
        )
    return json.dumps({"error": f"unknown op: {op}", "op": op}, **compact)


#: Public name for transports layered over the same control protocol
#: (the network gateway answers tenant-scoped ops through this exact
#: function, so op semantics can never drift between stdin and TCP).
control_line = _control_line


def serve_lines(
    scheduler: QueryScheduler,
    in_stream: TextIO,
    out_stream: TextIO,
    *,
    linger: int = 1,
) -> int:
    """The request loop behind ``repro serve``.

    ``linger`` is how many requests may accumulate before the scheduler
    is flushed; with stdin pipes the loop cannot see "no more input yet",
    so linger>1 trades a little per-request latency for batched drains
    on bursty input. Returns the number of requests served.

    A :class:`GracefulShutdown` or ``KeyboardInterrupt`` raised while
    the loop is blocked on input (the signal-handler path of
    ``repro serve``) drains and emits every pending response before
    returning — in-flight work is never dropped on shutdown.
    """
    served = 0
    window: list[Ticket] = []
    shutting_down = False

    def emit_window() -> None:
        # Resumable on purpose: each ticket leaves the window only
        # after its response is written, and a shutdown signal landing
        # in the blocking wait (where virtually all drain time is
        # spent) finishes the drain and retries the same ticket — so an
        # interrupted drain neither drops nor re-emits responses. The
        # absorbed signal is re-raised once the drain is complete, so
        # the loop shuts down instead of blocking on the next read. A
        # signal in the few bytecodes between write and pop can at
        # worst duplicate one already-written line on retry; dropping
        # is never possible.
        nonlocal served, shutting_down
        if not window:
            return
        while window:
            try:
                # flush() inside the resumable region: a signal landing
                # mid-dispatch re-queues undispatched batches, and the
                # retry here re-flushes them — otherwise their futures
                # would never complete and result() below would hang.
                scheduler.flush()
                text = window[0].result().to_json()
            except (GracefulShutdown, KeyboardInterrupt):
                shutting_down = True
                continue  # retry the same ticket; nothing was emitted
            out_stream.write(text + "\n")
            served += 1
            window.pop(0)
        out_stream.flush()
        if shutting_down:
            shutting_down = False  # drained: deliver the signal once
            raise GracefulShutdown()

    def emit_immediate(text: str) -> None:
        emit_window()  # keep responses in arrival order
        out_stream.write(text + "\n")
        out_stream.flush()

    try:
        for line in in_stream:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                obj = json.loads(stripped)
            except json.JSONDecodeError as exc:
                failure = SearchResponse.failure(
                    "parse", f"bad request JSON: {exc}"
                )
                emit_immediate(failure.to_json())
                continue
            if isinstance(obj, dict) and isinstance(obj.get("op"), str):
                # Drain pending responses BEFORE evaluating the op:
                # earlier requests must observe the pre-mutation state
                # (and their cache entries must be keyed by the version
                # they ran at).
                emit_window()
                emit_immediate(_control_line(scheduler, obj))
                continue
            try:
                request = SearchRequest.from_obj(obj)
            except ReproError as exc:
                emit_immediate(
                    SearchResponse.failure("parse", str(exc)).to_json()
                )
                continue
            try:
                ticket = scheduler.submit(request)
            except ReproError as exc:
                # Admission itself can refuse a request (e.g. an alpha
                # below what the token index serves exactly). That is a
                # per-request error line, not a dead serve loop.
                emit_immediate(
                    SearchResponse.failure(
                        request.request_id, str(exc)
                    ).to_json()
                )
                continue
            window.append(ticket)
            if len(window) >= max(1, linger):
                emit_window()
    except (GracefulShutdown, KeyboardInterrupt):
        pass  # drain below: accepted requests still get their responses
    try:
        emit_window()
    except (GracefulShutdown, KeyboardInterrupt):
        # The signal landed during the final drain itself; emit_window
        # is resumable, so one retry finishes the remaining responses
        # (the CLI handler ignores further signals after the first).
        emit_window()
    return served
