"""Wire types of the query service.

A :class:`SearchRequest` is one top-k search as it arrives over the wire
(JSON-lines on ``repro serve``'s stdin, one JSON object per line in a
``repro batch`` input file). A :class:`SearchResponse` is what goes back:
the ranked hits plus serving metadata (cache hit, dedup, latency).

The wire format is deliberately small::

    {"id": "q1", "query": ["LA", "NYC"], "k": 5, "alpha": 0.8}
    {"id": "q1", "results": [{"set_id": 3, "name": "cities",
      "score": 1.73, "exact": true}], "cached": false, "seconds": 0.01}

A bare JSON array of tokens is accepted as shorthand for
``{"query": [...]}`` so query files can be plain token lists.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.koios import SearchResult
from repro.errors import EmptyQueryError, InvalidParameterError
from repro.obs import SpanContext

_auto_ids = itertools.count(1)


def _auto_request_id() -> str:
    return f"req-{next(_auto_ids)}"


@dataclass(frozen=True)
class SearchRequest:
    """One top-k search request.

    ``alpha=None`` means "use the service default". ``request_id`` is
    echoed back on the response so callers can correlate out-of-order
    completions; one is generated when the wire omits it.

    ``trace`` carries the request's tracing context (the gateway's root
    span, or a client-supplied ``trace_id`` on the wire) down into the
    scheduler; it never participates in equality, hashing, or results.

    ``explain`` asks for the EXPLAIN payload on the response (the
    pruning funnel, per-partition, with phase timings and cost
    attribution). Excluded from equality like ``trace``: an explained
    request still caches, dedups, and batches with its plain twin — the
    report is built from the stats the computation produced either way.
    """

    query: frozenset[str]
    k: int = 10
    alpha: float | None = None
    request_id: str = field(default_factory=_auto_request_id)
    trace: Any = field(default=None, compare=False, repr=False)
    explain: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if not self.query:
            raise EmptyQueryError("query set is empty")
        if any(not isinstance(token, str) for token in self.query):
            raise InvalidParameterError("query tokens must be strings")
        if self.k < 1:
            raise InvalidParameterError("k must be >= 1")
        if self.alpha is not None and not (0.0 < self.alpha <= 1.0):
            raise InvalidParameterError("alpha must be in (0, 1]")

    @classmethod
    def from_obj(cls, obj: Any) -> "SearchRequest":
        """Parse one decoded JSON value (object or bare token array)."""
        if isinstance(obj, list):
            obj = {"query": obj}
        if not isinstance(obj, dict):
            raise InvalidParameterError(
                "request must be a JSON object or token array"
            )
        tokens = obj.get("query")
        if not isinstance(tokens, list):
            raise InvalidParameterError('request needs a "query" token list')
        if any(not isinstance(token, str) for token in tokens):
            raise InvalidParameterError("query tokens must be strings")
        kwargs: dict[str, Any] = {"query": frozenset(tokens)}
        if "k" in obj:
            if not isinstance(obj["k"], int) or isinstance(obj["k"], bool):
                raise InvalidParameterError('"k" must be an integer')
            kwargs["k"] = obj["k"]
        if obj.get("alpha") is not None:
            if not isinstance(obj["alpha"], (int, float)):
                raise InvalidParameterError('"alpha" must be a number')
            kwargs["alpha"] = float(obj["alpha"])
        if obj.get("id") is not None:
            kwargs["request_id"] = str(obj["id"])
        if obj.get("explain") is not None:
            if not isinstance(obj["explain"], bool):
                raise InvalidParameterError('"explain" must be a boolean')
            kwargs["explain"] = obj["explain"]
        trace_id = obj.get("trace_id")
        if isinstance(trace_id, str) and trace_id:
            kwargs["trace"] = SpanContext(trace_id=trace_id)
        return cls(**kwargs)

    @classmethod
    def from_json(cls, line: str) -> "SearchRequest":
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise InvalidParameterError(f"bad request JSON: {exc}") from exc
        return cls.from_obj(obj)


@dataclass(frozen=True)
class Hit:
    """One ranked result set on the wire."""

    set_id: int
    name: str
    score: float
    exact: bool

    def to_obj(self) -> dict[str, Any]:
        return {
            "set_id": self.set_id,
            "name": self.name,
            "score": self.score,
            "exact": self.exact,
        }


@dataclass(frozen=True)
class SearchResponse:
    """The answer to one :class:`SearchRequest`."""

    request_id: str
    hits: tuple[Hit, ...]
    k: int
    cached: bool = False
    deduplicated: bool = False
    timed_out: bool = False
    seconds: float = 0.0
    error: str | None = None
    #: The EXPLAIN payload (:func:`repro.obs.explain.build_explain`)
    #: when the request asked for one; absent from the wire otherwise.
    explain: Any = None
    #: Partial-coverage answer: a distributed backend lost every
    #: replica of >= 1 partition. ``coverage`` is then
    #: ``[answered, total]`` partitions; both absent when healthy.
    degraded: bool = False
    coverage: tuple[int, int] | None = None

    @classmethod
    def failure(cls, request_id: str, error: str) -> "SearchResponse":
        return cls(request_id=request_id, hits=(), k=0, error=error)

    def to_obj(self) -> dict[str, Any]:
        if self.error is not None:
            return {"id": self.request_id, "error": self.error}
        obj: dict[str, Any] = {
            "id": self.request_id,
            "results": [hit.to_obj() for hit in self.hits],
            "cached": self.cached,
            "seconds": round(self.seconds, 6),
        }
        if self.deduplicated:
            obj["deduplicated"] = True
        if self.timed_out:
            obj["timed_out"] = True
        if self.degraded:
            obj["degraded"] = True
            if self.coverage is not None:
                obj["coverage"] = list(self.coverage)
        if self.explain is not None:
            obj["explain"] = self.explain
        return obj

    def to_json(self) -> str:
        return json.dumps(self.to_obj(), separators=(",", ":"))

    def result_lines(self) -> list[str]:
        """``score  name`` lines, the same layout ``repro search`` prints."""
        return [f"{hit.score:10.4f}  {hit.name}" for hit in self.hits]


def hits_from_result(result: SearchResult) -> tuple[Hit, ...]:
    """Project a :class:`~repro.core.koios.SearchResult` onto wire hits."""
    return tuple(
        Hit(
            set_id=entry.set_id,
            name=entry.name,
            score=entry.score,
            exact=entry.exact,
        )
        for entry in result.entries
    )
