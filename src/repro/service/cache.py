"""Thread-safe LRU cache of finished search results.

Serving traffic is heavily repetitive — popular queries recur, and a
warm engine answers them in microseconds from here instead of
milliseconds through refinement + verification. Entries are keyed on
``(frozenset(query), k, alpha, collection_version)``; the version
component makes stale results unreachable the moment the underlying
collection changes, and :meth:`ResultCache.invalidate` additionally
drops them eagerly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.errors import InvalidParameterError

#: A fully qualified cache key.
CacheKey = tuple[frozenset, int, float, Hashable]


def make_key(
    query: frozenset[str], k: int, alpha: float, version: Hashable
) -> CacheKey:
    """The canonical cache key of one search against one collection state."""
    return (query, k, alpha, version)


class ResultCache:
    """A bounded LRU mapping of :data:`CacheKey` to finished payloads.

    All operations are O(1) and thread-safe; the scheduler consults the
    cache from the accept path and fills it from worker threads.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise InvalidParameterError("cache capacity must be >= 1")
        self._capacity = capacity
        self._entries: OrderedDict[CacheKey, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> Any | None:
        """The cached payload for ``key``, or None; refreshes recency."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return payload

    def put(self, key: CacheKey, payload: Any) -> None:
        """Insert or refresh ``key``; evicts the least recently used
        entry when over capacity."""
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def invalidate(
        self, *, where: Callable[[CacheKey], bool] | None = None
    ) -> int:
        """Drop entries; returns the count.

        Without ``where`` every entry goes (the classic "collection
        mutated" drop). With a key predicate only matching entries are
        removed — O(n), used by multi-tenant callers sharing one cache
        to drop a single tenant's namespace without touching its
        neighbours'.
        """
        with self._lock:
            if where is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                doomed = [key for key in self._entries if where(key)]
                for key in doomed:
                    del self._entries[key]
                dropped = len(doomed)
            self.invalidations += 1
            return dropped

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0.0 when unused)."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total
