"""A pool of warm, sharded Koios engines.

The repository is split once into ``shards`` random partitions (§VI's
scale-out scheme); each shard gets a long-lived
:class:`~repro.core.koios.KoiosSearchEngine` whose inverted index covers
only that shard, while the collection object, token index, and similarity
function are shared — so set ids, names, and the vocabulary stay global
and per-shard results merge without any id remapping.

One query is answered by replaying a single drained token stream through
every shard engine under one shared
:class:`~repro.core.topk.GlobalThreshold` (a shard that verifies strong
results early prunes work in the others, exactly the paper's
partitioned-search effect) and merge-sorting the per-shard top-k lists
with the :class:`~repro.core.topk.TopKList` machinery. The merged result
is the exact global top-k: every shard list is exact over its shard, and
any set a shard pruned was provably below the global ``theta_lb``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Hashable, Iterable, Iterator

from repro.core.config import FilterConfig
from repro.core.koios import KoiosSearchEngine, ResultEntry, SearchResult
from repro.core.stats import SearchStats
from repro.core.topk import GlobalThreshold, TopKList
from repro.datasets.collection import SetCollection
from repro.errors import EmptyQueryError, InvalidParameterError
from repro.index.base import TokenIndex
from repro.index.token_stream import MaterializedTokenStream
from repro.obs import current_context, get_tracer
from repro.service.backend import (
    materialize_stream,
    require_mutable,
    resolve_alpha,
)
from repro.sim.base import SimilarityFunction


class ReadWriteLock:
    """Many concurrent readers or one exclusive writer, writer-priority.

    Searches read the pool (engines + live delta postings); mutations
    and hot-swaps write it. Without exclusion a long-running query could
    observe a half-applied mutation (some token posting lists updated,
    others not) — exactly the torn view the serving contract forbids.
    Writer priority keeps a steady query stream from starving mutations.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class EnginePool:
    """Warm shard engines over one collection, ready to serve queries.

    Parameters
    ----------
    collection:
        The repository ``L``.
    token_index:
        The shared per-token similarity index (alpha-independent).
    sim:
        The element similarity function.
    alpha:
        Default element similarity threshold; requests may override it
        per call.
    shards:
        Number of random shards (1 = a single warm engine).
    parallel_shards:
        Fan shard searches out on a thread pool instead of running them
        serially. Results are identical; only wall-clock changes.
    inverted_factory:
        Per-partition inverted-index factory forwarded to every shard
        engine (see :class:`~repro.core.koios.KoiosSearchEngine`). When
        omitted and the collection is a
        :class:`~repro.store.mutable.MutableSetCollection`, its delta
        factory is adopted automatically, so shard rebuilds after a
        mutation reuse the incrementally maintained postings instead of
        re-indexing.
    partition:
        ``(index, count)`` — serve only partition ``index`` of the
        repository split into ``count`` partitions under ``shard_seed``
        (the same deterministic split a ``count``-shard pool uses, so a
        fleet of ``count`` pools with distinct indexes covers exactly
        the layout one ``shards=count`` pool does). This is how each
        :mod:`repro.cluster` worker process owns its slice; the
        partition is recomputed on every hot swap, so ownership of
        newly inserted ids stays consistent across the fleet. A
        partition that happens to receive no live sets yields a pool
        that answers every search with an empty result.
    """

    def __init__(
        self,
        collection: SetCollection,
        token_index: TokenIndex,
        sim: SimilarityFunction,
        *,
        alpha: float = 0.8,
        shards: int = 1,
        shard_seed: int = 0,
        config: FilterConfig | None = None,
        em_workers: int = 0,
        parallel_shards: bool = False,
        inverted_factory=None,
        partition: tuple[int, int] | None = None,
    ) -> None:
        if shards < 1:
            raise InvalidParameterError("shards must be >= 1")
        if not (0.0 < alpha <= 1.0):
            raise InvalidParameterError("alpha must be in (0, 1]")
        if partition is not None:
            part_index, part_count = partition
            if part_count < 1 or not (0 <= part_index < part_count):
                raise InvalidParameterError(
                    f"partition must be (index, count) with "
                    f"0 <= index < count, got {partition!r}"
                )
        self._token_index = token_index
        self._sim = sim
        self._alpha = alpha
        self._shards = shards
        self._shard_seed = shard_seed
        self._config = config
        self._em_workers = em_workers
        self._reloads = 0
        self._inverted_factory = inverted_factory
        self._partition = partition
        self._lock = ReadWriteLock()
        self._executor = (
            ThreadPoolExecutor(
                max_workers=shards, thread_name_prefix="repro-shard"
            )
            if parallel_shards and shards > 1
            else None
        )
        self._build(collection)

    def _build(self, collection: SetCollection) -> None:
        if len(collection) == 0:
            raise InvalidParameterError("cannot serve an empty collection")
        self._collection = collection
        factory = self._inverted_factory
        if factory is None and hasattr(collection, "delta_index"):
            factory = collection.delta_index
        universe = None
        if self._partition is not None:
            part_index, part_count = self._partition
            universe = collection.partition(
                part_count, seed=self._shard_seed
            )[part_index]
        shard_ids = [
            ids
            for ids in collection.partition(
                self._shards, seed=self._shard_seed, within=universe
            )
            if ids
        ]
        self._engines = [
            KoiosSearchEngine(
                collection,
                self._token_index,
                self._sim,
                alpha=self._alpha,
                config=self._config,
                em_workers=self._em_workers,
                set_ids=ids,
                inverted_factory=factory,
            )
            for ids in shard_ids
        ]
        self._built_collection_version = getattr(collection, "version", None)

    # -- bookkeeping -------------------------------------------------------

    @property
    def collection(self) -> SetCollection:
        return self._collection

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def num_shards(self) -> int:
        return len(self._engines)

    @property
    def partition(self) -> tuple[int, int] | None:
        return self._partition

    @property
    def version(self) -> Hashable:
        """The collection state cache keys embed.

        For an immutable collection this is the reload counter (bumped by
        :meth:`reload`). For a mutable overlay it is the pair
        ``(reloads, collection.version)``, read *live* — the instant a
        mutation lands, every previously cached result becomes
        unreachable, even before the shard engines hot-swap.
        """
        live = getattr(self._collection, "version", None)
        if live is None:
            return self._reloads
        return (self._reloads, live)

    def reload(
        self,
        collection: SetCollection,
        *,
        token_index: TokenIndex | None = None,
        sim: SimilarityFunction | None = None,
    ) -> Hashable:
        """Swap in a new collection object, rebuilding every shard engine.

        Pass a fresh ``token_index``/``sim`` when the vocabulary changed
        (the index streams only tokens it was built over). Returns the
        new version.
        """
        with self._lock.write():
            if token_index is not None:
                self._token_index = token_index
            if sim is not None:
                self._sim = sim
            self._build(collection)
            self._reloads += 1
        return self.version

    def refresh(self) -> Hashable:
        """Hot-swap the shard engines onto the collection's current
        state. Called lazily by :meth:`drain`/:meth:`search` whenever the
        live version moved; with a delta factory this is O(shards), not a
        re-index. Returns the serving version."""
        with self._lock.write():
            if self._stale():
                self._build(self._collection)
        return self.version

    def _stale(self) -> bool:
        live = getattr(self._collection, "version", None)
        return live is not None and live != self._built_collection_version

    def _ensure_fresh(self) -> None:
        if self._stale():
            self.refresh()

    def stats_snapshot(self) -> dict[str, Any]:
        """Backend-side observability (the ``stats`` wire op)."""
        version = self.version
        return {
            "backend": "engine-pool",
            "shards": self.num_shards,
            "reloads": self._reloads,
            "num_sets": len(self._collection),
            "version": list(version) if isinstance(version, tuple)
            else version,
        }

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    # -- mutation ----------------------------------------------------------

    def _mutable_collection(self):
        return require_mutable(self._collection)

    def insert(
        self, tokens: Iterable[str], *, name: str | None = None
    ) -> int:
        """Insert a set into the live collection; returns its id.

        New tokens are appended to the token index's vector store (or
        prefix index) so they stream immediately; shard engines hot-swap
        on the next search.
        """
        collection = self._mutable_collection()
        members = frozenset(tokens)
        # Writers are exclusive: VectorStore.extend appends rows and row
        # ids non-atomically, and concurrent readers must never observe
        # a half-applied mutation (see ReadWriteLock).
        with self._lock.write():
            extend = getattr(self._token_index, "extend", None)
            if extend is not None:
                extend(members)
            return collection.insert(members, name=name)

    def delete(self, ref: int | str) -> int:
        """Delete a live set by id or name; returns the id."""
        with self._lock.write():
            return self._mutable_collection().delete(ref)

    def replace(self, ref: int | str, tokens: Iterable[str]) -> int:
        """Replace a live set's contents; returns the new id."""
        collection = self._mutable_collection()
        members = frozenset(tokens)
        with self._lock.write():
            extend = getattr(self._token_index, "extend", None)
            if extend is not None:
                extend(members)
            return collection.replace(ref, members)

    # -- searching ---------------------------------------------------------

    def _effective_alpha(self, alpha: float | None) -> float:
        return resolve_alpha(self._alpha, alpha, self._token_index)

    def _engine_kind(self) -> str | None:
        """The configured refinement engine (drains follow it)."""
        return None if self._config is None else self._config.engine

    def engine_description(self) -> dict[str, Any]:
        """What executes a query, for EXPLAIN reports."""
        return {
            "backend": "engine-pool",
            "engine": self._engine_kind() or "columnar",
            "shards": self.num_shards,
        }

    def drain(
        self, query: Iterable[str], *, alpha: float | None = None
    ) -> MaterializedTokenStream:
        """Drain one token stream usable by every shard engine (they all
        share the full collection vocabulary)."""
        query_set = frozenset(query)
        if not query_set:
            raise EmptyQueryError("query set is empty")
        effective_alpha = self._effective_alpha(alpha)
        while True:
            self._ensure_fresh()
            with self._lock.read():
                if self._stale():
                    continue  # a mutation slipped in; swap and retry
                stream = materialize_stream(
                    self._token_index,
                    self._collection,
                    query_set,
                    effective_alpha,
                    engine=self._engine_kind(),
                )
                stream.version = self.version
                return stream

    def search(
        self,
        query: Iterable[str],
        k: int = 10,
        *,
        alpha: float | None = None,
        stream: MaterializedTokenStream | None = None,
        time_budget: float | None = None,
    ) -> SearchResult:
        """Exact global top-k via all shards; same contract as
        :meth:`KoiosSearchEngine.search` with ``resolve_scores=True``.

        The whole scatter runs under the pool's read lock, so every
        shard observes one collection version end to end — a concurrent
        mutation waits for in-flight searches, then the next search
        hot-swaps onto the new version.
        """
        query_set = frozenset(query)
        effective_alpha = self._effective_alpha(alpha)
        while True:
            self._ensure_fresh()
            with self._lock.read():
                if self._stale():
                    continue  # a mutation slipped in; swap and retry
                return self._search_locked(
                    query_set, k, effective_alpha, stream, time_budget
                )

    def _search_locked(
        self,
        query_set: frozenset[str],
        k: int,
        alpha: float,
        stream: MaterializedTokenStream | None,
        time_budget: float | None,
    ) -> SearchResult:
        engines = self._engines
        if not engines:
            # This pool's partition holds no live sets: the exact top-k
            # over an empty slice is empty.
            if k < 1:
                raise InvalidParameterError("k must be >= 1")
            return SearchResult(entries=[], stats=SearchStats(), k=k)
        if stream is not None and (
            stream.version is not None and stream.version != self.version
        ):
            # The caller drained at an older collection version (e.g. a
            # micro-batch union drain that raced a mutation); replaying
            # it against the hot-swapped engines would be a torn view —
            # the stream's vocabulary filter belongs to the old state.
            stream = None
        if stream is None:
            stream = materialize_stream(
                self._token_index,
                self._collection,
                query_set,
                alpha,
                engine=self._engine_kind(),
            )
        shared = GlobalThreshold()
        # One wall-clock deadline for the whole query: each shard gets
        # whatever budget remains, not a fresh copy of the full budget.
        deadline = (
            None if time_budget is None
            else time.perf_counter() + time_budget
        )

        # Shard searches may run on executor threads, where the tracing
        # context variable does not follow; capture the caller's span
        # here and parent each shard span explicitly.
        tracer = get_tracer()
        trace_parent = current_context() if tracer.enabled else None

        def run_shard(item: tuple[int, KoiosSearchEngine]) -> SearchResult:
            index, engine = item
            remaining = None
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0.0:
                    return SearchResult(
                        entries=[], stats=SearchStats(), k=k, timed_out=True
                    )
            if trace_parent is None:
                return engine.search(
                    query_set,
                    k,
                    alpha=alpha,
                    stream=stream,
                    shared_threshold=shared,
                    time_budget=remaining,
                )
            with tracer.span(
                "engine.search",
                parent=trace_parent,
                tags={"shard": index},
            ):
                return engine.search(
                    query_set,
                    k,
                    alpha=alpha,
                    stream=stream,
                    shared_threshold=shared,
                    time_budget=remaining,
                )

        if self._executor is not None:
            shard_results = list(
                self._executor.map(run_shard, enumerate(engines))
            )
        else:
            shard_results = [
                run_shard(item) for item in enumerate(engines)
            ]
        return merge_results(shard_results, k)


def merge_results(shard_results: list[SearchResult], k: int) -> SearchResult:
    """Merge-sort per-shard top-k lists into the global top-k.

    Shards partition the id space, so every set appears in at most one
    list; a :class:`TopKList` keeps the k best by ``(score, -set_id)``,
    which reproduces the engine's ``(-score, set_id)`` ranking exactly.
    """
    best = TopKList(k)
    entries_by_id: dict[int, ResultEntry] = {}
    stats = SearchStats()
    partition_stats: list[SearchStats] = []
    timed_out = False
    degraded = False
    coverage: tuple[int, int] | None = None
    candidates: list[ResultEntry] = []
    for result in shard_results:
        timed_out = timed_out or result.timed_out
        if result.degraded:
            degraded = True
        if result.coverage is not None:
            # Partial coverage combines by summing: partials merged
            # here partition disjoint slices of one id space.
            answered, total = result.coverage
            if coverage is None:
                coverage = (answered, total)
            else:
                coverage = (coverage[0] + answered, coverage[1] + total)
        stats.merge(result.stats)
        partition_stats.extend(result.partition_stats)
        candidates.extend(result.entries)
    # Offer in final rank order: TopKList keeps first-come on value ties,
    # so pre-sorting by (-score, set_id) makes the k-th-place tie-break
    # match the engine's ranking exactly.
    candidates.sort(key=lambda e: (-e.score, e.set_id))
    for entry in candidates:
        entries_by_id[entry.set_id] = entry
        best.offer(entry.set_id, entry.score)
    entries = [entries_by_id[set_id] for set_id, _ in best.items()]
    return SearchResult(
        entries=entries,
        stats=stats,
        k=k,
        timed_out=timed_out,
        partition_stats=partition_stats,
        degraded=degraded,
        coverage=coverage,
    )
