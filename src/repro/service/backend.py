"""The transport-agnostic serving backend contract.

:class:`~repro.service.scheduler.QueryScheduler` and the JSON-lines
server were written against :class:`~repro.service.pool.EnginePool`;
this module names the slice of that surface they actually use, so any
object that executes searches — a thread-sharded pool in this process,
or the multi-process scatter-gather coordinator of
:mod:`repro.cluster` — can sit behind the same scheduler, cache, and
wire protocol unchanged.

The contract is intentionally the *semantic* one, not a transport one:

* ``version`` keys the result cache — it must change whenever results
  could change, and it must be hashable;
* ``drain``/``search`` must produce results bitwise-identical to a
  single warm :class:`~repro.core.koios.KoiosSearchEngine` over the
  same partition layout (exactness is the product; no backend may trade
  it away silently);
* mutations are applied synchronously — when ``insert``/``delete``/
  ``replace`` returns, every subsequent ``search`` observes the new
  state (cluster backends enforce this with a version barrier across
  worker processes).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Protocol, runtime_checkable

from repro.core.koios import SearchResult
from repro.datasets.collection import SetCollection
from repro.errors import InvalidParameterError
from repro.index.token_stream import MaterializedTokenStream


def resolve_alpha(
    default_alpha: float, alpha: float | None, token_index
) -> float:
    """Resolve a per-call alpha against the backend default, refusing
    thresholds the token index cannot serve exactly (a prefix-Jaccard
    index built for alpha_0 silently drops matches below alpha_0 — that
    must be a loud error on the wire, not missing results). Shared by
    every backend so validation can never drift between them."""
    effective = default_alpha if alpha is None else alpha
    if not (0.0 < effective <= 1.0):
        raise InvalidParameterError("alpha must be in (0, 1]")
    index_alpha = getattr(token_index, "alpha", None)
    if index_alpha is not None and effective < index_alpha:
        raise InvalidParameterError(
            f"token index is only exact for alpha >= {index_alpha}; "
            f"rebuild it for alpha {effective} to search below that"
        )
    return effective


def require_mutable(collection: SetCollection):
    """The collection, if it supports live mutation; loud otherwise."""
    if not hasattr(collection, "insert"):
        raise InvalidParameterError(
            "collection is immutable; serve a MutableSetCollection "
            "(e.g. 'repro serve <snapshot> --wal <log>') to enable "
            "insert/delete/replace"
        )
    return collection


def materialize_stream(
    token_index,
    collection: SetCollection,
    query_set: frozenset[str],
    alpha: float,
    *,
    engine: str | None = None,
) -> MaterializedTokenStream:
    """Drain one replayable stream over the collection's vocabulary —
    the exact drain every backend (and every cluster worker) performs,
    kept in one place so replicas can never drain differently.

    ``engine`` selects the drain implementation
    (:data:`~repro.core.config.ENGINE_COLUMNAR` uses the block drain
    when the index supports it); both implementations produce
    bitwise-identical streams, so mixed fleets stay exact.
    """
    from repro.core.config import ENGINE_COLUMNAR
    from repro.core.fastpath import drain_stream
    from repro.index.interning import token_table_for

    effective = ENGINE_COLUMNAR if engine is None else engine
    table = (
        token_table_for(collection) if effective == ENGINE_COLUMNAR else None
    )
    return drain_stream(
        query_set,
        token_index,
        alpha,
        vocabulary=collection.vocabulary,
        engine=effective,
        table=table,
    )


@runtime_checkable
class SearchBackend(Protocol):
    """What the scheduler and server require of a serving backend."""

    @property
    def collection(self) -> SetCollection:
        """The live repository (used to resolve names for WAL records)."""
        ...

    @property
    def alpha(self) -> float:
        """Default element-similarity threshold for requests without one."""
        ...

    @property
    def version(self) -> Hashable:
        """Cache-key component; changes whenever results could change."""
        ...

    def drain(
        self, query: Iterable[str], *, alpha: float | None = None
    ) -> MaterializedTokenStream:
        """Drain one replayable token stream covering ``query``."""
        ...

    def search(
        self,
        query: Iterable[str],
        k: int = 10,
        *,
        alpha: float | None = None,
        stream: MaterializedTokenStream | None = None,
        time_budget: float | None = None,
    ) -> SearchResult:
        """Exact global top-k for ``query``."""
        ...

    def insert(
        self, tokens: Iterable[str], *, name: str | None = None
    ) -> int:
        """Add a set to the live collection; returns its id."""
        ...

    def delete(self, ref: int | str) -> int:
        """Remove a live set by id or name; returns the id."""
        ...

    def replace(self, ref: int | str, tokens: Iterable[str]) -> int:
        """Swap a live set's contents; returns the new id."""
        ...

    def stats_snapshot(self) -> Mapping[str, object]:
        """Backend-side observability for the ``stats`` wire op."""
        ...
