"""Building a serving stack from a collection path — the one code path
behind ``repro serve``, ``repro batch``, ``repro cluster serve``, and
every gateway tenant.

This used to live inside the CLI as ``argparse.Namespace`` plumbing;
the gateway's tenant registry needs the identical behaviour (snapshot
restore with substrate, WAL wrap + replay, pool + scheduler wiring)
per *tenant*, so the logic lives here with plain parameters and the CLI
delegates. One path means a tenant served through the gateway can never
drift from what ``repro serve`` would have built for the same flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Hashable

from repro.core.config import FilterConfig
from repro.datasets.collection import SetCollection
from repro.datasets.io import load_collection_auto
from repro.errors import InvalidParameterError
from repro.service.cache import ResultCache
from repro.service.metrics import ServiceMetrics
from repro.service.pool import EnginePool
from repro.service.scheduler import QueryScheduler


def substrate_descriptor(
    *, jaccard: bool = False, dim: int = 64, alpha: float = 0.8
) -> dict:
    """The substrate description selected by ``jaccard``/``dim``
    (manifest schema) — without building any artifacts, for callers
    that only ship the description (e.g. ``cluster bench``)."""
    if jaccard:
        return {"kind": "qgram-jaccard", "q": 3, "alpha": alpha}
    return {
        "kind": "hashing-cosine",
        "dim": dim,
        "n_min": 3,
        "n_max": 5,
        "salt": "hashing-embedding",
        "batch_size": 100,
    }


def build_substrate(
    collection: SetCollection,
    *,
    jaccard: bool = False,
    dim: int = 64,
    alpha: float = 0.8,
):
    """The ``(token_index, sim, descriptor)`` selected by
    ``jaccard``/``dim``.

    The descriptor is what ``index build`` persists in the snapshot
    manifest; it *parameterizes* the construction (rather than being
    written down separately), and the construction itself is the same
    :func:`~repro.cluster.worker.substrate_from_descriptor` every
    cluster worker replica uses — one code path, so a restored or
    replicated substrate can never drift from the one built here.
    """
    from repro.cluster.worker import substrate_from_descriptor

    descriptor = substrate_descriptor(jaccard=jaccard, dim=dim, alpha=alpha)
    index, sim = substrate_from_descriptor(descriptor, collection.vocabulary)
    return index, sim, descriptor


def load_serving_stack(
    path: str | Path,
    *,
    alpha: float = 0.8,
    jaccard: bool = False,
    dim: int = 64,
):
    """``(collection, token_index, sim, descriptor, snapshot_path)``
    for a search-capable command.

    Snapshot inputs restore their persisted substrate (the snapshot's
    configuration wins over ``jaccard``/``dim``) and come back as a
    mutable overlay adopting the persisted postings — no re-index, and
    the serve ops can mutate it. JSON/CSV inputs build the substrate
    from the flags. ``descriptor`` is the substrate's manifest-schema
    description (what cluster workers rebuild their replica index
    from); ``snapshot_path`` is non-None when the input was a snapshot,
    so cluster workers can bootstrap by loading it themselves.
    """
    from repro.store.snapshot import SNAPSHOT_SUFFIXES, load_snapshot

    if Path(path).suffix.lower() in SNAPSHOT_SUFFIXES:
        loaded = load_snapshot(path)
        overlay = loaded.mutable()
        if loaded.token_index is not None:
            substrate = loaded.manifest.substrate or {}
            index_alpha = substrate.get("alpha")
            if index_alpha is not None and alpha < float(index_alpha):
                # A prefix-Jaccard index is only exact at or above the
                # alpha it was built for; serving below it would
                # silently drop matches in [alpha, index_alpha).
                raise InvalidParameterError(
                    f"snapshot's {substrate.get('kind')} index was built "
                    f"for alpha >= {index_alpha}; rebuild it ('repro "
                    f"index build ... --alpha {alpha}') to serve "
                    f"alpha {alpha}"
                )
            return (
                overlay,
                loaded.token_index,
                loaded.sim,
                loaded.manifest.substrate,
                str(path),
            )
        index, sim, descriptor = build_substrate(
            overlay, jaccard=jaccard, dim=dim, alpha=alpha
        )
        return overlay, index, sim, descriptor, str(path)
    collection = load_collection_auto(path)
    index, sim, descriptor = build_substrate(
        collection, jaccard=jaccard, dim=dim, alpha=alpha
    )
    return collection, index, sim, descriptor, None


@dataclass
class ServingStack:
    """One fully wired serving stack (what ``repro serve`` runs and what
    a gateway tenant owns): the scheduler in front, plus the pieces a
    caller may need to introspect or shut down.

    ``pool`` is an :class:`EnginePool` for in-process serving or a
    :class:`~repro.cluster.coordinator.ClusterPool` when the stack was
    built with ``cluster_workers`` — both present the same
    ``SearchBackend`` surface to the scheduler."""

    scheduler: QueryScheduler
    pool: "EnginePool | object"
    collection: SetCollection
    wal: object | None
    replayed: int
    descriptor: dict | None
    snapshot_path: str | None

    def close(self) -> None:
        """Drain the scheduler and flush/close the WAL (idempotent)."""
        self.scheduler.shutdown()
        self.pool.shutdown()


def build_serving_stack(
    collection_path: str | Path,
    *,
    alpha: float = 0.8,
    jaccard: bool = False,
    dim: int = 64,
    iub_mode: str = "paper",
    engine: str = "columnar",
    shards: int = 1,
    parallel_shards: bool = False,
    workers: int = 1,
    max_batch: int = 8,
    cache: ResultCache | None = None,
    cache_size: int | None = 1024,
    wal_path: str | Path | None = None,
    cache_namespace: Hashable | None = None,
    metrics: ServiceMetrics | None = None,
    cluster_workers: int | None = None,
    cluster_replicas: int = 1,
) -> ServingStack:
    """Load a collection and wire the full serving stack around it.

    ``cache`` (an existing, possibly shared cache) wins over
    ``cache_size`` (build a private one; 0/None disables caching).
    ``wal_path`` wraps the collection in a mutable overlay, replays any
    existing records, and makes accepted mutations durable.
    ``cache_namespace`` tags this stack's cache keys (see
    :class:`~repro.service.scheduler.QueryScheduler`).
    ``cluster_workers`` switches the backend to a multi-process
    :class:`~repro.cluster.coordinator.ClusterPool` with that many
    worker processes (``shards`` then means engines per worker); WAL
    records replay through the cluster's bootstrap path so worker
    replicas and the coordinator derive identical state.
    ``cluster_replicas`` spawns that many processes per partition slot
    (failover reads; ignored for in-process serving).
    """
    from repro.store.wal import WriteAheadLog, pending_records, replay_pending

    collection, index, sim, descriptor, snapshot_path = load_serving_stack(
        collection_path, alpha=alpha, jaccard=jaccard, dim=dim
    )
    # Snapshot inputs may carry the WAL-compaction handshake: records
    # already folded into the snapshot must not be replayed a second
    # time if a crash landed between the snapshot replace and the WAL
    # reset (see repro.store.wal.pending_records).
    snapshot_manifest = None
    if snapshot_path is not None and wal_path is not None:
        from repro.store.snapshot import inspect_snapshot

        snapshot_manifest = inspect_snapshot(snapshot_path)
    config = FilterConfig.koios(iub_mode=iub_mode, engine=engine)
    wal = None
    replayed = 0
    if cluster_workers is not None:
        if cluster_workers < 1:
            raise InvalidParameterError("cluster_workers must be >= 1")
        from repro.cluster.coordinator import ClusterPool

        bootstrap_records: tuple = ()
        if wal_path is not None:
            if not hasattr(collection, "insert"):
                from repro.store.mutable import MutableSetCollection

                collection = MutableSetCollection(collection)
            wal = WriteAheadLog(wal_path)
            # NOT replay_into: the cluster needs the version-0 base and
            # applies prior mutations itself, so restarted workers can
            # reconstruct byte-identical state from base + history.
            bootstrap_records = tuple(
                pending_records(wal, snapshot_manifest)
            )
            replayed = len(bootstrap_records)
        pool = ClusterPool(
            collection,
            index,
            sim,
            alpha=alpha,
            workers=cluster_workers,
            replicas=cluster_replicas,
            shards=shards,
            config=config,
            snapshot_path=snapshot_path,
            # load_serving_stack already hashed this very file while
            # loading the coordinator replica (load_snapshot defaults
            # to verify=True); a second coordinator-side pass would be
            # pure duplicate I/O.
            verify_snapshot=False,
            substrate=descriptor,
            bootstrap_records=bootstrap_records,
        )
    else:
        if wal_path is not None:
            if not hasattr(collection, "insert"):
                # JSON/CSV input: wrap the overlay here (snapshot inputs
                # already are one, with their postings adopted).
                from repro.store.mutable import MutableSetCollection

                collection = MutableSetCollection(collection)
            wal = WriteAheadLog(wal_path)
            replayed = replay_pending(wal, snapshot_manifest, collection)
            if replayed:
                extend = getattr(index, "extend", None)
                if extend is not None:
                    extend(collection.vocabulary)
        pool = EnginePool(
            collection,
            index,
            sim,
            alpha=alpha,
            shards=shards,
            parallel_shards=parallel_shards,
            config=config,
        )
    if cache is None and cache_size:
        cache = ResultCache(capacity=cache_size)
    scheduler = QueryScheduler(
        pool,
        cache=cache,
        metrics=metrics,
        max_batch=max_batch,
        workers=workers,
        wal=wal,
        cache_namespace=cache_namespace,
    )
    return ServingStack(
        scheduler=scheduler,
        pool=pool,
        collection=collection,
        wal=wal,
        replayed=replayed,
        descriptor=descriptor,
        snapshot_path=snapshot_path,
    )
