"""The concurrent query-serving subsystem.

Turns the single-shot :class:`~repro.core.koios.KoiosSearchEngine` into
a long-lived server::

    scheduler -> result cache -> engine pool (shards) -> top-k merge

* :class:`QueryScheduler` — admission, in-flight dedup, micro-batching
* :class:`ResultCache` — versioned LRU over finished results
* :class:`EnginePool` — warm per-shard engines, exact global merge
* :class:`SearchBackend` — the transport-agnostic backend protocol the
  scheduler runs over (:class:`EnginePool` in-process, or the
  multi-process :class:`~repro.cluster.ClusterPool`)
* :class:`ServiceMetrics` — QPS, latency quantiles, hit/occupancy rates
* :mod:`repro.service.server` — the JSON-lines protocol used by
  ``repro serve`` and ``repro batch``

See ``docs/service.md`` for the architecture walk-through.
"""

from repro.service.backend import SearchBackend
from repro.service.cache import CacheKey, ResultCache, make_key
from repro.service.metrics import ServiceMetrics, percentile
from repro.service.pool import EnginePool, ReadWriteLock, merge_results
from repro.service.request import (
    Hit,
    SearchRequest,
    SearchResponse,
    hits_from_result,
)
from repro.service.scheduler import QueryScheduler, Ticket
from repro.service.server import (
    GracefulShutdown,
    parse_request_lines,
    run_batch,
    serve_lines,
)

__all__ = [
    "CacheKey",
    "EnginePool",
    "GracefulShutdown",
    "Hit",
    "QueryScheduler",
    "ReadWriteLock",
    "ResultCache",
    "SearchBackend",
    "SearchRequest",
    "SearchResponse",
    "ServiceMetrics",
    "Ticket",
    "hits_from_result",
    "make_key",
    "merge_results",
    "parse_request_lines",
    "percentile",
    "run_batch",
    "serve_lines",
]
