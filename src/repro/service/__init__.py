"""The concurrent query-serving subsystem.

Turns the single-shot :class:`~repro.core.koios.KoiosSearchEngine` into
a long-lived server::

    scheduler -> result cache -> engine pool (shards) -> top-k merge

* :class:`QueryScheduler` — admission, in-flight dedup, micro-batching
* :class:`ResultCache` — versioned LRU over finished results
* :class:`EnginePool` — warm per-shard engines, exact global merge
* :class:`SearchBackend` — the transport-agnostic backend protocol the
  scheduler runs over (:class:`EnginePool` in-process, or the
  multi-process :class:`~repro.cluster.ClusterPool`)
* :class:`ServiceMetrics` — QPS, latency quantiles, hit/occupancy rates
* :mod:`repro.service.server` — the JSON-lines protocol used by
  ``repro serve`` and ``repro batch``
* :mod:`repro.service.bootstrap` — one construction path
  (:func:`build_serving_stack`) shared by ``repro serve``, ``repro
  batch``, and every tenant of the network gateway
  (:mod:`repro.gateway`)

See ``docs/service.md`` for the architecture walk-through.
"""

from repro.service.backend import SearchBackend
from repro.service.bootstrap import (
    ServingStack,
    build_serving_stack,
    build_substrate,
    load_serving_stack,
    substrate_descriptor,
)
from repro.service.cache import CacheKey, ResultCache, make_key
from repro.service.metrics import ServiceMetrics, percentile
from repro.service.pool import EnginePool, ReadWriteLock, merge_results
from repro.service.request import (
    Hit,
    SearchRequest,
    SearchResponse,
    hits_from_result,
)
from repro.service.scheduler import QueryScheduler, Ticket
from repro.service.server import (
    GracefulShutdown,
    control_line,
    parse_request_lines,
    run_batch,
    serve_lines,
)

__all__ = [
    "CacheKey",
    "EnginePool",
    "GracefulShutdown",
    "Hit",
    "QueryScheduler",
    "ReadWriteLock",
    "ResultCache",
    "SearchBackend",
    "SearchRequest",
    "SearchResponse",
    "ServiceMetrics",
    "ServingStack",
    "Ticket",
    "build_serving_stack",
    "build_substrate",
    "control_line",
    "hits_from_result",
    "load_serving_stack",
    "make_key",
    "merge_results",
    "parse_request_lines",
    "percentile",
    "run_batch",
    "serve_lines",
    "substrate_descriptor",
]
