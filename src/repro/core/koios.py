"""The Koios search facade.

:class:`KoiosSearchEngine` ties the pieces together exactly as Fig. 2 of
the paper sketches: the token stream ``Ie`` (backed by a pluggable vector
or Jaccard index), the inverted index ``Is``, the refinement phase
(Algorithm 1), the post-processing phase (Algorithm 2), and the optional
random partitioning with a shared global ``theta_lb`` (§VI).

A search drains the token stream once, replays it per partition, runs
refinement + post-processing per partition, resolves the exact semantic
overlap of any set accepted without matching, and merge-sorts the
per-partition top-k lists into the final result.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.config import ENGINE_COLUMNAR, FilterConfig
from repro.core.fastpath import (
    ColumnarPartition,
    drain_stream,
    refine_columnar,
    sim_cache_from_stream,
)
from repro.core.fastpath_verify import (
    ColumnarVerifier,
    supports_columnar_verify,
)
from repro.core.postprocessing import (
    VerifiedEntry,
    cache_view,
    index_cache_by_token,
    postprocess,
)
from repro.core.refinement import refine
from repro.index.interning import token_table_for
from repro.obs import traced_phase
from repro.core.semantic_overlap import semantic_overlap_matching
from repro.core.stats import POSTPROCESSING, REFINEMENT, SearchStats
from repro.core.topk import GlobalThreshold, ThetaLB, TopKList
from repro.datasets.collection import SetCollection
from repro.errors import (
    EmptyQueryError,
    InvalidParameterError,
    SearchTimeout,
)
from repro.index.base import TokenIndex
from repro.index.inverted import InvertedIndex
from repro.index.token_stream import MaterializedTokenStream
from repro.sim.base import SimilarityFunction
from repro.utils.memory import deep_sizeof


@dataclass(frozen=True)
class ResultEntry:
    """One set in a top-k result."""

    set_id: int
    name: str
    score: float
    exact: bool
    lower_bound: float
    upper_bound: float


@dataclass
class SearchResult:
    """Outcome of one top-k search.

    ``entries`` are in descending score order (set id breaks ties). When
    ``timed_out`` is True the search exceeded its time budget and
    ``entries`` holds whatever had been verified by then — the way the
    paper reports timed-out queries separately rather than crashing.

    ``degraded`` marks a *partial-coverage* answer: a distributed
    backend could not reach any replica of one or more partitions, so
    ``entries`` is exact over the partitions that answered but may miss
    sets from the silent ones. ``coverage`` is then
    ``(partitions answered, partitions total)``; both stay at their
    defaults on every fully-covered search.
    """

    entries: list[ResultEntry]
    stats: SearchStats
    k: int
    timed_out: bool = False
    partition_stats: list[SearchStats] = field(default_factory=list)
    degraded: bool = False
    coverage: tuple[int, int] | None = None

    def ids(self) -> list[int]:
        return [entry.set_id for entry in self.entries]

    def scores(self) -> list[float]:
        return [entry.score for entry in self.entries]

    @property
    def theta_k(self) -> float:
        """The k-th (smallest returned) semantic overlap, 0.0 if empty."""
        if not self.entries:
            return 0.0
        return self.entries[-1].score


class KoiosSearchEngine:
    """Top-k semantic overlap search over a :class:`SetCollection`.

    Parameters
    ----------
    collection:
        The repository ``L``.
    token_index:
        Any :class:`~repro.index.base.TokenIndex` streaming vocabulary
        tokens by descending similarity to a probe (exact cosine index,
        MinHash LSH, ...). Koios is generic over this choice (§IV).
    sim:
        The element similarity ``sim`` of Definition 1. It must agree
        with ``token_index`` (the index streams *this* similarity).
    alpha:
        Element similarity threshold in (0, 1].
    num_partitions:
        Random partitions processed with a shared ``theta_lb`` (§VI).
    config:
        Filter switches; defaults to full Koios.
    em_workers:
        Thread-pool width for parallel verification (0/1 = sequential).
    parallel_partitions:
        Process partitions concurrently on a thread pool, as the paper
        does on its 64-core testbed. Results are identical either way;
        only wall-clock time and the work-saving effect of the shared
        ``theta_lb`` (fast partitions pruning slow ones early) change.
    set_ids:
        Restrict the searchable repository to these set ids (the full
        collection object is still shared, so ids, names, and vocabulary
        stay global). The engine pool uses this to keep one warm engine
        per shard of the repository.
    inverted_factory:
        Called with each partition's set ids to produce its inverted
        index instead of re-indexing the collection. The store layer
        passes delta-maintained indexes (snapshot postings, mutable
        overlays) through here, making engine construction O(shards)
        rather than O(total postings).
    """

    def __init__(
        self,
        collection: SetCollection,
        token_index: TokenIndex,
        sim: SimilarityFunction,
        *,
        alpha: float = 0.8,
        num_partitions: int = 1,
        partition_seed: int = 0,
        config: FilterConfig | None = None,
        em_workers: int = 0,
        parallel_partitions: bool = False,
        set_ids: Iterable[int] | None = None,
        inverted_factory: Callable[[Sequence[int]], InvertedIndex]
        | None = None,
    ) -> None:
        if not (0.0 < alpha <= 1.0):
            raise InvalidParameterError("alpha must be in (0, 1]")
        if len(collection) == 0:
            raise InvalidParameterError("cannot search an empty collection")
        self._collection = collection
        self._token_index = token_index
        self._sim = sim
        self._alpha = alpha
        self._config = config or FilterConfig.koios()
        self._em_workers = em_workers
        self._parallel_partitions = parallel_partitions
        within = None if set_ids is None else list(set_ids)
        if within is not None and not within:
            raise InvalidParameterError("set_ids may not be empty")
        partitions = collection.partition(
            num_partitions, seed=partition_seed, within=within
        )
        self._partitions = [ids for ids in partitions if ids]
        if inverted_factory is not None:
            self._inverted = [
                inverted_factory(ids) for ids in self._partitions
            ]
        else:
            self._inverted = [
                InvertedIndex(collection, ids) for ids in self._partitions
            ]
        # Columnar context (token table + per-partition CSR views) is
        # built lazily on first search so hot swaps stay O(shards).
        self._columnar_ctx: tuple | None = None
        if all(hasattr(index, "memory_bytes") for index in self._inverted):
            # Delta indexes are views of ONE shared posting store (and
            # each reports its full footprint), so take the max rather
            # than deep-walking that graph per engine build — the walk
            # would dominate the O(shards) hot swap the factory enables.
            self._index_bytes = max(
                index.memory_bytes() for index in self._inverted
            )
        else:
            self._index_bytes = deep_sizeof(self._inverted)

    @property
    def collection(self) -> SetCollection:
        return self._collection

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def config(self) -> FilterConfig:
        return self._config

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    def drain(
        self, query: Iterable[str], *, alpha: float | None = None
    ) -> MaterializedTokenStream:
        """Drain the token stream ``Ie`` for ``query`` without searching.

        The serving layer calls this once per micro-batch (on the union
        of the batch's query sets) and replays :meth:`MaterializedTokenStream.restrict`-ed
        views through :meth:`search`'s ``stream`` parameter, so one index
        drain serves many requests.
        """
        query_set = frozenset(query)
        if not query_set:
            raise EmptyQueryError("query set is empty")
        return drain_stream(
            query_set,
            self._token_index,
            self._check_alpha(alpha),
            vocabulary=self._collection.vocabulary,
            engine=self._config.engine,
            table=self._shared_table(),
        )

    def _shared_table(self):
        """The collection's shared token table (columnar engine only)."""
        if self._config.engine != ENGINE_COLUMNAR:
            return None
        return token_table_for(self._collection)

    def _columnar_context(self):
        """Lazily interned CSR views of every partition's index."""
        if self._columnar_ctx is None:
            table = token_table_for(self._collection)
            partitions = [
                ColumnarPartition.build(index, table)
                for index in self._inverted
            ]
            self._columnar_ctx = (table, partitions)
        return self._columnar_ctx

    def _check_alpha(self, alpha: float | None) -> float:
        if alpha is None:
            return self._alpha
        if not (0.0 < alpha <= 1.0):
            raise InvalidParameterError("alpha must be in (0, 1]")
        return alpha

    def search(
        self,
        query: Iterable[str],
        k: int = 10,
        *,
        alpha: float | None = None,
        resolve_scores: bool = True,
        time_budget: float | None = None,
        stream: MaterializedTokenStream | None = None,
        shared_threshold: GlobalThreshold | None = None,
    ) -> SearchResult:
        """Find the top-k sets by semantic overlap with ``query``.

        Parameters
        ----------
        query:
            The query set ``Q`` (duplicates collapse).
        k:
            Result size.
        alpha:
            Per-call element similarity threshold; defaults to the
            engine's constructor ``alpha``. The engine's indexes are
            alpha-independent, so a warm engine serves any threshold.
        resolve_scores:
            Sets accepted by the No-EM filter carry only score bounds;
            when True (default) their exact overlap is computed at the
            end so the merged ranking is by true score. False keeps the
            paper's lazy behaviour and reports certified lower bounds.
        time_budget:
            Wall-clock budget in seconds; on expiry a partial result
            flagged ``timed_out`` is returned.
        stream:
            A pre-drained token stream to replay instead of draining the
            index again. It must cover the query at exactly this alpha
            (see :meth:`MaterializedTokenStream.covers`); a wider stream
            (e.g. a micro-batch union drain) is restricted automatically.
        shared_threshold:
            A cross-engine ``theta_lb`` (§VI). Shard engines of one pool
            searching the same query share one instance so any shard's
            verified scores prune work in the others.
        """
        query_set = frozenset(query)
        if not query_set:
            raise EmptyQueryError("query set is empty")
        if k < 1:
            raise InvalidParameterError("k must be >= 1")
        alpha = self._check_alpha(alpha)

        stats = SearchStats()
        deadline = (
            time.perf_counter() + time_budget
            if time_budget is not None
            else None
        )
        columnar = self._config.engine == ENGINE_COLUMNAR
        if stream is None:
            with traced_phase(stats.timer, REFINEMENT):
                stream = drain_stream(
                    query_set,
                    self._token_index,
                    alpha,
                    vocabulary=self._collection.vocabulary,
                    engine=self._config.engine,
                    table=self._shared_table(),
                )
        else:
            if not stream.covers(query_set, alpha):
                raise InvalidParameterError(
                    "provided stream does not cover this query/alpha"
                )
            stream = stream.restrict(query_set)
        stats.memory.record("inverted_index", self._index_bytes)
        stats.memory.measure("token_stream", stream)

        shared = (
            shared_threshold if shared_threshold is not None
            else GlobalThreshold()
        )
        cache_by_token: dict[str, list[tuple[str, float]]] | None = None
        if columnar:
            # The similarity cache is a property of the drained stream,
            # not of any partition's schedule: fill it — and group it by
            # token for verification-matrix seeding — once per search.
            with traced_phase(stats.timer, REFINEMENT):
                sim_cache = sim_cache_from_stream(stream)
                cache_by_token = index_cache_by_token(sim_cache)
                columnar_ctx = self._columnar_context()
        else:
            sim_cache = {}
            columnar_ctx = None
        verified: list[VerifiedEntry] = []
        timed_out = False
        partition_stats = [SearchStats() for _ in self._inverted]

        def run_partition(position: int) -> list[VerifiedEntry]:
            return self._search_partition(
                query_set,
                k,
                alpha,
                stream,
                position,
                shared,
                sim_cache,
                partition_stats[position],
                deadline,
                columnar_ctx,
                cache_by_token,
            )

        try:
            if self._parallel_partitions and len(self._inverted) > 1:
                with ThreadPoolExecutor(
                    max_workers=len(self._inverted)
                ) as pool:
                    for entries in pool.map(
                        run_partition, range(len(self._inverted))
                    ):
                        verified.extend(entries)
            else:
                for position in range(len(self._inverted)):
                    verified.extend(run_partition(position))
        except SearchTimeout:
            timed_out = True
        for part_stats in partition_stats:
            stats.merge(part_stats)

        entries = self._rank(
            query_set,
            verified,
            k,
            alpha,
            resolve_scores and not timed_out,
            stats,
            sim_cache,
            cache_by_token,
        )
        return SearchResult(
            entries=entries,
            stats=stats,
            k=k,
            timed_out=timed_out,
            partition_stats=partition_stats,
        )

    # -- internals --------------------------------------------------------

    def _search_partition(
        self,
        query: frozenset[str],
        k: int,
        alpha: float,
        stream: MaterializedTokenStream,
        position: int,
        shared: GlobalThreshold,
        sim_cache: dict[tuple[str, str], float],
        stats: SearchStats,
        deadline: float | None,
        columnar_ctx: tuple | None,
        cache_by_token: dict[str, list[tuple[str, float]]] | None,
    ) -> list[VerifiedEntry]:
        """Refinement + post-processing of one partition."""
        llb = TopKList(k)
        theta = ThetaLB(llb, shared)
        with traced_phase(stats.timer, REFINEMENT):
            if columnar_ctx is not None:
                table, partitions = columnar_ctx
                output = refine_columnar(
                    query,
                    stream,
                    partitions[position],
                    table,
                    theta,
                    stats,
                    self._config,
                    sim_cache=sim_cache,
                    deadline=deadline,
                )
            else:
                output = refine(
                    query,
                    stream,
                    self._inverted[position],
                    self._collection,
                    theta,
                    stats,
                    self._config,
                    sim_cache=sim_cache,
                    deadline=deadline,
                )
        # Instrumentation happens outside the phase timers: deep object
        # walks are bookkeeping, not refinement work, and they would
        # otherwise dominate the phase timings the benches report.
        stats.memory.measure("candidate_states", output.survivors)
        stats.memory.measure("similarity_cache", output.sim_cache)
        stats.memory.measure("topk_lb_list", llb)
        # The columnar engine covers both phases: verification matrices
        # come from one batched matmul per partition instead of
        # per-candidate cache_view/build_graph calls. Similarities
        # without an embedding matrix keep the reference verify path.
        verifier = None
        if columnar_ctx is not None and supports_columnar_verify(self._sim):
            verifier = ColumnarVerifier(
                query, self._collection, columnar_ctx[0], self._sim, alpha
            )
        with traced_phase(stats.timer, POSTPROCESSING):
            entries = postprocess(
                query,
                self._collection,
                output.survivors,
                self._sim,
                alpha,
                k,
                theta,
                stats,
                self._config,
                sim_cache=output.sim_cache,
                cache_by_token=cache_by_token,
                em_workers=self._em_workers,
                deadline=deadline,
                verifier=verifier,
            )
        return entries

    def _rank(
        self,
        query: frozenset[str],
        verified: list[VerifiedEntry],
        k: int,
        alpha: float,
        resolve: bool,
        stats: SearchStats,
        sim_cache: dict[tuple[str, str], float] | None = None,
        cache_by_token: dict[str, list[tuple[str, float]]] | None = None,
    ) -> list[ResultEntry]:
        """Merge per-partition lists, optionally resolving inexact scores.

        Resolution seeds the matching matrix from the same streamed
        similarity cache the in-phase verifications use, so a set's exact
        score is one deterministic float no matter which path resolved it
        — the property that lets the sharded engine pool merge per-shard
        results into byte-identical global rankings.
        """
        resolved: list[VerifiedEntry] = []
        with traced_phase(stats.timer, POSTPROCESSING):
            for entry in verified:
                if resolve and not entry.exact:
                    if cache_by_token is None:
                        cache_by_token = index_cache_by_token(sim_cache)
                    members = self._collection[entry.set_id]
                    result, _, _ = semantic_overlap_matching(
                        query,
                        members,
                        self._sim,
                        alpha,
                        cached_scores=cache_view(cache_by_token, members),
                    )
                    score = result.score
                    stats.resolution_em += 1
                    entry = VerifiedEntry(
                        set_id=entry.set_id,
                        score=score,
                        exact=True,
                        lower_bound=score,
                        upper_bound=score,
                    )
                resolved.append(entry)
        resolved.sort(key=lambda e: (-e.score, e.set_id))
        return [
            ResultEntry(
                set_id=e.set_id,
                name=self._collection.name_of(e.set_id),
                score=e.score,
                exact=e.exact,
                lower_bound=e.lower_bound,
                upper_bound=e.upper_bound,
            )
            for e in resolved[:k]
        ]
