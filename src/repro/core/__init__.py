"""The paper's primary contribution: semantic overlap and the Koios
filter-verification search framework (refinement, post-processing,
partitioned facade, filter configuration, and search statistics)."""

from repro.core.bounds import PAPER, SAFE, CandidateState
from repro.core.buckets import BucketStore
from repro.core.config import FilterConfig
from repro.core.fastpath_verify import (
    ColumnarVerifier,
    supports_columnar_verify,
)
from repro.core.koios import KoiosSearchEngine, ResultEntry, SearchResult
from repro.core.many_to_one import ManyToOneSearchEngine
from repro.core.postprocessing import VerifiedEntry, postprocess
from repro.core.refinement import RefinementOutput, refine
from repro.core.semantic_overlap import (
    greedy_semantic_overlap,
    matching_pairs,
    semantic_overlap,
    semantic_overlap_many_to_one,
    semantic_overlap_matching,
    vanilla_overlap,
)
from repro.core.stats import POSTPROCESSING, REFINEMENT, SearchStats
from repro.core.topk import GlobalThreshold, ThetaLB, TopKList

__all__ = [
    "PAPER",
    "SAFE",
    "BucketStore",
    "CandidateState",
    "ColumnarVerifier",
    "FilterConfig",
    "GlobalThreshold",
    "KoiosSearchEngine",
    "ManyToOneSearchEngine",
    "POSTPROCESSING",
    "REFINEMENT",
    "RefinementOutput",
    "ResultEntry",
    "SearchResult",
    "SearchStats",
    "ThetaLB",
    "TopKList",
    "VerifiedEntry",
    "greedy_semantic_overlap",
    "matching_pairs",
    "postprocess",
    "refine",
    "semantic_overlap",
    "semantic_overlap_many_to_one",
    "semantic_overlap_matching",
    "supports_columnar_verify",
    "vanilla_overlap",
]
