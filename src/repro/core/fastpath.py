"""The columnar refinement engine — Algorithm 1 as NumPy trajectories.

The reference implementation (:mod:`repro.core.refinement`) walks the
token stream tuple by tuple and, for every tuple, loops in Python over
the probed posting list: dict lookups, ``CandidateState`` method calls,
set membership tests. That per-edge interpreter overhead — not the
arithmetic — is what saturates a core on large repositories.

The fast path splits the phase into two parts with very different
execution models, exploiting one structural fact: **a candidate's
greedy matching evolves independently of every other candidate and of
all pruning decisions** (``observe`` consults only the candidate's own
matched tokens/elements). Pruning merely decides *whether a candidate
is still watched*, never *how its matching would have grown*.

1. **Trajectory phase (vectorized).** Tokens and query elements are
   interned to integer ids (:mod:`repro.index.interning`), the inverted
   index becomes two flat CSR arrays, and stream blocks expand into
   edge arrays via ``np.repeat``. Candidate state is a struct of
   arrays — ``matched_score``, ``matched_count``, capacities, matched
   flags over CSR positions — updated with masked fancy indexing. Each
   candidate's edges apply in stream order ("round" r applies every
   candidate's r-th edge, all candidates at once), so every partial
   matching score is bit-for-bit the reference's. The phase emits a
   compact event log: admissions (with their precomputed first-sight
   upper bounds) and valid matching extensions, each stamped with its
   stream position.

2. **Replay phase (sequential, exact).** The event log is replayed in
   stream order through the *reference* threshold machinery — the same
   :class:`~repro.core.topk.TopKList` offers, the same
   :class:`~repro.core.buckets.BucketStore` moves and per-tuple sweeps,
   the same Lemma-2 first-sight check against the live ``theta_lb``.
   Events of already-pruned candidates are skipped, exactly as the
   reference skips their posting entries. Because the bounds offered
   and compared are identical floats applied in the identical order,
   the pruned set, the survivor states, and the frozen bounds are
   bitwise-identical to the reference engine's — on *any* input,
   including the near-tie configurations where the paper-mode iUB is
   not sound and results genuinely depend on the pruning schedule.

The replay only touches admissions and valid extensions; the dominant
costs of the reference loop — probing edges of pruned candidates,
discarded-edge bookkeeping, per-admission set algebra — stay columnar.
Two stats counters (``observed_edges``/``discarded_edges``) are
computed from the full trajectories and therefore also count edges the
reference stops probing once a candidate is pruned; all pruning/
resolution counters (the ones ``consistency_ok`` audits) are exact.

The columnar *drain* (:func:`fast_drain`) applies the same idea to
stream generation: instead of the heap-merged per-tuple release of
:class:`~repro.index.token_stream.TokenStream`, each query element's
similarity block comes from one matrix-vector product
(:meth:`~repro.index.vector_index.ExactCosineIndex.probe_similarities`
— numerically the identical float32 computation), is filtered against
``alpha`` and the collection vocabulary as arrays, and the blocks are
merged by an exact simulation of the reference heap's push-counter
tiebreak (NOT a plain argsort — equal similarities across query
elements must pop in the reference's insertion order to keep the
stream bitwise-identical).
"""

from __future__ import annotations

import time
from typing import AbstractSet, Iterable

import numpy as np

from repro.core.bounds import CandidateState
from repro.core.config import ENGINE_COLUMNAR, FilterConfig
from repro.core.refinement import RefinementOutput
from repro.core.stats import SearchStats
from repro.core.topk import ThetaLB
from repro.errors import (
    EmptyQueryError,
    InvalidParameterError,
    SearchTimeout,
)
from repro.index.interning import CSRPostings, TokenTable, csr_from_index
from repro.index.token_stream import MaterializedTokenStream
from repro.obs import annotate

#: Stream tuples per trajectory block — bounds peak edge-array memory
#: and the number of per-block "rounds" (max edges one candidate has in
#: a block); it does not affect results (pruning happens in the exact
#: replay, not per block).
BLOCK_SIZE = 4096


class ColumnarPartition:
    """Immutable per-partition context shared by every search.

    Holds the CSR posting view of one partition's inverted index plus
    the derived arrays that do not depend on the query: per-set
    cardinalities and the dense id-space size.
    """

    __slots__ = ("csr", "sizes", "n_ids")

    def __init__(self, csr: CSRPostings) -> None:
        self.csr = csr
        self.sizes = csr.set_sizes()
        self.n_ids = int(self.sizes.shape[0])

    @classmethod
    def build(cls, inverted, table: TokenTable) -> "ColumnarPartition":
        columnar = getattr(inverted, "columnar", None)
        if columnar is not None:
            return cls(columnar(table))
        return cls(csr_from_index(inverted, table))

    def nbytes(self) -> int:
        return self.csr.nbytes() + int(self.sizes.nbytes)


def sim_cache_from_stream(
    stream: MaterializedTokenStream,
) -> dict[tuple[str, str], float]:
    """The full ``(q, t) -> s`` cache of a drained stream.

    Each pair occurs at most once per stream, so the cache is one dict
    comprehension instead of the reference's per-tuple get/compare. It
    is a property of the stream, not of any partition's refinement
    schedule, which is why the columnar engine fills it up front.
    """
    return {(q_token, token): s for q_token, token, s in stream}


def _per_query_block(
    index, q_token: str, q_id: int, alpha: float, row_ids: np.ndarray
) -> tuple[list[int], list[float]]:
    """One query element's descending ``(token_id, sim)`` block.

    Reproduces :class:`~repro.index.vector_index.ExactCosineIndex`'s
    released order bitwise — including the self-match-first rule and the
    batched argpartition/argsort release (whose tie placement at the
    batch boundary is deterministic for a given input) — but filters
    vocabulary and ``alpha`` as array masks instead of per-tuple Python.
    """
    token_ids: list[int] = []
    sims_out: list[float] = []
    if q_id >= 0:
        # The self-match rule of §V: a query element yields itself with
        # similarity 1.0 when it is in the vocabulary.
        token_ids.append(q_id)
        sims_out.append(1.0)
    sims = index.probe_similarities(q_token)
    if sims is None:
        return token_ids, sims_out
    sims = sims.astype(np.float64)
    size = sims.shape[0]
    batch = index.batch_size
    if size > batch:
        top = np.argpartition(-sims, batch - 1)[:batch]
        top = top[np.argsort(-sims[top], kind="stable")]
        full = np.argsort(-sims, kind="stable")
        in_top = np.zeros(size, dtype=bool)
        in_top[top] = True
        order = np.concatenate([top, full[~in_top[full]]])
    else:
        order = np.argsort(-sims, kind="stable")
    ordered_sims = sims[order]
    ordered_ids = row_ids[order]
    keep = (ordered_sims >= alpha) & (ordered_ids >= 0)
    if q_token in index.store:
        keep &= order != index.store.row_of(q_token)  # self-match is above
    token_ids.extend(ordered_ids[keep].tolist())
    sims_out.extend(ordered_sims[keep].tolist())
    return token_ids, sims_out


def fast_drain(
    query_tokens: Iterable[str],
    index,
    alpha: float,
    *,
    vocabulary: AbstractSet[str],
    table: TokenTable | None = None,
) -> MaterializedTokenStream:
    """Columnar drain of the token stream ``Ie`` for a cosine index.

    Bitwise-identical to a :class:`~repro.index.token_stream.TokenStream`
    drain — the same float32 similarity products, the same self-match /
    vocabulary / ``alpha`` rules, and the same merged order (the heap's
    push-counter tiebreak is simulated exactly) — but each query
    element's block is produced by one matrix-vector product plus array
    filtering instead of per-tuple generator machinery. The interned
    column arrays are attached so refinement never re-encodes tuples.
    """
    import heapq

    if not (0.0 < alpha <= 1.0):
        raise InvalidParameterError("alpha must be in (0, 1]")
    query = sorted(set(query_tokens))
    if not query:
        raise EmptyQueryError("query set is empty")
    if table is None:
        table = TokenTable.from_vocabulary(vocabulary)
    row_ids = index.row_token_ids(table)
    blocks = [
        _per_query_block(index, q_token, table.id_of(q_token), alpha, row_ids)
        for q_token in query
    ]
    # Exact replication of TokenStream's |Q|-way heap merge: entries are
    # (-sim, push_counter, q_index); the counter advances on every push,
    # so equal similarities pop in the reference's insertion order.
    heap: list[tuple[float, int, int]] = []
    counter = 0
    positions = [0] * len(query)
    for q_index, (token_ids, sims) in enumerate(blocks):
        if token_ids:
            heapq.heappush(heap, (-sims[0], counter, q_index))
            counter += 1
    out_qi: list[int] = []
    out_tid: list[int] = []
    out_s: list[float] = []
    while heap:
        neg_sim, _, q_index = heapq.heappop(heap)
        token_ids, sims = blocks[q_index]
        position = positions[q_index]
        positions[q_index] = position + 1
        following = position + 1
        if following < len(token_ids):
            heapq.heappush(heap, (-sims[following], counter, q_index))
            counter += 1
        out_qi.append(q_index)
        out_tid.append(token_ids[position])
        out_s.append(-neg_sim)
    q_col = np.asarray(out_qi, dtype=np.int64)
    t_col = np.asarray(out_tid, dtype=np.int64)
    s_col = np.asarray(out_s, dtype=np.float64)
    tokens = table.tokens
    tuples = [
        (query[qi], tokens[ti], s)
        for qi, ti, s in zip(out_qi, out_tid, out_s)
    ]
    stream = MaterializedTokenStream(
        tuples, query_tokens=frozenset(query), alpha=alpha
    )
    stream.attach_columns(table, query, (q_col, t_col, s_col))
    return stream


def drain_stream(
    query_tokens: Iterable[str],
    token_index,
    alpha: float,
    *,
    vocabulary: AbstractSet[str],
    engine: str = ENGINE_COLUMNAR,
    table: TokenTable | None = None,
) -> MaterializedTokenStream:
    """Drain dispatcher: the columnar block drain when the engine and
    index support it, the reference heap drain otherwise."""
    if engine == ENGINE_COLUMNAR and hasattr(token_index, "probe_similarities"):
        return fast_drain(
            query_tokens,
            token_index,
            alpha,
            vocabulary=vocabulary,
            table=table,
        )
    return MaterializedTokenStream.drain(
        query_tokens,
        token_index,
        alpha,
        collection_vocabulary=vocabulary,
    )


def refine_columnar(
    query: frozenset[str],
    stream: MaterializedTokenStream,
    partition: ColumnarPartition,
    table: TokenTable,
    theta: ThetaLB,
    stats: SearchStats,
    config: FilterConfig,
    *,
    sim_cache: dict[tuple[str, str], float] | None = None,
    deadline: float | None = None,
    block_size: int = BLOCK_SIZE,
) -> RefinementOutput:
    """Run Algorithm 1 over one partition: vectorized trajectories plus
    an exact sequential replay of the pruning decisions.

    Same contract — and bitwise-identical outcome — as
    :func:`repro.core.refinement.refine`; ``partition`` and ``table``
    replace the inverted index / collection pair (everything refinement
    needs about candidates is in the CSR arrays).
    """
    if sim_cache is None:
        sim_cache = {}
    if not sim_cache:
        sim_cache.update(sim_cache_from_stream(stream))

    query_sorted = sorted(query)
    nq = len(query_sorted)
    q_col, t_col, s_col = stream.columns(table, query_sorted)
    n_tuples = int(s_col.shape[0])
    last_similarity = float(s_col[-1]) if n_tuples else 1.0
    stats.stream_tuples += n_tuples
    stats.final_stream_similarity = last_similarity

    n_ids = partition.n_ids
    if n_tuples == 0 or n_ids == 0:
        return RefinementOutput(
            survivors={}, sim_cache=sim_cache, last_similarity=last_similarity
        )

    offsets = partition.csr.offsets
    posting_sets = partition.csr.sets
    sizes = partition.sizes
    capacity = np.minimum(nq, sizes)

    # -- query-level precomputation ------------------------------------
    q_ids = np.fromiter(
        (table.id_of(q_token) for q_token in query_sorted),
        dtype=np.int64,
        count=nq,
    )
    is_query_token = np.zeros(len(table), dtype=bool)
    is_query_token[q_ids[q_ids >= 0]] = True
    # q_in_c[qi, sid]: query element qi is a member of set sid — drives
    # both the vanilla overlap |Q ∩ C| and edge validity at admission.
    q_in_c = np.zeros((nq, n_ids), dtype=bool)
    for qi in range(nq):
        q_id = int(q_ids[qi])
        if q_id >= 0:
            members = posting_sets[offsets[q_id]:offsets[q_id + 1]]
            q_in_c[qi, members] = True
    vanilla_init = config.vanilla_initialization
    if vanilla_init:
        vanilla = q_in_c.sum(axis=0).astype(np.int64)
    else:
        vanilla = np.zeros(n_ids, dtype=np.int64)

    # -- trajectory struct-of-arrays -----------------------------------
    seen = np.zeros(n_ids, dtype=bool)
    score = np.zeros(n_ids, dtype=np.float64)
    mcount = np.zeros(n_ids, dtype=np.int64)
    q_matched = np.zeros((nq, n_ids), dtype=bool)
    token_matched = np.zeros(partition.csr.total_postings, dtype=bool)
    if vanilla_init:
        # Vanilla initialization marks a candidate's overlap tokens
        # matched at admission. A posting position (q_id, C) is by
        # definition an overlap member of C, so pre-marking every query
        # token's posting range reproduces that for all candidates at
        # once (positions are only ever read for admitted candidates).
        for q_id in q_ids[q_ids >= 0].tolist():
            token_matched[offsets[q_id]:offsets[q_id + 1]] = True
    track_caps = config.track_caps
    caps = np.zeros((nq, n_ids), dtype=np.float64) if track_caps else None

    use_first_sight = config.use_first_sight_ub

    # Event log: admissions and valid extensions, stamped with stream
    # position. ``order`` is the global (tuple, posting-entry) rank, the
    # exact order the reference processes them in.
    ev_order: list[np.ndarray] = []
    ev_tuple: list[np.ndarray] = []
    ev_sid: list[np.ndarray] = []
    ev_score: list[np.ndarray] = []
    ev_m: list[np.ndarray] = []
    ev_upper: list[np.ndarray] = []
    ev_adm: list[np.ndarray] = []
    # Per-edge log for safe mode's live cap matrix during replay.
    cap_edges: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []

    observed_total = 0
    valid_total = 0
    edge_base = 0

    for block_start in range(0, n_tuples, block_size):
        if deadline is not None and time.perf_counter() > deadline:
            raise SearchTimeout("refinement exceeded its budget")
        block_end = min(block_start + block_size, n_tuples)
        b_qi = q_col[block_start:block_end]
        b_tid = t_col[block_start:block_end]
        b_s = s_col[block_start:block_end]

        t_safe = np.where(b_tid >= 0, b_tid, 0)
        counts = np.where(b_tid >= 0, offsets[t_safe + 1] - offsets[t_safe], 0)
        total_edges = int(counts.sum())
        if total_edges == 0:
            continue
        e_tuple = np.repeat(
            np.arange(block_end - block_start, dtype=np.int64), counts
        )
        prefix = np.zeros(counts.shape[0], dtype=np.int64)
        np.cumsum(counts[:-1], out=prefix[1:])
        e_pos = (
            np.arange(total_edges, dtype=np.int64)
            - np.repeat(prefix, counts)
            + np.repeat(offsets[t_safe], counts)
        )
        e_sid = posting_sets[e_pos]
        e_qi = b_qi[e_tuple]
        e_s = b_s[e_tuple]
        if track_caps:
            cap_edges.append((e_tuple + block_start, e_qi, e_sid, e_s))

        # -- admissions (first sight) ------------------------------------
        adm_edge = np.zeros(e_sid.shape[0], dtype=bool)
        fresh = ~seen[e_sid]
        if fresh.any():
            fresh_positions = np.flatnonzero(fresh)
            new_ids, first = np.unique(
                e_sid[fresh_positions], return_index=True
            )
            adm_idx = fresh_positions[first]
            adm_edge[adm_idx] = True
            seen[new_ids] = True
            if vanilla_init:
                overlap = vanilla[new_ids]
                score[new_ids] = overlap.astype(np.float64)
                mcount[new_ids] = overlap
                q_matched[:, new_ids] = q_in_c[:, new_ids]
            a_qi = e_qi[adm_idx]
            a_s = e_s[adm_idx]
            a_pos = e_pos[adm_idx]
            # The discovering edge joins the partial matching (it is the
            # set's maximum-similarity edge; a no-op when either endpoint
            # is already taken by the vanilla overlap).
            if vanilla_init:
                a_valid = (
                    ~is_query_token[b_tid[e_tuple[adm_idx]]]
                    & ~q_in_c[a_qi, new_ids]
                    & (mcount[new_ids] < capacity[new_ids])
                )
            else:
                a_valid = np.ones(new_ids.shape[0], dtype=bool)
            grown = new_ids[a_valid]
            score[grown] += a_s[a_valid]
            mcount[grown] += 1
            q_matched[a_qi[a_valid], grown] = True
            token_matched[a_pos[a_valid]] = True
            if track_caps:
                caps[a_qi, new_ids] = np.maximum(caps[a_qi, new_ids], a_s)
            m_after = capacity[new_ids] - mcount[new_ids]
            if not use_first_sight:
                upper = np.zeros(new_ids.shape[0], dtype=np.float64)
            elif track_caps:
                # Safe Lemma-2 bound at admission: caps are the overlap's
                # 1.0 entries plus the admission edge, every other slot
                # defaults to the current similarity — sum the largest
                # ``capacity`` of them with sequential additions to stay
                # bitwise-faithful to the reference's left-to-right sum.
                n_ones = vanilla[new_ids] if vanilla_init else np.zeros(
                    new_ids.shape[0], dtype=np.int64
                )
                remaining = capacity[new_ids] - n_ones
                upper = n_ones.astype(np.float64)
                for step in range(int(remaining.max()) if remaining.size else 0):
                    upper = np.where(remaining > step, upper + a_s, upper)
            else:
                upper = score[new_ids] + m_after * a_s
            ev_order.append(edge_base + adm_idx)
            ev_tuple.append(block_start + e_tuple[adm_idx])
            ev_sid.append(new_ids)
            ev_score.append(score[new_ids].copy())
            ev_m.append(m_after)
            ev_upper.append(upper)
            ev_adm.append(np.ones(new_ids.shape[0], dtype=bool))

        # -- extensions of existing candidates (Lemma 5) -----------------
        ext = np.flatnonzero(~adm_edge)
        if ext.size:
            x_sid = e_sid[ext]
            x_qi = e_qi[ext]
            x_pos = e_pos[ext]
            x_s = e_s[ext]
            observed_total += int(x_sid.shape[0])
            # Per-candidate edges must apply in stream order; a stable
            # sort by set id groups them without reordering, and round r
            # applies every candidate's r-th edge — cross-candidate
            # independence makes the rounds fully vectorized.
            grouped = np.argsort(x_sid, kind="stable")
            sid_sorted = x_sid[grouped]
            boundary = np.empty(sid_sorted.shape[0], dtype=bool)
            boundary[0] = True
            np.not_equal(sid_sorted[1:], sid_sorted[:-1], out=boundary[1:])
            group_starts = np.flatnonzero(boundary)
            group_lengths = (
                np.append(group_starts[1:], sid_sorted.shape[0]) - group_starts
            )
            for round_id in range(int(group_lengths.max())):
                in_round = group_lengths > round_id
                selected = grouped[group_starts[in_round] + round_id]
                r_sid = x_sid[selected]
                r_qi = x_qi[selected]
                r_pos = x_pos[selected]
                r_s = x_s[selected]
                if track_caps:
                    caps[r_qi, r_sid] = np.maximum(caps[r_qi, r_sid], r_s)
                valid = (
                    ~token_matched[r_pos]
                    & ~q_matched[r_qi, r_sid]
                    & (mcount[r_sid] < capacity[r_sid])
                )
                if not valid.any():
                    continue
                picked = selected[valid]
                v_sid = r_sid[valid]
                score[v_sid] += r_s[valid]
                mcount[v_sid] += 1
                q_matched[r_qi[valid], v_sid] = True
                token_matched[r_pos[valid]] = True
                valid_total += int(v_sid.shape[0])
                ev_order.append(edge_base + ext[picked])
                ev_tuple.append(block_start + e_tuple[ext[picked]])
                ev_sid.append(v_sid)
                ev_score.append(score[v_sid].copy())
                ev_m.append(capacity[v_sid] - mcount[v_sid])
                ev_upper.append(np.zeros(v_sid.shape[0], dtype=np.float64))
                ev_adm.append(np.zeros(v_sid.shape[0], dtype=bool))
        edge_base += total_edges

    stats.observed_edges += observed_total
    stats.discarded_edges += observed_total - valid_total

    # -- exact replay of the pruning schedule --------------------------
    survivors_state = _replay(
        ev_order,
        ev_tuple,
        ev_sid,
        ev_score,
        ev_m,
        ev_upper,
        ev_adm,
        s_col,
        theta,
        stats,
        config,
        n_ids,
        caps,
        capacity,
        cap_edges,
        nq,
        deadline,
    )

    # -- freeze survivors ----------------------------------------------
    survivors: dict[int, CandidateState] = {}
    active = np.flatnonzero(np.frombuffer(survivors_state, dtype=np.uint8) == 1)
    if active.size:
        if track_caps:
            effective = np.sort(caps[:, active], axis=0)[::-1]
            totals = np.cumsum(effective, axis=0)
            final_upper = totals[
                capacity[active] - 1, np.arange(active.shape[0])
            ]
        else:
            m_rem = capacity[active] - mcount[active]
            final_upper = score[active] + m_rem * last_similarity
        for set_id, matched, upper, size in zip(
            active.tolist(),
            score[active].tolist(),
            final_upper.tolist(),
            sizes[active].tolist(),
        ):
            candidate = CandidateState(
                set_id, candidate_size=int(size), query_size=nq
            )
            candidate.matched_score = matched
            candidate.final_upper = upper
            survivors[set_id] = candidate

    event_bytes = sum(
        int(array.nbytes)
        for chunks in (
            ev_order, ev_tuple, ev_sid, ev_score, ev_m, ev_upper, ev_adm,
        )
        for array in chunks
    ) + sum(
        int(array.nbytes) for chunk in cap_edges for array in chunk
    )
    columnar_bytes = (
        partition.nbytes()
        + int(score.nbytes + mcount.nbytes + seen.nbytes)
        + int(q_matched.nbytes + q_in_c.nbytes + token_matched.nbytes)
        + (int(caps.nbytes) if caps is not None else 0)
        + event_bytes
    )
    stats.memory.record("columnar_state", columnar_bytes)
    # Tracing hook (observation only — a no-op outside an active span):
    # how much stream the columnar phase chewed and what survived it.
    annotate(
        stream_tuples=n_tuples,
        survivors=len(survivors),
        columnar_bytes=columnar_bytes,
    )
    return RefinementOutput(
        survivors=survivors,
        sim_cache=sim_cache,
        last_similarity=last_similarity,
    )


def _replay(
    ev_order,
    ev_tuple,
    ev_sid,
    ev_score,
    ev_m,
    ev_upper,
    ev_adm,
    s_col,
    theta: ThetaLB,
    stats: SearchStats,
    config: FilterConfig,
    n_ids: int,
    caps,
    capacity,
    cap_edges,
    nq: int,
    deadline: float | None,
) -> bytearray:
    """Replay the event log through the reference threshold machinery.

    Returns the candidate state table (0 unseen, 1 survivor, 2 pruned).
    Every ``theta_lb`` offer, first-sight check, and per-tuple iUB sweep
    happens with the same values in the same order as the reference
    loop, so the pruning decisions are identical — the property the
    engine-equivalence guarantee rests on.

    The bucket structure is replaced by per-``m`` lazy min-heaps: a
    sweep's outcome is the pure predicate ``S_i + m * s < theta_lb``
    (the reference's front-scan with early stop computes exactly that
    set), so any structure yielding the same set is equivalent, and a
    heap with lazy invalidation costs O(log) per matching extension
    instead of two bisected list splices.
    """
    use_first_sight = config.use_first_sight_ub
    use_buckets = config.use_iub_buckets
    track_caps = config.track_caps
    n_tuples = int(s_col.shape[0])

    state = bytearray(n_ids)
    if not ev_order:
        return state
    order = np.argsort(np.concatenate(ev_order), kind="stable")
    e_tuple = np.concatenate(ev_tuple)[order].tolist()
    e_sid = np.concatenate(ev_sid)[order].tolist()
    e_score = np.concatenate(ev_score)[order].tolist()
    e_m = np.concatenate(ev_m)[order].tolist()
    e_upper = np.concatenate(ev_upper)[order].tolist()
    e_adm = np.concatenate(ev_adm)[order].tolist()
    n_events = len(e_tuple)

    if track_caps and caps is not None and cap_edges:
        ce_tuple = np.concatenate([chunk[0] for chunk in cap_edges])
        ce_qi = np.concatenate([chunk[1] for chunk in cap_edges])
        ce_sid = np.concatenate([chunk[2] for chunk in cap_edges])
        ce_s = np.concatenate([chunk[3] for chunk in cap_edges])
        # Caps are live state during replay: rewind the trajectory's
        # final matrix and re-apply per tuple so sweeps read the caps
        # the reference would see at that stream position.
        caps_live = np.zeros_like(caps)
        ce_bounds = np.searchsorted(
            ce_tuple, np.arange(n_tuples + 1), side="left"
        )
    else:
        caps_live = None
        ce_bounds = None

    import heapq

    heappush = heapq.heappush
    heappop = heapq.heappop
    # Per-m lazy heaps: the authoritative (m, S) of a candidate lives in
    # cur_m/cur_score; heap entries that no longer match are skipped on
    # pop. A candidate's score strictly increases with every move, so a
    # stale entry can never collide with a current one.
    heaps: dict[int, list[tuple[float, int]]] = {}
    cur_m = [0] * n_ids
    cur_score = [0.0] * n_ids
    llb = theta.local
    shared = theta.shared
    k = llb.k
    llb_filled = len(llb) >= k
    local_bottom = llb.bottom()
    s_list = s_col.tolist()
    sweep_stats = 0
    pruned_first = 0
    bucket_moves = 0

    def current_theta() -> float:
        if shared is None:
            return local_bottom
        shared_value = shared.value
        return shared_value if shared_value > local_bottom else local_bottom

    def sound_keeps(set_id: int, similarity: float, threshold: float) -> bool:
        """Safe mode's sweep veto: candidates whose *sound* bound still
        clears ``theta_lb`` stay bucketed (Lemma-6 ``keep`` hook)."""
        column = caps_live[:, set_id]
        seen_caps = column[column > 0.0]
        values = np.maximum(seen_caps, similarity)
        unseen = nq - values.shape[0]
        if unseen > 0:
            values = np.concatenate([values, np.full(unseen, similarity)])
        values = np.sort(values)[::-1]
        cap = int(capacity[set_id])
        return float(np.cumsum(values[:cap])[-1]) >= threshold

    pointer = 0
    for tuple_index in range(n_tuples):
        if (
            deadline is not None
            and tuple_index % 4096 == 0
            and time.perf_counter() > deadline
        ):
            raise SearchTimeout("refinement exceeded its budget")
        if caps_live is not None:
            lo, hi = ce_bounds[tuple_index], ce_bounds[tuple_index + 1]
            if hi > lo:
                qi_slice = ce_qi[lo:hi]
                sid_slice = ce_sid[lo:hi]
                caps_live[qi_slice, sid_slice] = np.maximum(
                    caps_live[qi_slice, sid_slice], ce_s[lo:hi]
                )
        while pointer < n_events and e_tuple[pointer] == tuple_index:
            set_id = e_sid[pointer]
            bound = e_score[pointer]
            if e_adm[pointer]:
                stats.candidates += 1
                if use_first_sight and e_upper[pointer] < current_theta():
                    state[set_id] = 2
                    pruned_first += 1
                    pointer += 1
                    continue
                state[set_id] = 1
            elif state[set_id] != 1:
                pointer += 1
                continue
            else:
                bucket_moves += 1
            if use_buckets:
                m_after = e_m[pointer]
                cur_m[set_id] = m_after
                cur_score[set_id] = bound
                heap = heaps.get(m_after)
                if heap is None:
                    heap = heaps[m_after] = []
                heappush(heap, (bound, set_id))
            if not llb_filled or bound > local_bottom:
                if theta.offer(set_id, bound):
                    local_bottom = llb.bottom()
                    llb_filled = len(llb) >= k
            pointer += 1
        if use_buckets:
            threshold = current_theta()
            if threshold > 0.0:
                similarity = s_list[tuple_index]
                for m_remaining in list(heaps):
                    heap = heaps[m_remaining]
                    bucket_threshold = threshold - m_remaining * similarity
                    vetoed: list[tuple[float, int]] = []
                    while heap:
                        entry_score, set_id = heap[0]
                        if entry_score >= bucket_threshold:
                            break
                        heappop(heap)
                        if (
                            state[set_id] != 1
                            or cur_m[set_id] != m_remaining
                            or cur_score[set_id] != entry_score
                        ):
                            continue  # stale or already pruned
                        if caps_live is not None and sound_keeps(
                            set_id, similarity, threshold
                        ):
                            vetoed.append((entry_score, set_id))
                            continue
                        state[set_id] = 2
                        sweep_stats += 1
                    for entry in vetoed:
                        heappush(heap, entry)
                    if not heap:
                        del heaps[m_remaining]

    stats.pruned_first_sight += pruned_first
    stats.pruned_bucket += sweep_stats
    stats.bucket_moves += bucket_moves
    return state
