"""Instrumentation for a single Koios search.

Every counter here backs a column of the paper's evaluation: candidate
counts and filter attribution (Tables II, IV, V), phase timings
(Fig. 5b/5c, 6b/6c), and memory footprints (Table III, Fig. 5d/6d).
The four resolution counters partition the candidate sets exactly the way
the paper's per-interval tables do:

``candidates == refinement_pruned + no_em + em_early_terminated + em_full``
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.memory import MemoryLedger
from repro.utils.timer import PhaseTimer

REFINEMENT = "refinement"
POSTPROCESSING = "postprocessing"


@dataclass
class SearchStats:
    """Counters, timings, and memory for one query (or one partition)."""

    # -- stream --
    stream_tuples: int = 0
    final_stream_similarity: float = 0.0

    # -- refinement --
    candidates: int = 0
    pruned_first_sight: int = 0          # UB-Filter at discovery (Lemma 2)
    pruned_bucket: int = 0               # iUB-Filter bucket sweeps (Lemma 6)
    bucket_moves: int = 0
    observed_edges: int = 0
    discarded_edges: int = 0             # edges to already-matched nodes

    # -- post-processing --
    no_em_accepted: int = 0              # Lemma 7 acceptances
    no_em_discarded: int = 0             # UB < theta_lb discards without EM
    em_early_terminated: int = 0         # Lemma 8 aborts
    em_full: int = 0                     # completed Hungarian runs
    em_label_updates: int = 0            # total labeling improvements
    resolution_em: int = 0               # post-hoc exact scoring of results

    # -- verification engine accounting --
    # Cost attribution for the columnar verifier: cells of the shared
    # batched weight block, the FLOP estimate of computing it, the bytes
    # of the block actually scanned, and candidates routed through the
    # reference fallback by the GEMM drift guard. All zero under the
    # reference engine.
    verify_matmul_cells: int = 0
    verify_matmul_flops: int = 0
    verify_bytes_scanned: int = 0
    verify_fallbacks: int = 0

    timer: PhaseTimer = field(default_factory=PhaseTimer)
    memory: MemoryLedger = field(default_factory=MemoryLedger)

    # -- derived ------------------------------------------------------------

    @property
    def refinement_pruned(self) -> int:
        """Sets eliminated during refinement (the tables' iUB column)."""
        return self.pruned_first_sight + self.pruned_bucket

    @property
    def no_em(self) -> int:
        """Sets resolved in post-processing without starting a matching."""
        return self.no_em_accepted + self.no_em_discarded

    @property
    def postprocessed(self) -> int:
        """Sets that reached the post-processing phase."""
        return self.candidates - self.refinement_pruned

    @property
    def response_seconds(self) -> float:
        return self.timer.total

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another partition's stats into this one."""
        self.stream_tuples += other.stream_tuples
        self.final_stream_similarity = max(
            self.final_stream_similarity, other.final_stream_similarity
        )
        self.candidates += other.candidates
        self.pruned_first_sight += other.pruned_first_sight
        self.pruned_bucket += other.pruned_bucket
        self.bucket_moves += other.bucket_moves
        self.observed_edges += other.observed_edges
        self.discarded_edges += other.discarded_edges
        self.no_em_accepted += other.no_em_accepted
        self.no_em_discarded += other.no_em_discarded
        self.em_early_terminated += other.em_early_terminated
        self.em_full += other.em_full
        self.em_label_updates += other.em_label_updates
        self.resolution_em += other.resolution_em
        self.verify_matmul_cells += other.verify_matmul_cells
        self.verify_matmul_flops += other.verify_matmul_flops
        self.verify_bytes_scanned += other.verify_bytes_scanned
        self.verify_fallbacks += other.verify_fallbacks
        self.timer.merge(other.timer)
        self.memory.merge(other.memory)

    #: Counter fields that must never go negative (everything except the
    #: float stream similarity and the timer/memory sub-objects).
    _COUNTER_FIELDS = (
        "stream_tuples",
        "candidates",
        "pruned_first_sight",
        "pruned_bucket",
        "bucket_moves",
        "observed_edges",
        "discarded_edges",
        "no_em_accepted",
        "no_em_discarded",
        "em_early_terminated",
        "em_full",
        "em_label_updates",
        "resolution_em",
        "verify_matmul_cells",
        "verify_matmul_flops",
        "verify_bytes_scanned",
        "verify_fallbacks",
    )

    def validate(self) -> list[str]:
        """Check the stats invariants; returns violation descriptions.

        An empty list means the stats are coherent. The partition
        invariant (the module docstring's identity) is the load-bearing
        one: it catches merge bugs in cluster stat accumulation, where a
        dropped or double-counted partial silently skews the funnel.
        """
        violations: list[str] = []
        for name in self._COUNTER_FIELDS:
            value = getattr(self, name)
            if value < 0:
                violations.append(f"negative counter {name}={value}")
        resolved = (
            self.refinement_pruned
            + self.no_em
            + self.em_early_terminated
            + self.em_full
        )
        if self.candidates != resolved:
            violations.append(
                f"funnel does not partition candidates: "
                f"candidates={self.candidates} != refinement_pruned="
                f"{self.refinement_pruned} + no_em={self.no_em} + "
                f"em_early_terminated={self.em_early_terminated} + "
                f"em_full={self.em_full} (= {resolved})"
            )
        return violations

    def consistency_ok(self) -> bool:
        """The resolution counters must partition the candidates."""
        return not self.validate()

    def funnel(self) -> dict:
        """The pruning funnel as a JSON-ready dict (the EXPLAIN shape).

        Every key is a plain int so cluster partials can be compared
        bitwise against the merged stats: for each counter the merged
        value must equal the sum over the per-partition funnels.
        """
        return {
            "candidates": self.candidates,
            "pruned_first_sight": self.pruned_first_sight,
            "pruned_bucket": self.pruned_bucket,
            "refinement_pruned": self.refinement_pruned,
            "no_em_accepted": self.no_em_accepted,
            "no_em_discarded": self.no_em_discarded,
            "em_early_terminated": self.em_early_terminated,
            "em_full": self.em_full,
        }
