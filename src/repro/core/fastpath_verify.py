"""The columnar verification engine — Algorithm 2's matrices as one matmul.

The reference post-processing loop (:mod:`repro.core.postprocessing`)
pays three Python-heavy costs for every Hungarian run: a ``cache_view``
dict comprehension restricting the streamed similarity cache to the
candidate, a :func:`~repro.matching.graph.build_graph` call that stacks
per-token unit vectors and loops over the cached pairs, and the
:func:`~repro.sim.cosine.CosineSimilarity.matrix` matmul itself — all
for a weight matrix that is usually thrown away after the Lemma-8
initial check prunes the candidate. On verification-bound workloads
(long posting lists, many survivors) that per-candidate interpreter
overhead dominates the phase.

The fast path exploits the same structural fact the refinement engine
does: **every candidate's weight matrix is a column selection of one
shared matrix**. All candidates score the same query rows against
subsets of one vocabulary, so the engine:

1. interns every survivor's member tokens through the shared
   :class:`~repro.index.interning.TokenTable` (whose sorted-token id
   order makes ``np.sort`` of ids equal the reference's sorted-string
   column order);
2. builds, **once per phase**, the dense query × union-vocabulary
   similarity block with a single batched matmul over the shared
   embedding matrix (:meth:`CosineSimilarity.unit_rows` — the identical
   float32 stacking :meth:`CosineSimilarity.matrix` performs), then
   applies the identical-token rule, the ``alpha`` threshold, and the
   streamed-cache overrides exactly as ``build_graph`` does — cached
   entries are the same floats in both engines, which is what pins the
   two engines' matrices bitwise (BLAS matmuls are not shape-invariant,
   so any *uncached* cell near or above ``alpha`` routes its candidates
   through the reference fallback instead — see :meth:`prepare`);
3. serves each verification as a pure column gather plus the Kuhn–
   Munkres solver on dense NumPy label/slack arrays — the untouched
   :func:`~repro.matching.hungarian.hungarian_matching` — with the
   Lemma-8 label-sum initial check applied *before* building the padded
   matrix via :func:`~repro.matching.hungarian.initial_label_sum`
   (bitwise the same float the solver would compute, so the pruned /
   not-pruned decision and the reported ``label_sum`` are identical).

The pruning *schedule* — ledger updates, ``theta_ub`` reads, No-EM
acceptances, batch selection, theta offers — is not reimplemented at
all: the verifier is injected into the reference
:func:`~repro.core.postprocessing.postprocess` loop and only replaces
how a weight matrix is produced. Discards, No-EM accepts, early
terminations, final entries, stats counters, and ``theta_lb``
trajectories are therefore identical by construction, under every
ablation, ``em_workers`` width, and deadline path. The differential
harness (``tests/core/test_verify_equivalence.py``) pins exactly that.

Candidates whose members fall outside the token table (a defensive
case: the table is rebuilt per collection version) fall back to the
reference matrix construction for that candidate alone.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.core.bounds import CandidateState
from repro.matching.hungarian import (
    _EPS,
    MatchingResult,
    hungarian_matching,
    initial_label_sum,
)
from repro.index.interning import TokenTable
from repro.obs import annotate


def _entry_replay(
    threshold: float | None, bound: Callable[[], float | None]
) -> Callable[[], float | None]:
    """A bound whose first read returns an already-observed value.

    Keeps the engines' live-threshold read schedules identical: the
    verifier's Lemma-8 pre-check consumes the entry read, and the
    solver's own entry check replays it rather than sampling the
    (possibly concurrently risen) threshold a second time.
    """
    replayed = False

    def read() -> float | None:
        nonlocal replayed
        if not replayed:
            replayed = True
            return threshold
        return bound()

    return read


def supports_columnar_verify(sim) -> bool:
    """True when ``sim`` can back the columnar verifier.

    The verifier needs the similarity to be embedding-backed — one
    shared matrix whose row products reproduce ``sim.matrix`` — which
    :class:`~repro.sim.cosine.CosineSimilarity` advertises through
    ``unit_rows``. Other similarities (pinned callables, Jaccard, edit)
    keep the reference verification path even under the columnar
    engine.
    """
    return hasattr(sim, "unit_rows")


class ColumnarVerifier:
    """Batched weight-matrix construction for one partition's phase.

    Built by the facade per partition search (cheap: real work happens
    in :meth:`prepare`, called by ``postprocess`` once the survivors are
    known) and consumed through :meth:`match`, which mirrors the
    reference ``verify`` contract: one (possibly early-terminated)
    :class:`~repro.matching.hungarian.MatchingResult` per candidate,
    against the live threshold.
    """

    def __init__(
        self,
        query: frozenset[str],
        collection,
        table: TokenTable,
        sim,
        alpha: float,
    ) -> None:
        self._query = query
        self._rows = sorted(query)
        self._collection = collection
        self._table = table
        self._sim = sim
        self._alpha = alpha
        self._cache_by_token: dict[str, list[tuple[str, float]]] = {}
        # set_id -> column positions into the shared weight block; ids
        # missing from the table route through the reference fallback.
        self._positions: dict[int, np.ndarray] = {}
        self._fallback: set[int] = set()
        self._weights: np.ndarray | None = None
        # Cost attribution, filled by prepare(): cells of the batched
        # weight block and the FLOP estimate of the matmul producing it
        # (2 * dim multiply-adds per cell).
        self.matmul_cells = 0
        self.matmul_flops = 0

    # -- phase setup -------------------------------------------------------

    #: Width of the suspicion band around ``alpha`` (see ``prepare``):
    #: float32 matmul reduction-order drift between the batched block
    #: and the reference's per-candidate product is a few ulps (~1e-7);
    #: the band is three orders of magnitude wider.
    GEMM_DRIFT_BAND = 1e-4

    def prepare(
        self,
        survivors: Mapping[int, CandidateState],
        cache_by_token: dict[str, list[tuple[str, float]]],
    ) -> None:
        """Intern the survivors and build the shared weight block.

        Reproduces, for the union vocabulary, the exact per-candidate
        pipeline of ``build_graph``: float32 unit-row matmul, clip,
        float64 cast, identical-token rule, ``alpha`` threshold, cached
        overrides (``score if score >= alpha else 0.0``). A candidate's
        matrix is then ``weights[:, positions]`` — the same floats the
        reference would compute, column for column.

        One numerical hazard makes that claim conditional: BLAS matmul
        results are not guaranteed shape-invariant, so a cell of the
        batched block can differ in its last bit from the reference's
        per-candidate product. Cells the streamed cache overrides are
        exact either way (both engines write the identical cached
        float), and cells comfortably below ``alpha`` are zeroed by the
        threshold in both engines — only *uncached* cells at or near
        ``alpha`` could carry a divergent float into a matching (the
        stream contains every pair the index scored >= ``alpha``, so
        such cells exist only where the index and matrix float paths
        drift across the threshold). ``prepare`` therefore flags every
        uncached, non-identity cell above ``alpha - GEMM_DRIFT_BAND``
        and routes candidates containing a flagged column through the
        reference fallback — the guarantee degrades to the reference's
        own (slower) computation instead of to a wrong float. On
        embedding-backed corpora the flagged set is normally empty.
        """
        self._cache_by_token = cache_by_token
        table = self._table
        collection = self._collection
        id_arrays: list[np.ndarray] = []
        spans: list[tuple[int, int, int]] = []  # (set_id, lo, hi)
        total = 0
        for set_id in survivors:
            ids = np.sort(table.encode(collection[set_id]))
            if ids.size and ids[0] < 0:
                self._fallback.add(set_id)
                continue
            id_arrays.append(ids)
            spans.append((set_id, total, total + ids.size))
            total += ids.size
        if not id_arrays:
            return
        member_ids = np.concatenate(id_arrays)
        union_ids = np.unique(member_ids)
        tokens = table.tokens
        union_tokens = [tokens[i] for i in union_ids.tolist()]

        query_matrix = self._sim.unit_rows(self._rows)
        union_matrix = self._sim.unit_rows(union_tokens)
        weights = np.clip(
            query_matrix @ union_matrix.T, 0.0, 1.0
        ).astype(np.float64)
        # Cells whose float is pinned independently of matmul shape:
        # identity-rule cells (exact 1.0) and cache-overridden cells
        # (the identical cached float in both engines).
        pinned = np.zeros(weights.shape, dtype=bool)
        # Identical-token rule: a query token that is also a member
        # token scores 1.0 regardless of embedding coverage.
        alpha = self._alpha
        q_ids = table.encode(self._rows)
        for row, q_id in enumerate(q_ids.tolist()):
            if q_id < 0:
                continue
            column = int(np.searchsorted(union_ids, q_id))
            if column < union_ids.size and union_ids[column] == q_id:
                weights[row, column] = 1.0
                pinned[row, column] = True
        suspicious = (~pinned) & (weights >= alpha - self.GEMM_DRIFT_BAND)
        weights[weights < alpha] = 0.0
        # Streamed-cache overrides win over recomputed entries, exactly
        # as in build_graph; rows are unique (sorted set), so the scatter
        # is one cell per cached pair.
        row_of = {token: row for row, token in enumerate(self._rows)}
        for column, token in enumerate(union_tokens):
            for q_token, score in cache_by_token.get(token, ()):
                row = row_of.get(q_token)
                if row is not None:
                    weights[row, column] = score if score >= alpha else 0.0
                    suspicious[row, column] = False
        self._weights = weights

        # Columns with an uncached near/above-alpha cell could gather a
        # matmul float that differs from the reference's per-candidate
        # product in its last bit; candidates touching one take the
        # reference fallback instead (see the docstring).
        suspect_columns = np.flatnonzero(suspicious.any(axis=0))
        suspect_ids = (
            set(union_ids[suspect_columns].tolist())
            if suspect_columns.size else None
        )
        all_positions = np.searchsorted(union_ids, member_ids)
        for (set_id, lo, hi), ids in zip(spans, id_arrays):
            if suspect_ids is not None and not suspect_ids.isdisjoint(
                ids.tolist()
            ):
                self._fallback.add(set_id)
                continue
            self._positions[set_id] = all_positions[lo:hi]
        self.matmul_cells = int(weights.size)
        self.matmul_flops = 2 * int(weights.size) * int(
            union_matrix.shape[1]
        )
        # Tracing hook (observation only): the one batched matmul this
        # phase runs, and how many candidates bypass it via fallback.
        annotate(
            verify_matmul_cells=int(weights.size),
            verify_candidates=len(self._positions),
            verify_fallbacks=len(self._fallback),
        )

    @property
    def fallback_count(self) -> int:
        """Candidates the drift guard routed to the reference path."""
        return len(self._fallback)

    # -- per-candidate verification ---------------------------------------

    def weights_of(self, set_id: int) -> np.ndarray:
        """The candidate's dense weight matrix (one column gather)."""
        return self._weights[:, self._positions[set_id]]

    def match(
        self, set_id: int, bound: Callable[[], float | None] | None
    ) -> MatchingResult:
        """One Hungarian run for ``set_id`` against the live threshold.

        Applies the Lemma-8 initial check on the gathered matrix before
        entering the solver: the initial label sum is the identical
        float the solver would derive, read against the identical
        threshold at the identical point, so the early-out returns
        exactly the :class:`MatchingResult` the reference produces —
        ``score 0.0``, ``pruned``, the certified ``label_sum``, zero
        label updates.
        """
        if set_id in self._fallback:
            return self._match_fallback(set_id, bound)
        weights = self.weights_of(set_id)
        if bound is not None and weights.shape[0] and weights.shape[1]:
            label_sum = initial_label_sum(weights)
            threshold = bound()
            if threshold is not None and label_sum < threshold - _EPS:
                return MatchingResult(
                    score=0.0,
                    pruned=True,
                    label_sum=label_sum,
                    label_updates=0,
                )
            # Replay the threshold just read into the solver's own
            # entry check instead of letting it re-read the live bound:
            # the reference path reads exactly once at this point, and a
            # concurrently rising theta_lb must not observe an extra
            # read (subsequent per-update reads stay live).
            return hungarian_matching(
                weights, bound=_entry_replay(threshold, bound)
            )
        return hungarian_matching(weights, bound=bound)

    def _match_fallback(
        self, set_id: int, bound: Callable[[], float | None] | None
    ) -> MatchingResult:
        """Reference matrix construction for out-of-table candidates."""
        from repro.core.postprocessing import cache_view
        from repro.core.semantic_overlap import semantic_overlap_matching

        result, _, _ = semantic_overlap_matching(
            self._query,
            self._collection[set_id],
            self._sim,
            self._alpha,
            cached_scores=cache_view(
                self._cache_by_token, self._collection[set_id]
            ),
            bound=bound,
        )
        return result

    def nbytes(self) -> int:
        """Footprint of the shared weight block and position arrays."""
        total = 0 if self._weights is None else int(self._weights.nbytes)
        return total + sum(
            int(positions.nbytes) for positions in self._positions.values()
        )
