"""Algorithm 2 — the post-processing (verification) phase of Koios.

Candidates surviving refinement carry a lower bound ``LB`` (their partial
greedy matching score) and a frozen upper bound ``UB``. Post-processing
repeatedly takes the unchecked set with the largest ``UB`` — the set with
the best shot at the top-k — and resolves it one of four ways:

* **discard** without matching when ``UB < theta_lb`` (it cannot beat the
  current k-th lower bound);
* **No-EM accept** (Lemma 7) when ``LB >= theta_ub``, where ``theta_ub``
  is the k-th largest upper bound among the still-alive sets: the set is
  certainly in a top-k result, no matching needed;
* **EM-early-terminate** (Lemma 8): the Hungarian label sum, itself an
  upper bound on ``SO``, dropped below ``theta_lb`` mid-matching — the
  set is certainly *not* in the result;
* **full EM**: the matching completes and the set's bounds collapse onto
  its exact semantic overlap, which may raise ``theta_lb`` and doom
  other sets.

The phase terminates when every set among the k largest upper bounds is
checked; at that point every unchecked set ``X`` satisfies
``SO(X) <= UB(X) < theta_ub <= LB(C)`` for all result sets ``C`` — the
paper's termination condition, and the reason the result is exact.

Verification can optionally run on a thread pool (the paper uses a C++
thread pool); all workers read the *live* ``theta_lb`` through a callable,
so a matching finishing on one thread can early-terminate matchings
running on others.
"""

from __future__ import annotations

import bisect
import heapq
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core.bounds import CandidateState
from repro.core.config import FilterConfig
from repro.core.semantic_overlap import semantic_overlap_matching
from repro.core.stats import SearchStats
from repro.core.topk import ThetaLB
from repro.datasets.collection import SetCollection
from repro.errors import SearchTimeout
from repro.obs import annotate
from repro.sim.base import SimilarityFunction


@dataclass(frozen=True)
class VerifiedEntry:
    """One set emerging from post-processing.

    ``score`` is the exact semantic overlap when ``exact`` is True;
    otherwise the set was accepted by the No-EM filter and ``score`` is
    its certified lower bound (the facade can resolve it on demand).
    """

    set_id: int
    score: float
    exact: bool
    lower_bound: float
    upper_bound: float


class _UpperBoundLedger:
    """Tracks the current upper bound of every alive set.

    Supports the three operations the phase needs at low cost: the k-th
    largest bound (``theta_ub``), decreasing a set's bound, and removal.
    Bounds live in one ascending bisect-maintained list; python's C-level
    ``list`` splicing keeps this fast for the few thousand survivors a
    partition sees.
    """

    def __init__(self, bounds: Mapping[int, float], k: int) -> None:
        self._bounds = dict(bounds)
        self._sorted = sorted(self._bounds.values())
        self._k = k

    def __contains__(self, set_id: int) -> bool:
        return set_id in self._bounds

    def __len__(self) -> int:
        return len(self._bounds)

    def value(self, set_id: int) -> float:
        return self._bounds[set_id]

    def theta_ub(self) -> float:
        """The k-th largest alive upper bound; 0.0 when fewer than k sets
        are alive (then everything alive belongs to the result)."""
        if len(self._sorted) < self._k:
            return 0.0
        return self._sorted[-self._k]

    def _drop_value(self, value: float) -> None:
        index = bisect.bisect_left(self._sorted, value)
        del self._sorted[index]

    def remove(self, set_id: int) -> None:
        self._drop_value(self._bounds.pop(set_id))

    def lower_to(self, set_id: int, value: float) -> None:
        """Decrease a set's bound (bounds never increase in this phase)."""
        self._drop_value(self._bounds[set_id])
        bisect.insort(self._sorted, value)
        self._bounds[set_id] = value

    def alive_ids(self) -> list[int]:
        return list(self._bounds)


def postprocess(
    query: frozenset[str],
    collection: SetCollection,
    survivors: dict[int, CandidateState],
    sim: SimilarityFunction,
    alpha: float,
    k: int,
    theta: ThetaLB,
    stats: SearchStats,
    config: FilterConfig,
    *,
    sim_cache: Mapping[tuple[str, str], float] | None = None,
    cache_by_token: dict[str, list[tuple[str, float]]] | None = None,
    em_workers: int = 0,
    deadline: float | None = None,
    verifier=None,
) -> list[VerifiedEntry]:
    """Run Algorithm 2 over one partition's surviving candidates.

    Parameters
    ----------
    cache_by_token:
        The ``sim_cache`` already grouped by vocabulary token (see
        :func:`index_cache_by_token`). The columnar engine groups the
        full stream cache once per search and shares it across
        partitions; when omitted it is derived from ``sim_cache`` here.
    em_workers:
        When > 1, up to this many Hungarian verifications run concurrently
        on a thread pool sharing the live ``theta_lb``.
    deadline:
        Absolute ``time.perf_counter()`` deadline; exceeding it raises
        :class:`~repro.errors.SearchTimeout` (the facade converts that
        into a partial, flagged result — the paper's "timed-out query").
        The deadline is threaded into the matchings themselves (the
        solver re-reads its bound callable after every labeling update),
        so a single slow Hungarian run — including ones on pooled
        workers — aborts promptly instead of overshooting the budget by
        a whole batch.
    verifier:
        Optional :class:`~repro.core.fastpath_verify.ColumnarVerifier`.
        When given, candidate weight matrices come from its shared
        batched-matmul block instead of per-candidate ``cache_view`` +
        ``build_graph`` calls; the pruning schedule below is untouched
        either way, which is what keeps the two verification engines
        bitwise-identical.

    Returns the partition's (at most k) result sets in descending
    score/bound order.
    """
    if not survivors:
        return []

    ledger = _UpperBoundLedger(
        {sid: state.final_upper for sid, state in survivors.items()}, k
    )
    if cache_by_token is None:
        cache_by_token = index_cache_by_token(sim_cache)
    if verifier is not None:
        verifier.prepare(survivors, cache_by_token)
    lower: dict[int, float] = {
        sid: state.lower_bound for sid, state in survivors.items()
    }
    exact: dict[int, float] = {}
    checked: set[int] = set()
    # Max-heap over unchecked alive sets; stale entries are skipped by
    # comparing against the ledger's current value.
    heap: list[tuple[float, int]] = [
        (-ub, sid)
        for sid, ub in ((s, ledger.value(s)) for s in ledger.alive_ids())
    ]
    heapq.heapify(heap)

    bound_reader: Callable[[], float] | None = None
    if config.use_em_early_termination:
        bound_reader = lambda: theta.value  # noqa: E731 — live threshold
    if deadline is not None:
        bound_reader = _deadline_bound(bound_reader, deadline)

    def verify(set_id: int):
        """One Hungarian run against the live threshold."""
        if verifier is not None:
            return set_id, verifier.match(set_id, bound_reader)
        result, _, _ = semantic_overlap_matching(
            query,
            collection[set_id],
            sim,
            alpha,
            cached_scores=cache_view(cache_by_token, collection[set_id]),
            bound=bound_reader,
        )
        return set_id, result

    def apply_em_result(set_id: int, result) -> None:
        stats.em_label_updates += result.label_updates
        if result.pruned:
            stats.em_early_terminated += 1
            ledger.remove(set_id)
            lower.pop(set_id, None)
            return
        score = result.score
        stats.em_full += 1
        survivors[set_id].resolve(score)
        exact[set_id] = score
        checked.add(set_id)
        if score < ledger.value(set_id):
            ledger.lower_to(set_id, score)
        lower[set_id] = score
        theta.offer(set_id, score)

    executor = (
        ThreadPoolExecutor(max_workers=em_workers) if em_workers > 1 else None
    )
    try:
        while True:
            if deadline is not None and time.perf_counter() > deadline:
                raise SearchTimeout("post-processing exceeded its budget")
            batch = _select_batch(
                heap, ledger, lower, checked, theta, stats, config,
                max(1, em_workers),
            )
            if not batch:
                break
            if executor is None or len(batch) == 1:
                for set_id in batch:
                    apply_em_result(*verify(set_id))
            else:
                for set_id, result in executor.map(verify, batch):
                    apply_em_result(set_id, result)
    finally:
        if executor is not None:
            executor.shutdown(wait=True)

    # Sets still alive but never examined when the phase terminated were
    # resolved without any matching; the paper's per-filter tables count
    # them in the No-EM column, and so do we.
    stats.no_em_discarded += len(ledger) - len(checked)
    stats.memory.measure("postproc_upper_bounds", ledger)
    if verifier is not None:
        stats.memory.record("verify_weight_block", verifier.nbytes())
        # Resource attribution for per-tenant accounting and EXPLAIN:
        # the batched matmul's size/FLOPs and the weight-block bytes
        # every column gather scans.
        stats.verify_matmul_cells += verifier.matmul_cells
        stats.verify_matmul_flops += verifier.matmul_flops
        stats.verify_bytes_scanned += verifier.nbytes()
        stats.verify_fallbacks += verifier.fallback_count
    # Tracing hook (observation only): how verification resolved the
    # survivors — exact matchings run vs. sets retired without one.
    annotate(
        em_checked=len(checked),
        no_em=len(ledger) - len(checked),
        survivors=len(ledger),
    )
    return _final_entries(ledger, lower, exact, checked, k)


def _deadline_bound(
    base: Callable[[], float] | None, deadline: float
) -> Callable[[], float | None]:
    """Wrap the early-termination bound with the phase deadline.

    The solver re-reads its bound after every labeling update, so
    checking the clock there bounds how far a single matching can
    overshoot the budget — previously the deadline was only polled
    between batches, and one slow Hungarian run could blow far past it.
    Returning ``None`` (no early termination configured) keeps the
    solver's pruning behaviour unchanged; the wrapper only adds the
    timeout side-channel.
    """

    def read() -> float | None:
        if time.perf_counter() > deadline:
            raise SearchTimeout("post-processing exceeded its budget")
        return None if base is None else base()

    return read


def index_cache_by_token(
    sim_cache: Mapping[tuple[str, str], float] | None,
) -> dict[str, list[tuple[str, float]]]:
    """Group the refinement similarity cache by vocabulary token so each
    candidate's cache view costs O(|C|) instead of O(|cache|)."""
    by_token: dict[str, list[tuple[str, float]]] = {}
    if sim_cache:
        for (q_token, token), score in sim_cache.items():
            by_token.setdefault(token, []).append((q_token, score))
    return by_token


def cache_view(
    cache_by_token: dict[str, list[tuple[str, float]]],
    members: frozenset[str],
) -> dict[tuple[str, str], float] | None:
    """Restrict the refinement similarity cache to one candidate's tokens."""
    if not cache_by_token:
        return None
    return {
        (q_token, token): score
        for token in members
        for q_token, score in cache_by_token.get(token, ())
    }


def _select_batch(
    heap: list[tuple[float, int]],
    ledger: _UpperBoundLedger,
    lower: dict[int, float],
    checked: set[int],
    theta: ThetaLB,
    stats: SearchStats,
    config: FilterConfig,
    batch_size: int,
) -> list[int]:
    """Pick the next sets that genuinely need a graph matching.

    Applies, in upper-bound order: termination (the highest unchecked
    bound fell out of the top-k), the lazy ``UB < theta_lb`` discard, and
    the No-EM acceptance — exactly the order of Algorithm 2. Returns at
    most ``batch_size`` set ids for verification.
    """
    batch: list[int] = []
    while len(batch) < batch_size:
        set_id, upper = _peek_unchecked(heap, ledger, checked)
        if set_id is None:
            break
        if not config.exhaustive_verification:
            if upper < ledger.theta_ub():
                break  # every unchecked set is outside L_ub: phase complete
        heapq.heappop(heap)
        if not config.exhaustive_verification and upper < theta.value:
            stats.no_em_discarded += 1
            ledger.remove(set_id)
            lower.pop(set_id, None)
            continue
        if config.use_no_em and lower[set_id] >= ledger.theta_ub():
            stats.no_em_accepted += 1
            checked.add(set_id)
            continue
        # Batching several EMs is sound: theta_ub only decreases and
        # theta_lb only increases, so acceptances and discards made while
        # sibling verifications are in flight can never become invalid.
        batch.append(set_id)
    return batch


def _peek_unchecked(
    heap: list[tuple[float, int]],
    ledger: _UpperBoundLedger,
    checked: set[int],
) -> tuple[int | None, float]:
    """The alive, unchecked set with the largest current upper bound."""
    while heap:
        neg_upper, set_id = heap[0]
        if (
            set_id not in ledger
            or set_id in checked
            or ledger.value(set_id) != -neg_upper
        ):
            heapq.heappop(heap)
            continue
        return set_id, -neg_upper
    return None, 0.0


def _final_entries(
    ledger: _UpperBoundLedger,
    lower: dict[int, float],
    exact: dict[int, float],
    checked: set[int],
    k: int,
) -> list[VerifiedEntry]:
    """The final ``L_ub``: the k alive sets with the largest bounds.

    All of them are checked (that was the termination condition); ties at
    the k-th bound prefer checked sets, then lower set ids, making the
    output deterministic.
    """
    ranked = sorted(
        ledger.alive_ids(),
        key=lambda sid: (-ledger.value(sid), sid not in checked, sid),
    )
    entries = []
    for set_id in ranked[:k]:
        score = exact.get(set_id)
        entries.append(
            VerifiedEntry(
                set_id=set_id,
                score=score if score is not None else lower[set_id],
                exact=score is not None,
                lower_bound=lower[set_id],
                upper_bound=ledger.value(set_id),
            )
        )
    entries.sort(key=lambda e: (-e.score, e.set_id))
    return entries
