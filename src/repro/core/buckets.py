"""The iUB bucket structure (§V).

Naively, every stream tuple would update the upper bound of every
candidate. Koios instead groups candidates into buckets keyed by their
number of unfilled matching slots ``m``; within a bucket, candidates are
ordered by ascending matched score ``S_i``. When a tuple with similarity
``s`` arrives, a candidate in bucket ``m`` is prunable iff
``S_i + m * s < theta_lb``  ⇔  ``S_i < theta_lb - m * s`` — a single
threshold per bucket, so each bucket is swept from its front and the scan
stops at the first survivor. Only candidates that actually contain the
streamed token move buckets (``m`` drops by one).
"""

from __future__ import annotations

import bisect
from typing import Callable

from repro.errors import InvalidParameterError


class BucketStore:
    """Candidates bucketed by remaining slots, sorted by matched score."""

    def __init__(self) -> None:
        # m -> ascending list of (S_i, set_id)
        self._buckets: dict[int, list[tuple[float, int]]] = {}
        # set_id -> (m, S_i) locator for O(log) removal
        self._locator: dict[int, tuple[int, float]] = {}

    def __len__(self) -> int:
        return len(self._locator)

    def __contains__(self, set_id: int) -> bool:
        return set_id in self._locator

    def bucket_keys(self) -> list[int]:
        return sorted(self._buckets)

    def insert(self, set_id: int, m_remaining: int, matched_score: float) -> None:
        if set_id in self._locator:
            raise InvalidParameterError(f"set {set_id} already bucketed")
        entry = (matched_score, set_id)
        bucket = self._buckets.setdefault(m_remaining, [])
        bisect.insort(bucket, entry)
        self._locator[set_id] = (m_remaining, matched_score)

    def remove(self, set_id: int) -> None:
        m_remaining, matched_score = self._locator.pop(set_id)
        bucket = self._buckets[m_remaining]
        index = bisect.bisect_left(bucket, (matched_score, set_id))
        # bisect lands on the exact entry because (score, id) is unique.
        del bucket[index]
        if not bucket:
            del self._buckets[m_remaining]

    def move(self, set_id: int, m_remaining: int, matched_score: float) -> None:
        """Relocate a candidate after its matching was extended."""
        self.remove(set_id)
        self.insert(set_id, m_remaining, matched_score)

    def sweep(
        self,
        stream_similarity: float,
        theta_lb: float,
        *,
        keep: Callable[[int], bool] | None = None,
    ) -> list[int]:
        """Prune every candidate with ``S_i + m * s < theta_lb``.

        Scans each bucket from its ascending front and stops at the first
        survivor, exactly as in the paper. ``keep`` is a veto hook used by
        safe mode: a candidate whose paper bound is prunable but whose
        sound bound is not stays in the bucket (re-examined on later
        sweeps). Returns the pruned set ids, already removed.
        """
        if theta_lb <= 0.0:
            return []
        pruned: list[int] = []
        for m_remaining in list(self._buckets):
            threshold = theta_lb - m_remaining * stream_similarity
            bucket = self._buckets.get(m_remaining)
            if bucket is None:
                continue
            index = 0
            while index < len(bucket):
                matched_score, set_id = bucket[index]
                if matched_score >= threshold:
                    break  # ascending order: the rest survive too
                if keep is not None and keep(set_id):
                    index += 1  # vetoed; leave in place, keep scanning
                    continue
                del bucket[index]
                del self._locator[set_id]
                pruned.append(set_id)
            if not bucket:
                del self._buckets[m_remaining]
        return pruned
