"""Bounded top-k lists and the shared pruning threshold.

``TopKList`` implements the running lists of the paper: ``L_lb`` (top-k
lower bounds, whose minimum is ``theta_lb``) and ``L_ub`` (top-k upper
bounds, whose minimum is ``theta_ub``). ``GlobalThreshold`` is the
max-merged ``theta_lb`` shared by all partitions during scale-out (§VI).
"""

from __future__ import annotations

import threading
from typing import Iterator

from repro.errors import InvalidParameterError


class TopKList:
    """Keeps the k largest ``(set_id, value)`` entries under updates.

    Values only move upward for a given id (bounds tighten monotonically
    in Koios); offering a smaller value than currently stored is a no-op.
    ``bottom()`` is 0.0 until the list holds k entries — pruning against
    an unfilled list must be disabled, and a zero threshold does exactly
    that (semantic overlaps are non-negative).
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise InvalidParameterError("k must be >= 1")
        self._k = k
        self._values: dict[int, float] = {}

    @property
    def k(self) -> int:
        return self._k

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, set_id: int) -> bool:
        return set_id in self._values

    def value_of(self, set_id: int) -> float:
        return self._values[set_id]

    def offer(self, set_id: int, value: float) -> bool:
        """Insert or raise ``set_id``'s value; evict the minimum if the
        list overflows. Returns True when the list changed."""
        current = self._values.get(set_id)
        if current is not None:
            if value <= current:
                return False
            self._values[set_id] = value
            return True
        if len(self._values) < self._k:
            self._values[set_id] = value
            return True
        bottom_id, bottom_value = min(
            self._values.items(), key=lambda item: (item[1], -item[0])
        )
        if value <= bottom_value:
            return False
        del self._values[bottom_id]
        self._values[set_id] = value
        return True

    def remove(self, set_id: int) -> None:
        """Drop an entry (used when a set in ``L_ub`` is discarded)."""
        self._values.pop(set_id, None)

    def bottom(self) -> float:
        """The k-th largest value, or 0.0 while the list is unfilled."""
        if len(self._values) < self._k:
            return 0.0
        return min(self._values.values())

    def items(self) -> Iterator[tuple[int, float]]:
        """Entries in descending value order (id ascending on ties)."""
        return iter(
            sorted(self._values.items(), key=lambda item: (-item[1], item[0]))
        )

    def ids(self) -> set[int]:
        return set(self._values)


class GlobalThreshold:
    """A monotonically increasing threshold shared across partitions.

    Each partition pushes its local ``theta_lb``; every reader sees the
    maximum over all partitions, which the paper uses to let fast
    partitions prune slow ones. Thread-safe: post-processing verifies
    matchings from a thread pool.
    """

    def __init__(self, initial: float = 0.0) -> None:
        self._value = initial
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def raise_to(self, candidate: float) -> float:
        """Monotone max-update; returns the post-update value."""
        with self._lock:
            if candidate > self._value:
                self._value = candidate
            return self._value


class ThetaLB:
    """The effective pruning threshold of one partition run.

    Combines the partition-local ``L_lb`` bottom with the global shared
    threshold; both only increase, so ``value`` is monotone — the property
    all pruning lemmas rely on.
    """

    def __init__(self, llb: TopKList, shared: GlobalThreshold | None = None) -> None:
        self._llb = llb
        self._shared = shared

    @property
    def local(self) -> TopKList:
        """The partition-local ``L_lb`` (the columnar engine batches its
        offers and needs the local bottom to skip provable no-ops)."""
        return self._llb

    @property
    def shared(self) -> GlobalThreshold | None:
        """The cross-partition threshold (None for solo runs)."""
        return self._shared

    @property
    def value(self) -> float:
        local = self._llb.bottom()
        if self._shared is None:
            return local
        return max(local, self._shared.value)

    def publish(self) -> None:
        """Push the local bottom into the shared threshold."""
        if self._shared is not None:
            self._shared.raise_to(self._llb.bottom())

    def offer(self, set_id: int, lower_bound: float) -> bool:
        """Offer a lower bound to ``L_lb``; publishes on change."""
        changed = self._llb.offer(set_id, lower_bound)
        if changed:
            self.publish()
        return changed
