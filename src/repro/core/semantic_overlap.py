"""Reference implementations of the overlap measures (Definitions 1-2).

These are the ground-truth scorers: ``semantic_overlap`` computes the
exact maximum bipartite matching score, ``vanilla_overlap`` counts exact
matches, ``greedy_semantic_overlap`` is the (suboptimal) greedy
comparator of Fig. 1, and ``semantic_overlap_many_to_one`` implements the
many-to-one extension sketched in the paper's conclusion. The search
algorithms never call ``semantic_overlap`` on every set — that is the
baseline Koios beats — but verification and all tests are anchored here.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import InvalidParameterError
from repro.matching.graph import build_graph
from repro.matching.greedy import greedy_matching
from repro.matching.hungarian import MatchingResult, hungarian_matching
from repro.sim.base import SimilarityFunction


def _as_tokens(tokens: Iterable[str]) -> list[str]:
    out = sorted(set(tokens))
    if not out:
        raise InvalidParameterError("sets must be non-empty")
    return out


def semantic_overlap_matching(
    query: Iterable[str],
    candidate: Iterable[str],
    sim: SimilarityFunction,
    alpha: float,
    *,
    cached_scores: Mapping[tuple[str, str], float] | None = None,
    bound=None,
) -> tuple[MatchingResult, list[str], list[str]]:
    """Exact matching plus the token orderings defining its index pairs."""
    query_tokens = _as_tokens(query)
    candidate_tokens = _as_tokens(candidate)
    graph = build_graph(
        query_tokens, candidate_tokens, sim, alpha, cached_scores=cached_scores
    )
    result = hungarian_matching(graph.weights, bound=bound)
    return result, query_tokens, candidate_tokens


def semantic_overlap(
    query: Iterable[str],
    candidate: Iterable[str],
    sim: SimilarityFunction,
    alpha: float,
) -> float:
    """``SO(Q, C)``: the maximum one-to-one matching score (Definition 1)."""
    result, _, _ = semantic_overlap_matching(query, candidate, sim, alpha)
    return result.score


def vanilla_overlap(query: Iterable[str], candidate: Iterable[str]) -> int:
    """``|Q ∩ C|`` — semantic overlap under the equality similarity."""
    return len(set(query) & set(candidate))


def greedy_semantic_overlap(
    query: Iterable[str],
    candidate: Iterable[str],
    sim: SimilarityFunction,
    alpha: float,
) -> float:
    """Greedy matching score: a 1/2-approximation, used as a comparator
    (Fig. 1 shows it mis-ranking) and as the lower bound of Lemma 3."""
    query_tokens = _as_tokens(query)
    candidate_tokens = _as_tokens(candidate)
    graph = build_graph(query_tokens, candidate_tokens, sim, alpha)
    return greedy_matching(graph.weights).score


def semantic_overlap_many_to_one(
    query: Iterable[str],
    candidate: Iterable[str],
    sim: SimilarityFunction,
    alpha: float,
) -> float:
    """Future-work extension (§X): several query elements may map to the
    same candidate element (``United States of America`` and
    ``United States`` both onto ``USA``).

    Without the one-to-one constraint on the candidate side the optimum
    decomposes per query element: each contributes its best match.
    """
    query_tokens = _as_tokens(query)
    candidate_tokens = _as_tokens(candidate)
    graph = build_graph(query_tokens, candidate_tokens, sim, alpha)
    return float(graph.weights.max(axis=1).sum())


def matching_pairs(
    query: Iterable[str],
    candidate: Iterable[str],
    sim: SimilarityFunction,
    alpha: float,
) -> list[tuple[str, str, float]]:
    """The optimal matching as ``(query_token, candidate_token, weight)``
    triples — the "optimal way of mapping cell values" use-case the paper
    positions against SEMA-JOIN. Weights are read straight from the
    graph the matching ran on (one graph build, not one per pair)."""
    query_tokens = _as_tokens(query)
    candidate_tokens = _as_tokens(candidate)
    graph = build_graph(query_tokens, candidate_tokens, sim, alpha)
    result = hungarian_matching(graph.weights)
    return [
        (query_tokens[i], candidate_tokens[j], graph.edge_weight(i, j))
        for i, j in result.pairs
    ]
