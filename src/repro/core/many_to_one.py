"""Top-k search under the many-to-one semantic overlap (§X extension).

The paper's conclusion sketches relaxing the one-to-one matching so
several query elements may map onto one candidate element (``United
States of America`` and ``United States`` both onto ``USA``). Under that
relaxation the measure decomposes per query element:

    MO(Q, C) = sum_{q in Q} max_{c in C} sim_alpha(q, c)

No bipartite matching is needed, and the whole top-k search runs off the
token stream and the inverted index alone: the first time the stream
pairs ``q`` with a token of ``C``, that similarity *is* ``q``'s best
contribution to ``C`` (the stream is descending). Scores therefore
complete exactly when the stream is drained, and the search needs no
verification phase at all — a concrete payoff of the relaxed measure.

``MO`` upper-bounds ``SO`` (any one-to-one matching is a many-to-one
mapping), so this searcher also doubles as a cheap screening stage for
the exact engine.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.koios import ResultEntry, SearchResult
from repro.core.stats import REFINEMENT, SearchStats
from repro.datasets.collection import SetCollection
from repro.errors import EmptyQueryError, InvalidParameterError
from repro.index.base import TokenIndex
from repro.index.inverted import InvertedIndex
from repro.index.token_stream import TokenStream


class ManyToOneSearchEngine:
    """Exact top-k search under the many-to-one overlap ``MO``."""

    def __init__(
        self,
        collection: SetCollection,
        token_index: TokenIndex,
        *,
        alpha: float = 0.8,
    ) -> None:
        if not (0.0 < alpha <= 1.0):
            raise InvalidParameterError("alpha must be in (0, 1]")
        if len(collection) == 0:
            raise InvalidParameterError("cannot search an empty collection")
        self._collection = collection
        self._token_index = token_index
        self._alpha = alpha
        self._inverted = InvertedIndex(collection)

    @property
    def alpha(self) -> float:
        return self._alpha

    def scores(self, query: Iterable[str]) -> dict[int, float]:
        """Exact ``MO(Q, C)`` for every candidate set.

        One pass over the token stream: per (query element, candidate
        set) pair only the *first* edge counts — it is the maximum, by
        the stream's descending order.
        """
        query_set = frozenset(query)
        if not query_set:
            raise EmptyQueryError("query set is empty")
        stream = TokenStream(
            query_set,
            self._token_index,
            self._alpha,
            collection_vocabulary=self._collection.vocabulary,
        )
        totals: dict[int, float] = {}
        claimed: set[tuple[str, int]] = set()
        for q_token, token, similarity in stream:
            for set_id in self._inverted.sets_containing(token):
                key = (q_token, set_id)
                if key in claimed:
                    continue
                claimed.add(key)
                totals[set_id] = totals.get(set_id, 0.0) + similarity
        return totals

    def search(self, query: Iterable[str], k: int = 10) -> SearchResult:
        """The k sets with the largest many-to-one overlap."""
        if k < 1:
            raise InvalidParameterError("k must be >= 1")
        stats = SearchStats()
        with stats.timer.phase(REFINEMENT):
            totals = self.scores(query)
        stats.candidates = len(totals)
        ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
        entries = [
            ResultEntry(
                set_id=set_id,
                name=self._collection.name_of(set_id),
                score=score,
                exact=True,
                lower_bound=score,
                upper_bound=score,
            )
            for set_id, score in ranked[:k]
        ]
        return SearchResult(entries=entries, stats=stats, k=k)
