"""Search configuration: which filters are active.

Koios, the paper's Baseline, Baseline+ (§VIII-A4), and every ablation
bench are the *same* engine under different :class:`FilterConfig`
settings, so filter attribution is measured on identical code paths:

* ``koios()`` — everything on (the published algorithm);
* ``baseline()`` — no refinement pruning, no post-processing filters:
  every candidate set is verified with a full graph matching;
* ``baseline_plus()`` — baseline with only the iUB-Filter activated,
  which is how the paper makes WDC feasible for the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.bounds import PAPER, validate_iub_mode
from repro.errors import InvalidParameterError

#: Refinement engine choices: the columnar NumPy fast path (default)
#: and the per-tuple reference implementation kept as its oracle.
ENGINE_COLUMNAR = "columnar"
ENGINE_REFERENCE = "reference"
_ENGINES = (ENGINE_COLUMNAR, ENGINE_REFERENCE)


def validate_engine(engine: str) -> str:
    if engine not in _ENGINES:
        raise InvalidParameterError(
            f"engine must be one of {_ENGINES}, got {engine!r}"
        )
    return engine


@dataclass(frozen=True)
class FilterConfig:
    """Switches for every filter in the Koios pipeline.

    Attributes
    ----------
    use_first_sight_ub:
        Apply the UB-Filter (Lemma 2) when a candidate is first discovered.
    use_iub_buckets:
        Maintain the bucketized iUB-Filter (Lemma 6) during refinement.
    use_no_em:
        Accept sets with ``LB >= theta_ub`` without matching (Lemma 7).
    use_em_early_termination:
        Abort Hungarian runs whose label sum drops below ``theta_lb``
        (Lemma 8).
    vanilla_initialization:
        Initialize a candidate's partial matching with its vanilla
        overlap ``|Q ∩ C|`` (§V); the ablation bench turns this off.
    iub_mode:
        ``"paper"`` reproduces Lemma 6 verbatim; ``"safe"`` uses the
        provably sound per-query-element cap bound (see
        :mod:`repro.core.bounds` for the distinction).
    exhaustive_verification:
        Verify *every* candidate surviving refinement instead of
        stopping once the top-k upper bounds are settled — the
        behaviour of the paper's Baseline and Baseline+ (§VIII-A4).
    engine:
        ``"columnar"`` (default) runs *both* phases through the
        vectorized fast paths: refinement via the struct-of-arrays
        engine of :mod:`repro.core.fastpath` and verification via the
        batched-matmul matrix builder of
        :mod:`repro.core.fastpath_verify` (when the similarity is
        embedding-backed). ``"reference"`` runs the per-tuple loop of
        :mod:`repro.core.refinement` and the per-candidate matrix
        construction of :mod:`repro.core.postprocessing`. Both apply
        the same lemmas and return bitwise-identical results; the
        reference engine is kept as the readable oracle the fast paths
        are differentially tested against.
    """

    use_first_sight_ub: bool = True
    use_iub_buckets: bool = True
    use_no_em: bool = True
    use_em_early_termination: bool = True
    vanilla_initialization: bool = True
    iub_mode: str = PAPER
    exhaustive_verification: bool = False
    engine: str = ENGINE_COLUMNAR

    def __post_init__(self) -> None:
        validate_iub_mode(self.iub_mode)
        validate_engine(self.engine)

    @classmethod
    def koios(
        cls, *, iub_mode: str = PAPER, engine: str = ENGINE_COLUMNAR
    ) -> "FilterConfig":
        """The full published configuration."""
        return cls(iub_mode=iub_mode, engine=engine)

    @classmethod
    def baseline(cls) -> "FilterConfig":
        """The paper's Baseline: verify every candidate set."""
        return cls(
            use_first_sight_ub=False,
            use_iub_buckets=False,
            use_no_em=False,
            use_em_early_termination=False,
            exhaustive_verification=True,
        )

    @classmethod
    def baseline_plus(cls) -> "FilterConfig":
        """Baseline with only the iUB-Filter active (§VIII-A4)."""
        return cls(
            use_no_em=False,
            use_em_early_termination=False,
            exhaustive_verification=True,
        )

    def without(self, **overrides) -> "FilterConfig":
        """A copy with the given fields overridden (ablation helper)."""
        return replace(self, **overrides)

    @property
    def track_caps(self) -> bool:
        """Safe iUB mode needs per-query-element similarity caps."""
        return self.iub_mode != PAPER
