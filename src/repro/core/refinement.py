"""Algorithm 1 — the refinement phase of Koios.

The refinement consumes the token stream ``Ie`` tuple by tuple. Each
tuple ``(q, t, s)`` (query element, vocabulary token, similarity, in
non-increasing ``s`` order) probes the inverted index ``Is``; sets seen
for the first time are admitted as candidates (or killed on the spot by
the UB-Filter of Lemma 2), existing candidates extend their partial
greedy matching (Lemma 5), and after every tuple the iUB bucket structure
is swept to prune candidates whose incremental upper bound fell below
``theta_lb`` (Lemma 6). No graph matching happens here — that is the
whole point of the phase.

One deliberate deviation from the paper's pseudocode: Algorithm 1 line 5
gates the inverted-index probe on ``s >= L_lb.bottom()``. Read literally,
that stops *discovering* new candidates as soon as ``theta_lb`` exceeds
the (always <= 1) stream similarity, which would silently drop sets whose
semantic overlap accrues from many medium-similarity edges and would
contradict the correctness argument of §VII (which requires every set
with non-zero semantic overlap to be considered). We therefore probe the
index for every tuple and rely on the UB-Filter at first sight, which is
what §VII's case (1) actually argues.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.bounds import CandidateState
from repro.core.buckets import BucketStore
from repro.core.config import FilterConfig
from repro.core.stats import SearchStats
from repro.core.topk import ThetaLB
from repro.datasets.collection import SetCollection
from repro.errors import SearchTimeout
from repro.index.inverted import InvertedIndex

#: How many stream tuples to process between deadline checks.
_DEADLINE_STRIDE = 256


@dataclass
class RefinementOutput:
    """What the refinement phase hands to post-processing.

    Attributes
    ----------
    survivors:
        Candidate states that were not pruned, keyed by set id; each
        carries its final lower bound and frozen final upper bound.
    sim_cache:
        ``(query_token, token) -> similarity`` for every streamed pair —
        reused to initialize verification matrices (§VIII-A3).
    last_similarity:
        Similarity of the final stream tuple (1.0 for an empty stream);
        it caps every unstreamed pair in the paper's iUB.
    """

    survivors: dict[int, CandidateState] = field(default_factory=dict)
    sim_cache: dict[tuple[str, str], float] = field(default_factory=dict)
    last_similarity: float = 1.0


def refine(
    query: frozenset[str],
    stream,
    inverted: InvertedIndex,
    collection: SetCollection,
    theta: ThetaLB,
    stats: SearchStats,
    config: FilterConfig,
    *,
    sim_cache: dict[tuple[str, str], float] | None = None,
    deadline: float | None = None,
) -> RefinementOutput:
    """Run Algorithm 1 over one partition.

    Parameters
    ----------
    query:
        The query set ``Q``.
    stream:
        An iterable of ``(q, t, s)`` :data:`StreamTuple` in non-increasing
        ``s`` order (a live :class:`~repro.index.token_stream.TokenStream`
        or a replayed materialized one).
    inverted:
        The partition's inverted index ``Is``.
    collection:
        The full repository (used to fetch candidate member tokens).
    theta:
        The partition's ``theta_lb`` tracker; offering lower bounds here
        also publishes them to the cross-partition shared threshold.
    stats:
        Counter sink; this function fills the refinement counters.
    config:
        Which filters are active (Koios vs Baseline/Baseline+/ablations).
    sim_cache:
        Optional shared ``(q, t) -> s`` cache to fill; partitions replay
        one materialized stream, so the facade passes a single dict.
    deadline:
        Absolute ``time.perf_counter()`` deadline; exceeding it raises
        :class:`~repro.errors.SearchTimeout`.
    """
    candidates: dict[int, CandidateState] = {}
    pruned: set[int] = set()
    buckets = BucketStore()
    if sim_cache is None:
        sim_cache = {}
    last_similarity = 1.0

    for q_token, token, similarity in stream:
        stats.stream_tuples += 1
        if (
            deadline is not None
            and stats.stream_tuples % _DEADLINE_STRIDE == 0
            and time.perf_counter() > deadline
        ):
            raise SearchTimeout("refinement exceeded its budget")
        last_similarity = similarity
        cached = sim_cache.get((q_token, token))
        if cached is None or similarity > cached:
            sim_cache[(q_token, token)] = similarity

        for set_id in inverted.sets_containing(token):
            if set_id in pruned:
                continue
            state = candidates.get(set_id)
            if state is None:
                _admit_candidate(
                    set_id,
                    q_token,
                    token,
                    similarity,
                    query,
                    collection,
                    candidates,
                    pruned,
                    buckets,
                    theta,
                    stats,
                    config,
                )
                continue
            stats.observed_edges += 1
            if state.observe(q_token, token, similarity):
                stats.bucket_moves += 1
                if config.use_iub_buckets:
                    buckets.move(set_id, state.m_remaining, state.matched_score)
                theta.offer(set_id, state.lower_bound)
            else:
                stats.discarded_edges += 1

        if config.use_iub_buckets:
            _sweep_buckets(
                buckets, candidates, pruned, similarity, theta, stats, config
            )

    stats.final_stream_similarity = last_similarity
    for state in candidates.values():
        state.freeze_final_upper(
            last_similarity, config.iub_mode, stream_exhausted=True
        )

    return RefinementOutput(
        survivors=candidates,
        sim_cache=sim_cache,
        last_similarity=last_similarity,
    )


def _admit_candidate(
    set_id: int,
    q_token: str,
    token: str,
    similarity: float,
    query: frozenset[str],
    collection: SetCollection,
    candidates: dict[int, CandidateState],
    pruned: set[int],
    buckets: BucketStore,
    theta: ThetaLB,
    stats: SearchStats,
    config: FilterConfig,
) -> None:
    """First sight of a candidate: initialize, UB-filter, enroll."""
    members = collection[set_id]
    state = CandidateState.first_sight(
        set_id,
        members,
        query,
        track_caps=config.track_caps,
        vanilla_init=config.vanilla_initialization,
    )
    stats.candidates += 1
    # The discovering edge itself joins the partial matching (it is the
    # set's maximum-similarity edge; with vanilla initialization it is a
    # no-op for exact matches already counted).
    state.observe(q_token, token, similarity)
    if config.use_first_sight_ub:
        upper = state.effective_upper_bound(similarity, config.iub_mode)
        if upper < theta.value:
            pruned.add(set_id)
            stats.pruned_first_sight += 1
            return
    candidates[set_id] = state
    if config.use_iub_buckets:
        buckets.insert(set_id, state.m_remaining, state.matched_score)
    theta.offer(set_id, state.lower_bound)


def _sweep_buckets(
    buckets: BucketStore,
    candidates: dict[int, CandidateState],
    pruned: set[int],
    similarity: float,
    theta: ThetaLB,
    stats: SearchStats,
    config: FilterConfig,
) -> None:
    """One iUB bucket sweep at the current stream similarity."""
    keep = None
    if config.track_caps:
        # Safe mode only prunes candidates whose *sound* bound is also
        # below theta_lb; others are vetoed and stay bucketed.
        def keep(set_id: int) -> bool:
            sound = candidates[set_id].safe_upper_bound(similarity)
            return sound >= theta.value

    for set_id in buckets.sweep(similarity, theta.value, keep=keep):
        pruned.add(set_id)
        del candidates[set_id]
        stats.pruned_bucket += 1
