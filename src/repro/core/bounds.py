"""Per-candidate bound bookkeeping (Lemmas 2-6).

A :class:`CandidateState` tracks, for one candidate set ``C``:

* the partial greedy matching built from the descending token stream —
  its score ``S_i`` is the incremental lower bound ``iLB`` (Lemma 5);
* the remaining matchable capacity ``m`` used by the incremental upper
  bound ``iUB(C) = S_i + m * s`` (Lemma 6);
* optionally (``safe`` mode) the best seen similarity per query element,
  backing a provably sound upper bound.

On the two iUB modes
--------------------
While reproducing Lemma 6 we found that the paper's bound can undercut
the true semantic overlap: the lemma's proof assumes every *unmatched*
element pair is bounded by the current stream similarity ``s``, but an
edge that streamed earlier (weight > s) and was *discarded* because one
endpoint was greedily matched can still appear in the optimal matching.
Example: ``Q = {q1, q2}``, ``C = {c1, c2}`` with
``sim(q1,c1) = sim(q2,c1) = sim(q1,c2) = 1.0``; greedy matches ``(q1,c1)``
(``S_i = 1``, ``m = 1``), yet ``SO = 2`` via ``(q2,c1), (q1,c2)``, so once
``s`` drops below 1 the paper bound ``1 + s`` is below ``SO``.

``paper`` mode (default) reproduces the published filter verbatim; such
near-tie configurations essentially never arise with embedding
similarities, which matches the paper's empirically exact results.
``safe`` mode replaces the bound with ``sum of the top-m' caps``, where
``cap(q)`` is the best similarity seen from ``q`` into ``C`` (defaulting
to ``s`` while the stream is live and to 0 once it is exhausted) and
``m' = min(|Q|, |C|)`` — sound for every input, at extra bookkeeping
cost. The ablation bench quantifies the difference.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable

from repro.errors import InvalidParameterError

PAPER = "paper"
SAFE = "safe"
_MODES = (PAPER, SAFE)


def validate_iub_mode(mode: str) -> str:
    if mode not in _MODES:
        raise InvalidParameterError(
            f"iub_mode must be one of {_MODES}, got {mode!r}"
        )
    return mode


class CandidateState:
    """Incremental matching state of one candidate set against the query."""

    __slots__ = (
        "set_id",
        "candidate_size",
        "query_size",
        "matched_score",
        "matched_query",
        "matched_tokens",
        "caps",
        "final_upper",
        "checked",
        "exact",
    )

    def __init__(
        self,
        set_id: int,
        candidate_size: int,
        query_size: int,
        *,
        track_caps: bool = False,
    ) -> None:
        self.set_id = set_id
        self.candidate_size = candidate_size
        self.query_size = query_size
        self.matched_score = 0.0
        self.matched_query: set[str] = set()
        self.matched_tokens: set[str] = set()
        # ``caps`` is only populated in safe mode: query token -> best
        # similarity seen into this candidate so far.
        self.caps: dict[str, float] | None = {} if track_caps else None
        # Frozen at the end of refinement; used by post-processing.
        self.final_upper: float = float(candidate_size)
        self.checked = False
        self.exact = False

    # -- construction -----------------------------------------------------

    @classmethod
    def first_sight(
        cls,
        set_id: int,
        candidate_tokens: AbstractSet[str],
        query_tokens: AbstractSet[str],
        *,
        track_caps: bool = False,
        vanilla_init: bool = True,
    ) -> "CandidateState":
        """Initialize a newly discovered candidate with its vanilla overlap.

        The paper initializes both ``S_i`` and the lower bound to
        ``|Q ∩ C|`` (§V): identical tokens are weight-1 edges, the first
        edges any greedy matching takes, and this is how identical
        out-of-vocabulary tokens still count. ``vanilla_init=False``
        disables this (the ablation of §5 in DESIGN.md); exact matches are
        then picked up one by one from the stream's self-match tuples.
        """
        state = cls(
            set_id,
            candidate_size=len(candidate_tokens),
            query_size=len(query_tokens),
            track_caps=track_caps,
        )
        overlap = (query_tokens & candidate_tokens) if vanilla_init else frozenset()
        if overlap:
            state.matched_query.update(overlap)
            state.matched_tokens.update(overlap)
            state.matched_score = float(len(overlap))
            if state.caps is not None:
                for token in overlap:
                    state.caps[token] = 1.0
        return state

    # -- incremental updates ------------------------------------------------

    def observe(self, query_token: str, token: str, similarity: float) -> bool:
        """Process one stream edge ``(query_token, token, similarity)``
        where ``token`` belongs to this candidate.

        Returns True when the edge was valid (both endpoints unmatched)
        and extended the partial greedy matching; invalid edges are
        discarded but still tighten the safe-mode cap.
        """
        if self.caps is not None:
            current = self.caps.get(query_token, 0.0)
            if similarity > current:
                self.caps[query_token] = similarity
        if token in self.matched_tokens or query_token in self.matched_query:
            return False
        if self.m_remaining <= 0:
            return False
        self.matched_tokens.add(token)
        self.matched_query.add(query_token)
        self.matched_score += similarity
        return True

    # -- bounds ----------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum matching cardinality ``min(|Q|, |C|)``."""
        return min(self.query_size, self.candidate_size)

    @property
    def matched_count(self) -> int:
        return len(self.matched_tokens)

    @property
    def m_remaining(self) -> int:
        """Unfilled matching slots ``m_i`` — the bucket key."""
        return self.capacity - self.matched_count

    @property
    def lower_bound(self) -> float:
        """``iLB``: score of the partial greedy matching (Lemma 5)."""
        return self.matched_score

    def upper_bound(
        self, stream_similarity: float, *, stream_exhausted: bool = False
    ) -> float:
        """The paper's ``iUB(C) = S_i + m * s`` (Lemma 6).

        ``stream_exhausted`` is accepted for signature parity with the
        safe bound; the paper's bound keeps the last stream similarity as
        the per-slot cap even after the stream ends.
        """
        del stream_exhausted
        return self.matched_score + self.m_remaining * stream_similarity

    def safe_upper_bound(
        self, stream_similarity: float, *, stream_exhausted: bool = False
    ) -> float:
        """Sound upper bound from per-query-element caps (safe mode).

        Any matching assigns each query element at most one candidate
        element; element pairs not yet streamed have similarity <= s (or
        thresholded to 0 once the stream is exhausted), streamed pairs
        are capped by the best similarity seen. Summing the largest
        ``capacity`` caps therefore dominates every matching score.
        """
        if self.caps is None:
            raise InvalidParameterError(
                "safe_upper_bound requires track_caps=True"
            )
        default = 0.0 if stream_exhausted else stream_similarity
        caps = [max(c, default) for c in self.caps.values()]
        unseen = self.query_size - len(caps)
        if unseen > 0 and default > 0.0:
            caps.extend([default] * unseen)
        caps.sort(reverse=True)
        return float(sum(caps[: self.capacity]))

    def effective_upper_bound(
        self,
        stream_similarity: float,
        mode: str,
        *,
        stream_exhausted: bool = False,
    ) -> float:
        """Dispatch between ``paper`` and ``safe`` iUB modes."""
        if mode == SAFE:
            return self.safe_upper_bound(
                stream_similarity, stream_exhausted=stream_exhausted
            )
        return self.upper_bound(
            stream_similarity, stream_exhausted=stream_exhausted
        )

    def freeze_final_upper(
        self, stream_similarity: float, mode: str, *, stream_exhausted: bool
    ) -> float:
        """Fix the upper bound carried into post-processing."""
        self.final_upper = self.effective_upper_bound(
            stream_similarity, mode, stream_exhausted=stream_exhausted
        )
        return self.final_upper

    def resolve(self, score: float) -> None:
        """Collapse the bounds onto an exactly computed overlap."""
        self.matched_score = score
        self.final_upper = score
        self.checked = True
        self.exact = True


def vanilla_overlap(query_tokens: Iterable[str], candidate_tokens: AbstractSet[str]) -> int:
    """``|Q ∩ C|`` — the lower bound of Lemma 1."""
    return sum(1 for token in set(query_tokens) if token in candidate_tokens)
