"""Element similarity functions.

Definition 1 of the paper only demands that ``sim`` be symmetric, return
values in [0, 1], and return 1 for identical elements; the thresholded
variant ``sim_alpha`` zeroes scores below ``alpha``. Everything in Koios
is generic over this interface — that genericity (vs. SilkMoth's
similarity-specific filters) is one of the paper's selling points, so the
abstraction is first-class here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.errors import InvalidParameterError


class SimilarityFunction(ABC):
    """A symmetric element similarity with range [0, 1]."""

    @abstractmethod
    def score(self, a: str, b: str) -> float:
        """Similarity of two tokens; 1.0 for identical tokens."""

    def matrix(self, rows: Sequence[str], cols: Sequence[str]) -> np.ndarray:
        """Dense ``(len(rows), len(cols))`` similarity matrix.

        The default implementation loops over pairs; vector-based
        similarities override this with a BLAS product.
        """
        out = np.zeros((len(rows), len(cols)), dtype=np.float64)
        for i, a in enumerate(rows):
            for j, b in enumerate(cols):
                out[i, j] = self.score(a, b)
        return out

    def thresholded(self, alpha: float) -> "ThresholdedSimilarity":
        """The paper's ``sim_alpha``: scores below ``alpha`` become 0."""
        return ThresholdedSimilarity(self, alpha)


class ThresholdedSimilarity(SimilarityFunction):
    """Wraps a similarity with the alpha threshold of Definition 1."""

    def __init__(self, base: SimilarityFunction, alpha: float) -> None:
        if not (0.0 < alpha <= 1.0):
            raise InvalidParameterError("alpha must be in (0, 1]")
        self._base = base
        self._alpha = alpha

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def base(self) -> SimilarityFunction:
        return self._base

    def score(self, a: str, b: str) -> float:
        raw = self._base.score(a, b)
        return raw if raw >= self._alpha else 0.0

    def matrix(self, rows: Sequence[str], cols: Sequence[str]) -> np.ndarray:
        raw = self._base.matrix(rows, cols)
        raw[raw < self._alpha] = 0.0
        return raw


class CallableSimilarity(SimilarityFunction):
    """Adapts a plain ``f(a, b) -> float`` (e.g.
    :class:`repro.embedding.synthetic.PinnedSimilarityModel`) to the
    :class:`SimilarityFunction` interface."""

    def __init__(self, func) -> None:
        self._func = func

    def score(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        value = float(self._func(a, b))
        if not (0.0 <= value <= 1.0):
            raise InvalidParameterError(
                f"similarity function returned {value} outside [0, 1]"
            )
        return value
