"""Cosine similarity over an embedding provider.

This is the ``sim`` used in all of the paper's experiments (cosine of
FastText vectors). Identical tokens score 1.0 even when they are
out-of-vocabulary — that is exactly the paper's OOV rule ("if the query
contains the same tokens", §V) — and any pair involving an uncovered
token otherwise scores 0. Negative cosines are clamped to 0 to satisfy
the [0, 1] range of Definition 1.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.embedding.provider import EmbeddingProvider, normalize
from repro.sim.base import SimilarityFunction


class CosineSimilarity(SimilarityFunction):
    """Cosine of (unit-normalized) embedding vectors.

    ``store`` optionally backs the similarity with an existing
    :class:`~repro.embedding.provider.VectorStore`: vocabulary tokens
    then read their unit row straight out of the store's matrix — a
    zero-copy view, possibly of a memory-mapped snapshot section —
    instead of re-deriving the embedding through the provider and
    caching a private heap copy per process. Store rows are built as
    ``normalize(provider.vector(token))``, the exact expression used
    here, so the backed and unbacked paths are bitwise identical;
    tokens outside the store (e.g. uncovered query tokens) fall back to
    the provider as before.
    """

    def __init__(self, provider: EmbeddingProvider, *, store=None) -> None:
        self._provider = provider
        self._store = store
        # None records out-of-vocabulary tokens so the provider is only
        # consulted once per token.
        self._unit_cache: dict[str, np.ndarray | None] = {}
        # Shared stand-in row for OOV tokens in matrix(); allocated once
        # instead of per call (every OOV entry reuses the same buffer —
        # it is only ever read).
        self._zero = np.zeros(provider.dim, dtype=np.float32)

    @property
    def provider(self) -> EmbeddingProvider:
        return self._provider

    def _unit_vector(self, token: str) -> np.ndarray | None:
        """Unit vector for ``token`` or None if out-of-vocabulary."""
        if token in self._unit_cache:
            return self._unit_cache[token]
        store = self._store
        if store is not None and token in store:
            vec = store.vector(token)
            self._unit_cache[token] = vec
            return vec
        if not self._provider.covers(token):
            self._unit_cache[token] = None
            return None
        vec = normalize(self._provider.vector(token))
        self._unit_cache[token] = vec
        return vec

    def score(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        vec_a = self._unit_vector(a)
        vec_b = self._unit_vector(b)
        if vec_a is None or vec_b is None:
            return 0.0
        return float(max(0.0, np.dot(vec_a, vec_b)))

    def unit_rows(self, tokens: Sequence[str]) -> np.ndarray:
        """Stacked unit vectors for ``tokens`` (shared zero row for OOV).

        This is exactly the embedding-matrix construction of
        :meth:`matrix`; the columnar verification engine
        (:mod:`repro.core.fastpath_verify`) calls it once per phase to
        build every candidate's weight matrix from one batched matmul,
        and gates on this method to know the similarity is
        embedding-backed.
        """
        zero = self._zero
        unit = self._unit_vector
        return np.stack(
            [v if (v := unit(t)) is not None else zero for t in tokens]
        )

    def matrix(self, rows: Sequence[str], cols: Sequence[str]) -> np.ndarray:
        """Vectorized similarity matrix with the identical-token and OOV
        rules applied."""
        row_matrix = self.unit_rows(rows)
        col_matrix = self.unit_rows(cols)
        out = np.clip(row_matrix @ col_matrix.T, 0.0, 1.0).astype(np.float64)
        col_index = {}
        for j, token in enumerate(cols):
            col_index.setdefault(token, []).append(j)
        for i, token in enumerate(rows):
            for j in col_index.get(token, ()):
                out[i, j] = 1.0
        return out
