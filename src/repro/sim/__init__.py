"""Element similarity functions: cosine over embeddings, Jaccard on
q-grams/words, normalized edit distance, and the ``sim_alpha`` wrapper."""

from repro.sim.base import (
    CallableSimilarity,
    SimilarityFunction,
    ThresholdedSimilarity,
)
from repro.sim.cosine import CosineSimilarity
from repro.sim.edit import EditSimilarity, levenshtein
from repro.sim.jaccard import (
    QGramJaccardSimilarity,
    WordJaccardSimilarity,
    jaccard,
    qgrams,
)

__all__ = [
    "CallableSimilarity",
    "CosineSimilarity",
    "EditSimilarity",
    "QGramJaccardSimilarity",
    "SimilarityFunction",
    "ThresholdedSimilarity",
    "WordJaccardSimilarity",
    "jaccard",
    "levenshtein",
    "qgrams",
]
