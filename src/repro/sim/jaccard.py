"""Jaccard element similarities (character q-grams or whitespace words).

These are the syntactic similarities used in the paper's fuzzy-search
comparison (§VIII-B: "Jaccard on 3-grams representation of each element"
for both Koios and SilkMoth) and by the fuzzy-overlap measure of Fig. 1.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import InvalidParameterError
from repro.sim.base import SimilarityFunction


def qgrams(token: str, q: int) -> frozenset[str]:
    """The set of character q-grams of ``token``.

    Tokens shorter than ``q`` contribute their full text as a single
    gram so they can still match exactly.
    """
    if len(token) < q:
        return frozenset((token,))
    return frozenset(token[i:i + q] for i in range(len(token) - q + 1))


def jaccard(a: frozenset[str], b: frozenset[str]) -> float:
    """Plain Jaccard of two token-feature sets."""
    if not a and not b:
        return 0.0
    inter = len(a & b)
    if inter == 0:
        return 0.0
    return inter / (len(a) + len(b) - inter)


class QGramJaccardSimilarity(SimilarityFunction):
    """Jaccard similarity of character q-gram sets (paper default q=3)."""

    def __init__(self, q: int = 3) -> None:
        if q < 1:
            raise InvalidParameterError("q must be >= 1")
        self._q = q
        self._grams = lru_cache(maxsize=None)(lambda t: qgrams(t, self._q))

    @property
    def q(self) -> int:
        return self._q

    def features(self, token: str) -> frozenset[str]:
        """The q-gram feature set of ``token`` (cached)."""
        return self._grams(token)

    def score(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        return jaccard(self._grams(a), self._grams(b))


class WordJaccardSimilarity(SimilarityFunction):
    """Jaccard of whitespace-separated words inside an element.

    This is the element similarity SilkMoth was designed around; in
    table-derived sets most elements have very few words, which is why
    the paper switches the comparison to 3-grams.
    """

    def __init__(self) -> None:
        self._words = lru_cache(maxsize=None)(
            lambda t: frozenset(t.lower().split())
        )

    def features(self, token: str) -> frozenset[str]:
        return self._words(token)

    def score(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        return jaccard(self._words(a), self._words(b))
