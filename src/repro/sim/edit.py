"""Normalized edit-distance similarity.

The fuzzy-search literature the paper builds on (SilkMoth, Fast-Join)
supports edit distance as an element similarity; we provide it for
completeness: ``1 - levenshtein(a, b) / max(|a|, |b|)``.
"""

from __future__ import annotations

from functools import lru_cache

from repro.sim.base import SimilarityFunction


def levenshtein(a: str, b: str) -> int:
    """Classic dynamic-programming Levenshtein distance, O(|a|*|b|)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string in the inner loop for the smaller row.
    if len(b) < len(a):
        a, b = b, a
    previous = list(range(len(a) + 1))
    for j, ch_b in enumerate(b, start=1):
        current = [j]
        for i, ch_a in enumerate(a, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(
                    previous[i] + 1,      # deletion
                    current[i - 1] + 1,   # insertion
                    previous[i - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


class EditSimilarity(SimilarityFunction):
    """``1 - edit_distance / max(len)`` with an LRU cache on pairs."""

    def __init__(self, cache_size: int = 65536) -> None:
        self._cached = lru_cache(maxsize=cache_size)(self._raw_score)

    @staticmethod
    def _raw_score(a: str, b: str) -> float:
        longest = max(len(a), len(b))
        if longest == 0:
            return 1.0
        return 1.0 - levenshtein(a, b) / longest

    def score(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        # Normalize argument order so the cache sees each pair once.
        if b < a:
            a, b = b, a
        return self._cached(a, b)
