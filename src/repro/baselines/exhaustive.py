"""The paper's Baseline and Baseline+ searchers (§VIII-A4).

The Baseline uses the token stream only for candidate generation (any set
with at least one element of similarity >= alpha to some query element)
and then computes the exact bipartite matching of *every* candidate.
Baseline+ additionally activates the iUB-Filter during refinement — the
paper needs this to make WDC feasible at all. Both are expressed as the
shared engine under :class:`~repro.core.config.FilterConfig` presets, so
response-time comparisons against Koios measure exactly the filters, not
implementation differences.

``BruteForceSearcher`` is stricter still: it scores every set in the
collection (no index at all) and is the ground-truth oracle for tests.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.config import FilterConfig
from repro.core.koios import KoiosSearchEngine, ResultEntry, SearchResult
from repro.core.semantic_overlap import semantic_overlap
from repro.core.stats import SearchStats
from repro.datasets.collection import SetCollection
from repro.errors import EmptyQueryError, InvalidParameterError
from repro.index.base import TokenIndex
from repro.sim.base import SimilarityFunction


class ExhaustiveBaseline(KoiosSearchEngine):
    """The paper's Baseline: stream candidates, verify all of them."""

    def __init__(
        self,
        collection: SetCollection,
        token_index: TokenIndex,
        sim: SimilarityFunction,
        *,
        alpha: float = 0.8,
        use_iub: bool = False,
        num_partitions: int = 1,
        partition_seed: int = 0,
        em_workers: int = 0,
    ) -> None:
        """``use_iub=True`` yields Baseline+."""
        config = (
            FilterConfig.baseline_plus() if use_iub else FilterConfig.baseline()
        )
        super().__init__(
            collection,
            token_index,
            sim,
            alpha=alpha,
            num_partitions=num_partitions,
            partition_seed=partition_seed,
            config=config,
            em_workers=em_workers,
        )


class BruteForceSearcher:
    """Index-free exact top-k by scoring every set — the test oracle.

    Deliberately simple: one Hungarian matching per collection set, a
    sort, a prefix. Quadratic-ish and slow, and that is the point.
    """

    def __init__(
        self,
        collection: SetCollection,
        sim: SimilarityFunction,
        *,
        alpha: float = 0.8,
    ) -> None:
        if not (0.0 < alpha <= 1.0):
            raise InvalidParameterError("alpha must be in (0, 1]")
        self._collection = collection
        self._sim = sim
        self._alpha = alpha

    def scores(self, query: Iterable[str]) -> dict[int, float]:
        """Exact ``SO(Q, C)`` for every set id in the collection."""
        query_set = frozenset(query)
        if not query_set:
            raise EmptyQueryError("query set is empty")
        return {
            set_id: semantic_overlap(
                query_set, self._collection[set_id], self._sim, self._alpha
            )
            for set_id in self._collection.ids()
        }

    def search(self, query: Iterable[str], k: int = 10) -> SearchResult:
        """Top-k among sets with non-zero semantic overlap (Definition 2)."""
        if k < 1:
            raise InvalidParameterError("k must be >= 1")
        all_scores = self.scores(query)
        ranked = sorted(
            (
                (set_id, score)
                for set_id, score in all_scores.items()
                if score > 0.0
            ),
            key=lambda item: (-item[1], item[0]),
        )
        stats = SearchStats()
        stats.candidates = len(ranked)
        stats.em_full = len(all_scores)
        entries = [
            ResultEntry(
                set_id=set_id,
                name=self._collection.name_of(set_id),
                score=score,
                exact=True,
                lower_bound=score,
                upper_bound=score,
            )
            for set_id, score in ranked[:k]
        ]
        return SearchResult(entries=entries, stats=stats, k=k)
