"""SilkMoth reimplementation — the fuzzy-set-search comparator (§VIII-B).

SilkMoth (Deng et al., PVLDB 2017) answers *threshold* related-set search
under maximum-matching semantics: find sets whose matching score with the
query reaches a threshold ``theta``. Its candidate generation builds
*signatures* from set elements — for Jaccard, a rarest-first prefix of
each element's q-gram set sized so that any two elements with similarity
>= alpha must share a signature gram — and probes an inverted index over
grams. Candidates then pass a cheap *check filter* (a many-to-one upper
bound on the matching score) before exact bipartite-matching verification.

The paper compares Koios against two adaptations:

* **SilkMoth-syntactic** — the full machinery: prefix signatures and the
  check filter, both of which are only valid for specific syntactic
  similarities (that specialization is exactly Koios's criticism);
* **SilkMoth-semantic** — the generic framework the original authors
  suggested: no similarity-specific filters, so every gram of every
  element is indexed and every candidate goes straight to verification.

Neither solves top-k: following §VIII-B, ``search_topk`` feeds SilkMoth
the true ``theta_k*`` (an *advantage*, since Koios has to converge to it)
and keeps a top-k priority queue over the threshold result.
"""

from __future__ import annotations

import heapq
import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.core.koios import ResultEntry, SearchResult
from repro.core.semantic_overlap import semantic_overlap
from repro.core.stats import SearchStats
from repro.datasets.collection import SetCollection
from repro.errors import EmptyQueryError, InvalidParameterError
from repro.sim.jaccard import QGramJaccardSimilarity, jaccard

SYNTACTIC = "syntactic"
SEMANTIC = "semantic"
_VARIANTS = (SYNTACTIC, SEMANTIC)


@dataclass
class SilkMothStats:
    """Work counters for one threshold search."""

    candidates: int = 0
    check_filtered: int = 0
    verified: int = 0


class SilkMothSearch:
    """Signature-based related-set search with matching semantics."""

    def __init__(
        self,
        collection: SetCollection,
        *,
        alpha: float = 0.8,
        q: int = 3,
        variant: str = SYNTACTIC,
    ) -> None:
        """
        Parameters
        ----------
        alpha:
            Element-similarity threshold; pairs below it contribute 0,
            matching the setup shared with Koios in §VIII-B.
        q:
            q-gram length of the element similarity (paper: 3).
        variant:
            ``"syntactic"`` (signatures + check filter) or ``"semantic"``
            (generic framework, no similarity-specific filters).
        """
        if not (0.0 < alpha <= 1.0):
            raise InvalidParameterError("alpha must be in (0, 1]")
        if variant not in _VARIANTS:
            raise InvalidParameterError(
                f"variant must be one of {_VARIANTS}, got {variant!r}"
            )
        self._collection = collection
        self._alpha = alpha
        self._variant = variant
        self._sim = QGramJaccardSimilarity(q=q)
        self._gram_freq: Counter = Counter()
        for token in collection.vocabulary:
            self._gram_freq.update(self._sim.features(token))
        # gram -> [(set_id, element), ...]; signature grams only in the
        # syntactic variant, every gram in the semantic variant.
        self._gram_index: dict[str, list[tuple[int, str]]] = {}
        for set_id in collection.ids():
            for element in collection[set_id]:
                for gram in self._index_grams(element):
                    self._gram_index.setdefault(gram, []).append(
                        (set_id, element)
                    )

    @property
    def variant(self) -> str:
        return self._variant

    @property
    def similarity(self) -> QGramJaccardSimilarity:
        return self._sim

    # -- signatures ---------------------------------------------------------

    def signature(self, element: str) -> list[str]:
        """Rarest-first prefix of the element's grams.

        Prefix-filter principle: if ``jaccard(a, b) >= alpha`` then
        ``|f(a) & f(b)| >= ceil(alpha * |f(a)|)``, so the first
        ``|f(a)| - ceil(alpha*|f(a)|) + 1`` grams in a global order must
        intersect ``f(b)``. Ordering by ascending corpus frequency keeps
        posting lists short, as in SilkMoth.
        """
        grams = sorted(
            self._sim.features(element),
            key=lambda g: (self._gram_freq[g], g),
        )
        required = math.ceil(self._alpha * len(grams))
        prefix_len = len(grams) - required + 1
        return grams[: max(1, prefix_len)]

    def _index_grams(self, element: str) -> Iterable[str]:
        if self._variant == SYNTACTIC:
            return self.signature(element)
        return self._sim.features(element)

    # -- search ---------------------------------------------------------

    def candidate_edges(
        self, query: frozenset[str]
    ) -> tuple[dict[int, dict[str, float]], SilkMothStats]:
        """Candidate sets and their thresholded query-element edges.

        Returns ``set_id -> {query_element: best similarity}`` over
        colliding element pairs (pairs that collide in no gram have
        similarity < alpha by the prefix principle and contribute 0).
        """
        stats = SilkMothStats()
        best: dict[int, dict[str, float]] = {}
        scored: dict[tuple[str, str], float] = {}
        for q_element in query:
            probe_grams = (
                self.signature(q_element)
                if self._variant == SYNTACTIC
                else self._sim.features(q_element)
            )
            q_feats = self._sim.features(q_element)
            postings: set[tuple[int, str]] = set()
            for gram in probe_grams:
                postings.update(self._gram_index.get(gram, ()))
            for set_id, element in postings:
                if element == q_element:
                    score = 1.0
                else:
                    key = (q_element, element)
                    score = scored.get(key)
                    if score is None:
                        score = jaccard(q_feats, self._sim.features(element))
                        scored[key] = score
                    if score < self._alpha:
                        continue
                per_set = best.setdefault(set_id, {})
                if score > per_set.get(q_element, 0.0):
                    per_set[q_element] = score
        stats.candidates = len(best)
        return best, stats

    def search_threshold(
        self, query: Iterable[str], theta: float
    ) -> tuple[list[tuple[int, float]], SilkMothStats]:
        """All sets with matching score >= ``theta`` and their scores."""
        query_set = frozenset(query)
        if not query_set:
            raise EmptyQueryError("query set is empty")
        edges, stats = self.candidate_edges(query_set)
        results: list[tuple[int, float]] = []
        for set_id, per_query in edges.items():
            if self._variant == SYNTACTIC:
                # Check filter: the many-to-one bound (each query element
                # takes its best colliding partner, ignoring one-to-one
                # conflicts) dominates the true matching score.
                upper = sum(per_query.values())
                if upper < theta:
                    stats.check_filtered += 1
                    continue
            score = semantic_overlap(
                query_set,
                self._collection[set_id],
                self._sim,
                self._alpha,
            )
            stats.verified += 1
            if score >= theta:
                results.append((set_id, score))
        results.sort(key=lambda item: (-item[1], item[0]))
        return results, stats

    def search_topk(
        self, query: Iterable[str], k: int, theta_star: float
    ) -> SearchResult:
        """Top-k via threshold search at the (given) true ``theta_k*``.

        Exactly the §VIII-B adaptation: run at ``theta_star`` and keep a
        top-k heap. Ties at ``theta_star`` are cut arbitrarily, like the
        paper's Definition 2 allows.
        """
        if k < 1:
            raise InvalidParameterError("k must be >= 1")
        matches, silk_stats = self.search_threshold(query, theta_star)
        heap: list[tuple[float, int]] = []
        for set_id, score in matches:
            heapq.heappush(heap, (score, -set_id))
            if len(heap) > k:
                heapq.heappop(heap)
        ranked = sorted(
            ((-neg_id, score) for score, neg_id in heap),
            key=lambda item: (-item[1], item[0]),
        )
        stats = SearchStats()
        stats.candidates = silk_stats.candidates
        stats.em_full = silk_stats.verified
        entries = [
            ResultEntry(
                set_id=set_id,
                name=self._collection.name_of(set_id),
                score=score,
                exact=True,
                lower_bound=score,
                upper_bound=score,
            )
            for set_id, score in ranked
        ]
        return SearchResult(entries=entries, stats=stats, k=k)
