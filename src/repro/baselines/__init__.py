"""Comparators: the paper's Baseline/Baseline+, a brute-force oracle,
vanilla-overlap search, greedy-matching search, and SilkMoth."""

from repro.baselines.exhaustive import BruteForceSearcher, ExhaustiveBaseline
from repro.baselines.greedy_topk import GreedyTopKSearch
from repro.baselines.silkmoth import (
    SEMANTIC,
    SYNTACTIC,
    SilkMothSearch,
    SilkMothStats,
)
from repro.baselines.vanilla import VanillaOverlapSearch

__all__ = [
    "BruteForceSearcher",
    "ExhaustiveBaseline",
    "GreedyTopKSearch",
    "SEMANTIC",
    "SYNTACTIC",
    "SilkMothSearch",
    "SilkMothStats",
    "VanillaOverlapSearch",
]
