"""Greedy-matching top-k search — the comparator Fig. 1 shows failing.

Greedy matching is a 1/2-approximation of the optimal matching, runs in
O(n^2 log n) instead of O(n^3), and is the obvious "cheap" alternative to
Koios. The paper's introduction demonstrates it is *not* a valid
substitute: ranking by greedy score can invert the true order (C1 above
C2 in Fig. 1). This searcher exists to reproduce that negative result and
to quantify the rank disagreement on synthetic corpora.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.koios import ResultEntry, SearchResult
from repro.core.semantic_overlap import greedy_semantic_overlap
from repro.core.stats import SearchStats
from repro.datasets.collection import SetCollection
from repro.errors import EmptyQueryError, InvalidParameterError
from repro.index.base import TokenIndex
from repro.index.inverted import InvertedIndex
from repro.index.token_stream import TokenStream
from repro.sim.base import SimilarityFunction


class GreedyTopKSearch:
    """Top-k by greedy (suboptimal) matching score.

    Candidate generation is identical to Koios/Baseline — the token
    stream plus the inverted index — so any result difference against
    exact search is attributable purely to greedy scoring.
    """

    def __init__(
        self,
        collection: SetCollection,
        token_index: TokenIndex,
        sim: SimilarityFunction,
        *,
        alpha: float = 0.8,
    ) -> None:
        if not (0.0 < alpha <= 1.0):
            raise InvalidParameterError("alpha must be in (0, 1]")
        self._collection = collection
        self._token_index = token_index
        self._sim = sim
        self._alpha = alpha
        self._inverted = InvertedIndex(collection)

    def candidate_ids(self, query: Iterable[str]) -> list[int]:
        """Every set with at least one element within alpha of the query."""
        query_set = frozenset(query)
        if not query_set:
            raise EmptyQueryError("query set is empty")
        stream = TokenStream(
            query_set,
            self._token_index,
            self._alpha,
            collection_vocabulary=self._collection.vocabulary,
        )
        found: set[int] = set()
        for _, token, _ in stream:
            found.update(self._inverted.sets_containing(token))
        return sorted(found)

    def search(self, query: Iterable[str], k: int = 10) -> SearchResult:
        if k < 1:
            raise InvalidParameterError("k must be >= 1")
        query_set = frozenset(query)
        candidates = self.candidate_ids(query_set)
        scored = [
            (
                set_id,
                greedy_semantic_overlap(
                    query_set, self._collection[set_id], self._sim, self._alpha
                ),
            )
            for set_id in candidates
        ]
        ranked = sorted(
            ((s, v) for s, v in scored if v > 0.0),
            key=lambda item: (-item[1], item[0]),
        )
        stats = SearchStats()
        stats.candidates = len(candidates)
        entries = [
            ResultEntry(
                set_id=set_id,
                name=self._collection.name_of(set_id),
                score=score,
                exact=False,  # greedy scores are lower bounds, not SO
                lower_bound=score,
                upper_bound=score,
            )
            for set_id, score in ranked[:k]
        ]
        return SearchResult(entries=entries, stats=stats, k=k)
