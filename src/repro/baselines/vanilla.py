"""Vanilla-overlap top-k search (the JOSIE-style syntactic comparator).

Semantic overlap generalizes vanilla overlap (Lemma 1); the paper's
quality experiment (Fig. 8) compares the top-k lists of both measures on
the same collection. Vanilla search needs no graph matching: probing the
inverted index with the query tokens and counting posting hits per set
yields every ``|Q ∩ C|`` in one pass.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.core.koios import ResultEntry, SearchResult
from repro.core.stats import SearchStats
from repro.datasets.collection import SetCollection
from repro.errors import EmptyQueryError, InvalidParameterError
from repro.index.inverted import InvertedIndex


class VanillaOverlapSearch:
    """Exact top-k by ``|Q ∩ C|`` via inverted-index counting."""

    def __init__(self, collection: SetCollection) -> None:
        self._collection = collection
        self._inverted = InvertedIndex(collection)

    @property
    def collection(self) -> SetCollection:
        return self._collection

    def overlaps(self, query: Iterable[str]) -> Counter:
        """``set_id -> |Q ∩ C|`` for every set sharing a token with Q."""
        query_set = frozenset(query)
        if not query_set:
            raise EmptyQueryError("query set is empty")
        counts: Counter = Counter()
        for token in query_set:
            for set_id in self._inverted.sets_containing(token):
                counts[set_id] += 1
        return counts

    def search(self, query: Iterable[str], k: int = 10) -> SearchResult:
        """Top-k sets by vanilla overlap (ties broken by ascending id)."""
        if k < 1:
            raise InvalidParameterError("k must be >= 1")
        counts = self.overlaps(query)
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        stats = SearchStats()
        stats.candidates = len(counts)
        entries = [
            ResultEntry(
                set_id=set_id,
                name=self._collection.name_of(set_id),
                score=float(overlap),
                exact=True,
                lower_bound=float(overlap),
                upper_bound=float(overlap),
            )
            for set_id, overlap in ranked[:k]
        ]
        return SearchResult(entries=entries, stats=stats, k=k)
