"""Document search over a DBLP-like corpus of word sets.

Reproduces the paper's DBLP scenario at example scale: each "document"
is the set of words in a title+abstract; a query document should retrieve
semantically related documents even when they share few exact words.
Compares the semantic top-k with vanilla-overlap search to show what
exact matching alone misses (the paper's Fig. 8 phenomenon).

Run:  python examples/document_search.py
"""

from repro import KoiosSearchEngine, SetCollection, vanilla_overlap
from repro.baselines import VanillaOverlapSearch
from repro.datasets import DBLP_TINY, generate_dataset
from repro.experiments import build_stack


def main() -> None:
    dataset = generate_dataset(DBLP_TINY, seed=42)
    stack = build_stack(dataset)
    engine = stack.engine(alpha=0.8)
    vanilla = VanillaOverlapSearch(dataset.collection)

    # Pick the first query whose semantic and vanilla top-5 differ —
    # i.e. one whose words have planted synonym/typo siblings elsewhere.
    query_id = next(
        qid
        for qid in dataset.collection.ids()
        if set(engine.search(dataset.collection[qid], k=5).ids())
        != set(vanilla.search(dataset.collection[qid], k=5).ids())
    )
    query = dataset.collection[query_id]
    print(
        f"corpus: {len(dataset.collection)} documents, "
        f"query = document {query_id} ({len(query)} words)\n"
    )

    semantic_result = engine.search(query, k=5)
    vanilla_result = vanilla.search(query, k=5)

    print("semantic top-5:")
    for entry in semantic_result.entries:
        exact_words = vanilla_overlap(query, dataset.collection[entry.set_id])
        print(
            f"  doc {entry.set_id:>4}  SO = {entry.score:6.2f}"
            f"  exact-word overlap = {exact_words}"
        )

    print("\nvanilla top-5:")
    for entry in vanilla_result.entries:
        print(f"  doc {entry.set_id:>4}  |Q ∩ C| = {entry.score:.0f}")

    semantic_ids = set(semantic_result.ids())
    vanilla_ids = set(vanilla_result.ids())
    only_semantic = semantic_ids - vanilla_ids
    print(
        f"\nresult overlap: {len(semantic_ids & vanilla_ids)}/5; "
        f"documents only semantic search finds: {sorted(only_semantic)}"
    )
    if only_semantic:
        print(
            "those documents share planted synonym/typo tokens with the "
            "query that exact matching cannot see."
        )


if __name__ == "__main__":
    main()
