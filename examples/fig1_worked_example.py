"""The paper's Fig. 1 worked example, reproduced number by number.

Prints vanilla, fuzzy (Jaccard of 3-grams), and semantic overlaps of the
query against C1 and C2, plus the greedy-matching scores, and shows that
only exact semantic overlap ranks C2 first.

Run:  python examples/fig1_worked_example.py
"""

from repro import (
    CallableSimilarity,
    PinnedSimilarityModel,
    QGramJaccardSimilarity,
    greedy_semantic_overlap,
    semantic_overlap,
    vanilla_overlap,
)

QUERY = {"LA", "Seattle", "Columbia", "Blaine", "BigApple", "Charleston"}
C1 = {"LA", "Blain", "Appleton", "MtPleasant", "Lexington", "WestCoast"}
C2 = {"LA", "Sacramento", "Southern", "Blain", "SC", "Minnesota", "NewYorkCity"}

# Semantic element similarities consistent with every number in Fig. 1.
SEMANTIC_SIMS = {
    ("Blaine", "Blain"): 0.99,
    ("Seattle", "WestCoast"): 0.70,
    ("Columbia", "Lexington"): 0.70,
    ("Charleston", "MtPleasant"): 0.70,
    ("BigApple", "Appleton"): 0.33,
    ("BigApple", "NewYorkCity"): 0.90,
    ("Charleston", "SC"): 0.85,
    ("Columbia", "SC"): 0.80,
    ("Charleston", "Southern"): 0.80,
    ("LA", "Sacramento"): 0.75,
    ("Blaine", "Minnesota"): 0.70,
    ("Columbia", "Minnesota"): 0.50,
}
ALPHA = 0.7


def main() -> None:
    fuzzy = QGramJaccardSimilarity(q=3)
    semantic = CallableSimilarity(PinnedSimilarityModel(SEMANTIC_SIMS))

    print("Q  =", sorted(QUERY))
    print("C1 =", sorted(C1))
    print("C2 =", sorted(C2))
    print()

    rows = []
    for name, candidate in (("C1", C1), ("C2", C2)):
        rows.append(
            (
                name,
                vanilla_overlap(QUERY, candidate),
                semantic_overlap(QUERY, candidate, fuzzy, alpha=0.3),
                semantic_overlap(QUERY, candidate, semantic, alpha=ALPHA),
                greedy_semantic_overlap(QUERY, candidate, semantic, ALPHA),
            )
        )

    header = f"{'set':<4} {'vanilla':>8} {'fuzzy':>8} {'semantic':>9} {'greedy':>8}"
    print(header)
    print("-" * len(header))
    for name, vanilla, fuzz, sem, greedy in rows:
        print(f"{name:<4} {vanilla:>8} {fuzz:>8.2f} {sem:>9.2f} {greedy:>8.2f}")

    def top1(scores):
        return max(scores, key=scores.get)

    print()
    print("top-1 by fuzzy overlap   :", top1({n: r for n, _, r, _, _ in rows}))
    print("top-1 by greedy matching :", top1({n: r for n, _, _, _, r in rows}))
    print("top-1 by semantic overlap:", top1({n: r for n, _, _, r, _ in rows}))
    print()
    print("Only exact semantic overlap ranks C2 (the truly closer set) first,")
    print("matching the paper's Example 2.")


if __name__ == "__main__":
    main()
