"""The paper's future-work extension (§X): many-to-one semantic overlap.

One-to-one matching undercounts when the *query* contains spelling or
phrasing variants that all correspond to one candidate value — the
paper's own example: ``United States of America`` and ``United States``
should both map onto ``USA``. The many-to-one relaxation lets every query
element take its best candidate partner.

Run:  python examples/many_to_one_extension.py
"""

from repro import (
    CallableSimilarity,
    PinnedSimilarityModel,
    semantic_overlap,
    semantic_overlap_many_to_one,
)

QUERY = {
    "united states of america",
    "united states",
    "u.s.",
    "germany",
    "france",
}
CANDIDATE = {"usa", "deu", "fra"}

SIMS = {
    ("united states of america", "usa"): 0.93,
    ("united states", "usa"): 0.93,
    ("u.s.", "usa"): 0.90,
    ("germany", "deu"): 0.88,
    ("france", "fra"): 0.89,
}


def main() -> None:
    sim = CallableSimilarity(PinnedSimilarityModel(SIMS))

    one_to_one = semantic_overlap(QUERY, CANDIDATE, sim, alpha=0.8)
    many_to_one = semantic_overlap_many_to_one(QUERY, CANDIDATE, sim, alpha=0.8)

    print("query    :", sorted(QUERY))
    print("candidate:", sorted(CANDIDATE))
    print()
    print(f"one-to-one semantic overlap (Definition 1): {one_to_one:.2f}")
    print(f"many-to-one extension (§X)               : {many_to_one:.2f}")
    print()
    print(
        "Under one-to-one matching only one of the three US spellings can\n"
        "map onto 'usa'; the many-to-one extension credits all of them,\n"
        "absorbing within-query noise exactly as the conclusion sketches."
    )

    # The relaxed measure needs no bipartite matching at all, so top-k
    # search under it runs entirely off the token stream:
    from repro import ManyToOneSearchEngine, ScanTokenIndex, SetCollection

    collection = SetCollection(
        [CANDIDATE, {"usa", "gbr"}, {"jpn", "chn"}],
        names=["countries_iso", "anglosphere", "east_asia"],
    )
    index = ScanTokenIndex(collection.vocabulary, sim)
    engine = ManyToOneSearchEngine(collection, index, alpha=0.8)
    print("\ntop-2 under many-to-one overlap:")
    for entry in engine.search(QUERY, k=2).entries:
        print(f"  {entry.name:<15} MO = {entry.score:.2f}")


if __name__ == "__main__":
    main()
