"""Joinable-table discovery over a synthetic data lake.

The paper's motivating application: given a query column, find the
columns it can semantically join with, even when values differ by typos
(``portlnd``) or synonyms (``bigapple`` vs ``newyorkcity``), and then use
the optimal matching itself as the value mapping — the capability the
paper positions against SEMA-JOIN.

Run:  python examples/joinable_table_search.py
"""

from repro import (
    CosineSimilarity,
    ExactCosineIndex,
    KoiosSearchEngine,
    SetCollection,
    SyntheticEmbeddingModel,
    VectorStore,
    matching_pairs,
)

# A miniature data lake: columns extracted from different "tables",
# written under different conventions.
COLUMNS = {
    "hr.employees.city": {
        "bigapple", "cityofangels", "chitown", "beantown", "portland",
    },
    "sales.clients.location": {
        "newyorkcity", "losangeles", "chicago", "boston", "portlnd",
    },
    "ops.warehouses.site": {"newyorkcity", "chicago", "denver"},
    "marketing.events.venue": {"austin", "nashville", "memphis"},
    "finance.offices.town": {"boston", "denver", "seattle"},
}

# Planted semantics: nickname <-> official-name clusters (with FastText
# embeddings these cosines come for free; here they are controlled).
CLUSTERS = {
    "nyc": ["bigapple", "newyorkcity"],
    "la": ["cityofangels", "losangeles"],
    "chi": ["chitown", "chicago"],
    "bos": ["beantown", "boston"],
    "pdx": ["portland", "portlnd"],
}


def main() -> None:
    collection = SetCollection.from_mapping(COLUMNS)
    provider = SyntheticEmbeddingModel(
        dim=64, clusters=CLUSTERS, cluster_similarity=0.93
    )
    store = VectorStore(provider, collection.vocabulary)
    engine = KoiosSearchEngine(
        collection,
        ExactCosineIndex(store, provider),
        CosineSimilarity(provider),
        alpha=0.7,
    )

    query_name = "hr.employees.city"
    query = COLUMNS[query_name]
    result = engine.search(query, k=3)

    print(f"query column: {query_name} = {sorted(query)}\n")
    print("joinable columns by semantic overlap:")
    for entry in result.entries:
        print(f"  {entry.name:<28} SO = {entry.score:.3f}")

    # The matching itself is the value mapping for the best join partner
    # (excluding the query column itself).
    best = next(e for e in result.entries if e.name != query_name)
    print(f"\nvalue mapping onto {best.name}:")
    pairs = matching_pairs(
        query, collection[collection.id_of(best.name)],
        CosineSimilarity(provider), alpha=0.7,
    )
    for q_value, c_value, weight in sorted(pairs):
        print(f"  {q_value:<14} -> {c_value:<14} (sim {weight:.2f})")


if __name__ == "__main__":
    main()
