"""Quickstart: top-k semantic overlap search in a dozen lines.

Builds a small collection of city-name sets, embeds tokens with the
FastText-style hashing provider (so typo variants land close in embedding
space), and runs a Koios top-3 search.

Run:  python examples/quickstart.py
"""

from repro import (
    CosineSimilarity,
    ExactCosineIndex,
    HashingEmbeddingProvider,
    KoiosSearchEngine,
    SetCollection,
    VectorStore,
)


def main() -> None:
    collection = SetCollection.from_mapping(
        {
            "west_coast_cities": {"seattle", "portland", "losangeles", "oakland"},
            "west_coast_dirty": {"seattle", "portlnd", "losangeles", "oaklnd"},
            "east_coast_cities": {"boston", "newyork", "philadelphia"},
            "mixed_cities": {"seattle", "boston", "denver", "chicago"},
            "mountain_towns": {"boulder", "missoula", "bozeman"},
        }
    )

    provider = HashingEmbeddingProvider(dim=128)
    store = VectorStore(provider, collection.vocabulary)
    index = ExactCosineIndex(store, provider)
    sim = CosineSimilarity(provider)

    # Hashing embeddings put one-edit typos at cosine ~0.45 and unrelated
    # tokens at ~0.0, so a 0.4 threshold separates them cleanly (with
    # pre-trained FastText vectors the paper's 0.8 plays the same role).
    engine = KoiosSearchEngine(collection, index, sim, alpha=0.4)
    query = {"seattle", "portland", "losangeles", "oakland"}
    result = engine.search(query, k=3)

    print(f"query: {sorted(query)}")
    print(f"top-{result.k} by semantic overlap:")
    for entry in result.entries:
        print(
            f"  {entry.name:<20} SO = {entry.score:.3f}"
            f"  (exact={entry.exact})"
        )
    stats = result.stats
    print(
        f"\ncandidates: {stats.candidates}, pruned in refinement: "
        f"{stats.refinement_pruned}, full matchings: {stats.em_full}"
    )


if __name__ == "__main__":
    main()
