"""§VIII-B — Koios vs SilkMoth under Jaccard on 3-grams.

Both systems answer the same top-k problem with the same element
similarity (q-gram Jaccard, alpha = 0.8): Koios through its generic
ordered-stream framework, SilkMoth through prefix signatures (syntactic
variant) or the filter-free generic framework (semantic variant), with
the true theta_k* handed to SilkMoth as §VIII-B prescribes.

Paper shape: Koios fastest, SilkMoth-syntactic slower, SilkMoth-semantic
slowest (72 s / 141 s / 400 s at paper scale).
"""

import time

import pytest

from benchmarks.conftest import QUERY_SEED
from repro.baselines import SEMANTIC, SYNTACTIC, SilkMothSearch
from repro.core import KoiosSearchEngine
from repro.datasets import QueryBenchmark
from repro.experiments import format_table
from repro.index import PrefixJaccardIndex
from repro.sim import QGramJaccardSimilarity

DATASET = "opendata"
ALPHA = 0.8
K = 10


@pytest.fixture(scope="module")
def jaccard_setup(stacks):
    from benchmarks.conftest import EXPLICIT_INTERVALS
    from repro.datasets import CardinalityInterval

    collection = stacks[DATASET].collection
    sim = QGramJaccardSimilarity(q=3)
    index = PrefixJaccardIndex(
        collection.vocabulary, alpha=ALPHA, similarity=sim
    )
    koios = KoiosSearchEngine(collection, index, sim, alpha=ALPHA)
    silk_syn = SilkMothSearch(collection, alpha=ALPHA, variant=SYNTACTIC)
    silk_sem = SilkMothSearch(collection, alpha=ALPHA, variant=SEMANTIC)
    # The paper evaluates on queries spanning small, medium, and large
    # sets; SilkMoth's signature count grows with set size, so the
    # stratified benchmark is where the comparison is meaningful.
    intervals = [
        CardinalityInterval(lo, hi)
        for lo, hi in EXPLICIT_INTERVALS[DATASET]
    ]
    bench = QueryBenchmark.by_intervals(
        collection, intervals, 1, seed=QUERY_SEED
    )
    return collection, koios, silk_syn, silk_sem, bench


def test_silkmoth_comparison(benchmark, jaccard_setup, report):
    collection, koios, silk_syn, silk_sem, bench = jaccard_setup

    num_queries = len(bench)
    timings = {"koios": 0.0, "silkmoth-syntactic": 0.0,
               "silkmoth-semantic": 0.0}
    verified = {"silkmoth-syntactic": 0, "silkmoth-semantic": 0}
    for _, _, tokens in bench:
        start = time.perf_counter()
        koios_result = koios.search(tokens, k=K)
        timings["koios"] += time.perf_counter() - start
        theta_star = koios_result.theta_k  # the advantage SilkMoth gets

        for name, searcher in (
            ("silkmoth-syntactic", silk_syn),
            ("silkmoth-semantic", silk_sem),
        ):
            start = time.perf_counter()
            silk_result = searcher.search_topk(tokens, K, theta_star)
            timings[name] += time.perf_counter() - start
            verified[name] += silk_result.stats.em_full
            # Same problem, same answer: score lists must agree on the
            # entries above theta_star (ties at theta_star are arbitrary).
            koios_above = [s for s in koios_result.scores()
                           if s > theta_star + 1e-9]
            silk_above = [s for s in silk_result.scores()
                          if s > theta_star + 1e-9]
            assert silk_above == pytest.approx(koios_above, abs=1e-6)

    query = collection[bench.all_query_ids()[0]]
    benchmark(koios.search, query, K)

    rows = [
        [name, seconds / num_queries] for name, seconds in timings.items()
    ]
    report()
    report(format_table(
        ["method", "avg response (s)"], rows,
        title="SilkMoth comparison (paper: 72s / 141s / 400s)",
    ))
    report(
        f"verifications/query: syntactic="
        f"{verified['silkmoth-syntactic'] / num_queries:.0f} "
        f"semantic={verified['silkmoth-semantic'] / num_queries:.0f}"
    )

    # Paper shape: the generic (semantic) SilkMoth — the only variant
    # that could even in principle host a semantic similarity — is by
    # far the slowest, because it has no similarity-specific filters.
    assert timings["koios"] < timings["silkmoth-semantic"]
    assert timings["silkmoth-syntactic"] < timings["silkmoth-semantic"]
    assert verified["silkmoth-semantic"] > 3 * verified["silkmoth-syntactic"]
    # SilkMoth-syntactic gets theta_k* for free and our scaled sets never
    # reach its signature explosion (see EXPERIMENTS.md), so we only
    # require Koios to stay competitive with it at this scale.
    assert timings["koios"] < 3 * timings["silkmoth-syntactic"]
