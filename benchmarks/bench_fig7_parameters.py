"""Fig. 7 — parameter analysis on the OpenData-like profile.

Sweeps (a) the number of partitions, (b) the element similarity threshold
alpha, and (c) the result size k, reporting mean response time, the
refinement/post-processing split, and (d) memory vs alpha.

Paper shapes: more partitions -> faster (shared theta_lb grows quicker);
higher alpha -> faster but slightly *more* memory (fewer stream tuples
converge to a smaller theta_lb, so more sets reach post-processing);
larger k -> counter-intuitively faster post-processing.
"""

import pytest

from benchmarks.conftest import DEFAULT_ALPHA, DEFAULT_K, QUERY_SEED
from repro.datasets import QueryBenchmark
from repro.experiments import (
    format_series,
    koios_search_fn,
    parameter_sweep,
)

DATASET = "opendata"
SWEEP_QUERIES = 6

PARTITION_VALUES = [1, 2, 5, 10]
ALPHA_VALUES = [0.7, 0.75, 0.8, 0.85, 0.9]
K_VALUES = [1, 5, 10, 20, 50]


@pytest.fixture(scope="module")
def sweep_benchmark(stacks):
    return QueryBenchmark.uniform(
        stacks[DATASET].collection, SWEEP_QUERIES, seed=QUERY_SEED
    )


def test_fig7a_partitions(benchmark, stacks, sweep_benchmark, report):
    """The paper runs partitions in parallel on 64 cores; to separate the
    algorithmic effect from Python's GIL we report the *simulated
    parallel* response time (serial time with the per-partition work
    replaced by the slowest partition)."""
    from repro.experiments import run_benchmark

    stack = stacks[DATASET]
    parallel_series = []
    serial_series = []
    for partitions in PARTITION_VALUES:
        engine = stack.engine(
            alpha=DEFAULT_ALPHA, num_partitions=partitions
        )
        records = run_benchmark(
            koios_search_fn(engine), sweep_benchmark, DEFAULT_K,
            method=f"partitions={partitions}", dataset_name=DATASET,
        )
        parallel_series.append(
            (partitions, sum(r.parallel_seconds for r in records)
             / len(records))
        )
        serial_series.append(
            (partitions, sum(r.seconds for r in records) / len(records))
        )

    engine = stack.engine(alpha=DEFAULT_ALPHA, num_partitions=10)
    query = stack.collection[sweep_benchmark.all_query_ids()[0]]
    benchmark(engine.search, query, DEFAULT_K)

    report()
    report("Fig 7a: time vs number of partitions")
    report("  " + format_series("parallel response_s", parallel_series))
    report("  " + format_series("serial response_s (1 core)", serial_series))

    response = dict(parallel_series)
    # Shape: with parallel partitions the response time decreases.
    assert response[PARTITION_VALUES[-1]] <= response[1] * 1.1


def test_fig7b_and_7d_alpha(benchmark, stacks, sweep_benchmark, report):
    stack = stacks[DATASET]

    def make(alpha):
        return koios_search_fn(stack.engine(alpha=alpha))

    sweep = parameter_sweep(
        "alpha", ALPHA_VALUES, make, sweep_benchmark,
        k_for=lambda _: DEFAULT_K,
    )
    engine = stack.engine(alpha=ALPHA_VALUES[-1])
    query = stack.collection[sweep_benchmark.all_query_ids()[0]]
    benchmark(engine.search, query, DEFAULT_K)

    report()
    report("Fig 7b: time vs element similarity threshold (alpha)")
    report("  " + format_series("response_s", sweep.response))
    report("Fig 7d: memory vs alpha")
    report("  " + format_series("memory_mb", sweep.memory))

    response = dict(sweep.response)
    # Shape: the highest alpha is the fastest setting.
    assert response[ALPHA_VALUES[-1]] <= min(response.values()) * 1.25


def test_fig7c_k(benchmark, stacks, sweep_benchmark, report):
    stack = stacks[DATASET]
    engine = stack.engine(alpha=DEFAULT_ALPHA)

    def make(_k):
        return koios_search_fn(engine)

    sweep = parameter_sweep(
        "k", K_VALUES, make, sweep_benchmark, k_for=lambda k: k,
    )
    query = stack.collection[sweep_benchmark.all_query_ids()[0]]
    benchmark(engine.search, query, K_VALUES[-1])

    report()
    report("Fig 7c: time vs result size k")
    report("  " + format_series("response_s", sweep.response))
    report("  " + format_series("refinement_share", sweep.refinement_share))

    response = dict(sweep.response)
    # Shape: response time grows far sublinearly in k. (The paper even
    # observes a *decrease* on its corpora; on the synthetic corpus the
    # theta_lb-weakening effect of larger k dominates for tiny k because
    # a corpus query's own family makes theta_lb(k=1) ~ |Q| — see
    # EXPERIMENTS.md for the deviation discussion.)
    growth = response[K_VALUES[-1]] / max(response[K_VALUES[2]], 1e-9)
    k_growth = K_VALUES[-1] / K_VALUES[2]
    assert growth < k_growth, (growth, k_growth)
