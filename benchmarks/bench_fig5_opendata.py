"""Fig. 5 — OpenData: (a) response time vs query cardinality for Koios
and the Baseline (with timeout counts), (b)+(c) phase breakdown, and
(d) memory footprint.

Paper shape: response time grows with query cardinality; Koios's
advantage over the Baseline widens for medium-to-large queries; memory
grows roughly linearly with query cardinality and stays comparable
between the two systems.
"""

from benchmarks.conftest import (
    BASELINE_TIME_BUDGET,
    DEFAULT_ALPHA,
    DEFAULT_K,
)
from repro.baselines import ExhaustiveBaseline
from repro.experiments import (
    format_series,
    koios_search_fn,
    response_time_panels,
    run_benchmark,
)

DATASET = "opendata"


def run_panels(stack, bench):
    koios_records = run_benchmark(
        koios_search_fn(stack.engine(alpha=DEFAULT_ALPHA)),
        bench, DEFAULT_K, method="koios", dataset_name=DATASET,
    )
    baseline = ExhaustiveBaseline(
        stack.collection, stack.index, stack.sim, alpha=DEFAULT_ALPHA
    )
    baseline_records = run_benchmark(
        koios_search_fn(baseline, time_budget=BASELINE_TIME_BUDGET),
        bench, DEFAULT_K, method="baseline", dataset_name=DATASET,
    )
    records = {"koios": koios_records, "baseline": baseline_records}
    return records, response_time_panels(records)


def test_fig5_opendata_panels(benchmark, stacks, interval_benchmarks, report):
    stack = stacks[DATASET]
    bench = interval_benchmarks[DATASET]
    records, panels = run_panels(stack, bench)

    engine = stack.engine(alpha=DEFAULT_ALPHA)
    query = stack.collection[bench.groups[0].query_ids[0]]
    benchmark(engine.search, query, DEFAULT_K)

    report()
    report("Fig 5a: mean response time (s) per cardinality interval")
    for method, series in panels.response.items():
        report("  " + format_series(method, series))
    report("Fig 5a annotations: timeouts per interval")
    for method, series in panels.timeouts.items():
        report("  " + format_series(method, series, float_digits=0))
    report("Fig 5b/5c: Koios phase share per interval")
    report("  " + format_series("refinement", panels.refinement_share))
    report("  " + format_series("postprocessing", panels.postproc_share))
    report("Fig 5d: mean memory footprint (MB) per interval")
    for method, series in panels.memory.items():
        report("  " + format_series(method, series))

    koios_resp = dict(panels.response["koios"])
    baseline_resp = dict(panels.response["baseline"])
    koios_timeouts = dict(panels.timeouts["koios"])
    baseline_timeouts = dict(panels.timeouts["baseline"])
    # Koios wins every interval: either it is faster on the queries the
    # baseline completed, or the baseline timed out wholesale (its mean
    # is over *successful* queries only — the paper's convention).
    shared = [g for g in koios_resp if g in baseline_resp]
    assert shared
    for group in shared:
        if baseline_resp[group] == 0.0 and baseline_timeouts[group] > 0:
            assert koios_timeouts[group] <= baseline_timeouts[group]
            continue
        assert koios_resp[group] <= baseline_resp[group] * 1.05
    # Koios never times out more often than the baseline.
    assert sum(koios_timeouts.values()) <= sum(baseline_timeouts.values())
    # Memory of the two systems stays within an order of magnitude.
    for group, value in panels.memory["koios"]:
        base_value = dict(panels.memory["baseline"]).get(group)
        if base_value:
            assert value < 10 * base_value + 1.0
