"""Table V — WDC: filter attribution per query-cardinality interval.

Same breakdown as Table IV on the WDC-like profile, whose heavier
element-frequency skew (long posting lists) makes candidate counts much
larger than OpenData's at every query size — that inter-dataset ordering
is part of the reproduced shape.
"""

from benchmarks.conftest import DEFAULT_ALPHA, DEFAULT_K
from repro.experiments import (
    TABLE45_HEADERS,
    format_table,
    koios_search_fn,
    run_benchmark,
    summarize,
    table45_rows,
)

#: Paper Table V for the side-by-side report.
PAPER_ROWS = [
    ["20-250", 124_217, 60_196, 74, 80, 63_867],
    ["250-500", 189_665, 186_512, 90, 3, 3_060],
    ["500-750", 262_947, 261_901, 85, 6, 953],
    ["750-1000", 274_695, 273_743, 83, 26, 843],
    [">=1000", 402_622, 402_332, 84, 3, 203],
]


def test_table5_wdc_pruning(benchmark, stacks, interval_benchmarks, report):
    stack = stacks["wdc"]
    bench = interval_benchmarks["wdc"]
    engine = stack.engine(alpha=DEFAULT_ALPHA)
    records = run_benchmark(
        koios_search_fn(engine), bench, DEFAULT_K,
        method="koios", dataset_name="wdc",
    )
    rows = table45_rows(records)

    query = stack.collection[bench.groups[-1].query_ids[0]]
    benchmark(engine.search, query, DEFAULT_K)

    report()
    report(format_table(
        TABLE45_HEADERS, rows,
        title="Table V (measured): WDC sets pruned by filters",
        float_digits=1,
    ))
    report()
    report(format_table(
        TABLE45_HEADERS, PAPER_ROWS, title="Table V (paper)",
    ))

    summaries = summarize(records)
    assert summaries[-1].mean_candidates > summaries[0].mean_candidates
    last_survive = summaries[-1].postprocessed / max(
        1.0, summaries[-1].mean_candidates
    )
    # Paper: "less than 5% of candidate sets need post-processing for
    # large queries" on WDC; allow scaled-corpus slack.
    assert last_survive < 0.15


def test_wdc_candidates_exceed_opendata(
    benchmark, stacks, interval_benchmarks, report
):
    """WDC's posting-list skew yields more candidates per query than
    OpenData — the phenomenon the paper attributes its refinement cost to."""
    results = {}
    for name in ("opendata", "wdc"):
        stack = stacks[name]
        engine = stack.engine(alpha=DEFAULT_ALPHA)
        records = run_benchmark(
            koios_search_fn(engine),
            interval_benchmarks[name],
            DEFAULT_K,
            method="koios",
            dataset_name=name,
        )
        candidates = [r.stats.candidates for r in records]
        results[name] = sum(candidates) / len(candidates)

    benchmark(lambda: None)  # attribution bench — the work happened above
    report()
    report(
        f"mean candidates/query: opendata={results['opendata']:.0f} "
        f"wdc={results['wdc']:.0f}"
    )
    assert results["wdc"] > results["opendata"]
