"""Table II — average percentage of sets pruned by each filter.

Runs the full Koios configuration over a uniform query benchmark on each
dataset and attributes every candidate to the filter that resolved it:
the iUB-Filter (refinement), EM-Early-Terminated, or No-EM (resolved in
post-processing without a completed matching). Shape expectation from
the paper: the iUB filter does the bulk of the pruning everywhere except
on Twitter-like data (small sets, cheap matchings, weak bounds).
"""

from benchmarks.conftest import DEFAULT_ALPHA, DEFAULT_K
from repro.experiments import (
    TABLE2_HEADERS,
    TABLE2_PAPER,
    format_table,
    koios_search_fn,
    run_benchmark,
    table2_row,
)

DATASETS = ["dblp", "opendata", "twitter", "wdc"]


def run_one(stack, bench):
    engine = stack.engine(alpha=DEFAULT_ALPHA)
    return run_benchmark(
        koios_search_fn(engine), bench, DEFAULT_K,
        method="koios", dataset_name=stack.dataset.name,
    )


def test_table2_filter_pruning(benchmark, stacks, uniform_benchmarks, report):
    rows = []
    records_by_dataset = {}
    for name in DATASETS:
        records = run_one(stacks[name], uniform_benchmarks[name])
        records_by_dataset[name] = records
        rows.append(table2_row(name, records))

    # Benchmark one representative query search end to end.
    stack = stacks["opendata"]
    engine = stack.engine(alpha=DEFAULT_ALPHA)
    query = stack.collection[uniform_benchmarks["opendata"].all_query_ids()[0]]
    benchmark(engine.search, query, DEFAULT_K)

    paper_rows = [
        [name, *TABLE2_PAPER[name]] for name in DATASETS
    ]
    report()
    report(format_table(
        TABLE2_HEADERS, rows,
        title="Table II (measured): avg % of sets pruned per filter",
        float_digits=1,
    ))
    report()
    report(format_table(
        TABLE2_HEADERS, paper_rows,
        title="Table II (paper)",
        float_digits=1,
    ))

    by_name = {row[0]: row for row in rows}
    for name in DATASETS:
        iub_pct, em_early_pct, no_em_pct = by_name[name][1:]
        assert 0.0 <= iub_pct <= 100.0
        assert 0.0 <= em_early_pct <= 100.0
        assert 0.0 <= no_em_pct <= 100.0
    # Consistency of attribution on every query.
    for records in records_by_dataset.values():
        assert all(r.stats.consistency_ok() for r in records)
