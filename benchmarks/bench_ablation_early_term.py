"""Ablation — EM early termination (Lemma 8) on vs off.

With the label-sum bound active, a hopeless candidate's Hungarian run
aborts as soon as its certified upper bound drops under theta_lb; without
it every started matching runs to completion. Results are identical; the
bench measures the saved completed matchings and labeling work.
"""

import pytest

from benchmarks.conftest import DEFAULT_ALPHA, DEFAULT_K, QUERY_SEED
from repro.core import FilterConfig
from repro.datasets import QueryBenchmark
from repro.experiments import (
    format_table,
    koios_search_fn,
    mean,
    run_benchmark,
)

DATASET = "opendata"
NUM_QUERIES = 5


def test_ablation_em_early_termination(benchmark, stacks, report):
    stack = stacks[DATASET]
    bench = QueryBenchmark.uniform(
        stack.collection, NUM_QUERIES, seed=QUERY_SEED
    )
    # Disable No-EM in both arms so the ablation isolates Lemma 8.
    base = FilterConfig.koios().without(use_no_em=False)
    engine_on = stack.engine(alpha=DEFAULT_ALPHA, config=base)
    engine_off = stack.engine(
        alpha=DEFAULT_ALPHA,
        config=base.without(use_em_early_termination=False),
    )

    records_on = run_benchmark(
        koios_search_fn(engine_on), bench, DEFAULT_K,
        method="early-term-on", dataset_name=DATASET,
    )
    records_off = run_benchmark(
        koios_search_fn(engine_off), bench, DEFAULT_K,
        method="early-term-off", dataset_name=DATASET,
    )

    for on, off in zip(records_on, records_off):
        assert on.result_scores == pytest.approx(
            off.result_scores, abs=1e-6
        )

    query = stack.collection[bench.all_query_ids()[0]]
    benchmark(engine_on.search, query, DEFAULT_K)

    rows = []
    for name, records in (
        ("early-term-on", records_on),
        ("early-term-off", records_off),
    ):
        rows.append(
            [
                name,
                mean(r.seconds for r in records),
                mean(r.stats.em_full for r in records),
                mean(r.stats.em_early_terminated for r in records),
                mean(r.stats.em_label_updates for r in records),
            ]
        )
    report()
    report(format_table(
        ["config", "avg s", "full matchings", "early-terminated",
         "label updates"],
        rows,
        title="Ablation: EM early termination on/off",
    ))

    assert rows[0][3] > 0         # terminations happen with the filter on
    assert rows[1][3] == 0        # and never without it
    assert rows[0][2] < rows[1][2]  # fewer completed matchings
