"""Store cold start: snapshot load vs JSON re-index, and incremental
updates vs full rebuild.

The scenario is the ROADMAP's long-lived service redeploying on a >= 50k
set repository. The JSON path pays the full derivation pipeline on every
start — parse, re-tokenize, re-embed the vocabulary, re-build the
inverted index. The snapshot path deserializes the same state from the
binary format of :mod:`repro.store.snapshot`: token table, postings, and
the embedding matrix come back as buffer reads.

The second measurement is steady-state freshness: applying one insert
through the mutable overlay (delta postings + vector-store extend + pool
hot swap) vs rebuilding the engine from scratch, which is what the seed
repo had to do for any change.

Acceptance gates: snapshot cold start >= 3x faster than JSON-plus-
rebuild; incremental update faster than a full rebuild. Results are also
emitted as one JSON line (the machine-readable record the gate is
checked against).
"""

from __future__ import annotations

import json
import string
import time

import pytest

from repro.core.koios import KoiosSearchEngine
from repro.datasets.io import load_collection_json
from repro.embedding.hashing import HashingEmbeddingProvider
from repro.embedding.provider import VectorStore
from repro.index.vector_index import ExactCosineIndex
from repro.service import EnginePool
from repro.sim.cosine import CosineSimilarity
from repro.store import load_snapshot, save_snapshot
from repro.utils.rng import make_rng

NUM_SETS = 50_000
VOCAB_SIZE = 20_000
MIN_SIZE, MAX_SIZE = 3, 14
TOKEN_CHARS = 9
DIM = 32
ALPHA = 0.8
K = 10
SEED = 17
REQUIRED_COLDSTART_SPEEDUP = 3.0
UPDATE_ROUNDS = 5

SUBSTRATE = {
    "kind": "hashing-cosine",
    "dim": DIM,
    "n_min": 3,
    "n_max": 5,
    "salt": "hashing-embedding",
    "batch_size": 100,
}


def synthesize_corpus(rng):
    """>= 50k random sets over a diverse random-string vocabulary."""
    letters = list(string.ascii_lowercase)
    rows = rng.integers(0, len(letters), size=(VOCAB_SIZE, TOKEN_CHARS))
    vocabulary = [
        "".join(letters[c] for c in row) + f"_{i}"
        for i, row in enumerate(rows)
    ]
    sizes = rng.integers(MIN_SIZE, MAX_SIZE + 1, size=NUM_SETS)
    flat = rng.integers(0, VOCAB_SIZE, size=int(sizes.sum()))
    mapping = {}
    offset = 0
    for set_id, size in enumerate(sizes):
        members = {
            vocabulary[token_id]
            for token_id in flat[offset:offset + int(size)]
        }
        offset += int(size)
        mapping[f"set_{set_id:06d}"] = sorted(members)
    return mapping


@pytest.fixture(scope="module")
def corpus_paths(tmp_path_factory):
    """The same >= 50k-set corpus persisted both ways: JSON and snapshot."""
    root = tmp_path_factory.mktemp("coldstart")
    mapping = synthesize_corpus(make_rng(SEED))
    json_path = root / "corpus.json"
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(mapping, handle)

    collection = load_collection_json(json_path)
    provider = HashingEmbeddingProvider(dim=DIM)
    store = VectorStore(provider, collection.vocabulary)
    snap_path = root / "corpus.snap"
    save_snapshot(snap_path, collection, store=store, substrate=SUBSTRATE)
    return json_path, snap_path


def cold_start_from_json(json_path):
    collection = load_collection_json(json_path)
    provider = HashingEmbeddingProvider(dim=DIM)
    store = VectorStore(provider, collection.vocabulary)
    index = ExactCosineIndex(store, provider)
    sim = CosineSimilarity(provider)
    engine = KoiosSearchEngine(collection, index, sim, alpha=ALPHA)
    return collection, index, sim, engine


def cold_start_from_snapshot(snap_path):
    loaded = load_snapshot(snap_path)
    engine = KoiosSearchEngine(
        loaded.collection,
        loaded.token_index,
        loaded.sim,
        alpha=ALPHA,
        inverted_factory=loaded.inverted_factory(),
    )
    return loaded, engine


def test_snapshot_coldstart_vs_json_reindex(corpus_paths, report, benchmark):
    json_path, snap_path = corpus_paths

    started = time.perf_counter()
    collection, _, _, json_engine = cold_start_from_json(json_path)
    json_seconds = time.perf_counter() - started

    started = time.perf_counter()
    loaded, snap_engine = cold_start_from_snapshot(snap_path)
    snap_seconds = time.perf_counter() - started
    coldstart_speedup = json_seconds / snap_seconds

    # Both cold starts must serve identical results.
    rng = make_rng(SEED + 1)
    queries = [
        frozenset(collection[int(set_id)])
        for set_id in rng.integers(0, len(collection), size=3)
    ]
    for query in queries:
        a = json_engine.search(query, K)
        b = snap_engine.search(query, K)
        assert a.ids() == b.ids()
        assert a.scores() == b.scores()

    # Steady-state freshness: one insert through the overlay + hot swap
    # vs rebuilding the engine from scratch on the mutated collection.
    overlay = loaded.mutable()
    pool = EnginePool(
        overlay, loaded.token_index, loaded.sim, alpha=ALPHA
    )
    probe = queries[0]
    pool.search(probe, K)  # warm
    incremental_seconds = []
    for round_id in range(UPDATE_ROUNDS):
        tokens = sorted(probe)[:3] + [f"hot_token_{round_id}"]
        started = time.perf_counter()
        pool.insert(tokens, name=f"hot_{round_id}")
        pool.search(probe, K)
        incremental_seconds.append(time.perf_counter() - started)
    incremental_update = min(incremental_seconds)

    started = time.perf_counter()
    rebuilt = KoiosSearchEngine(
        overlay, loaded.token_index, loaded.sim, alpha=ALPHA
    )
    rebuilt.search(probe, K)
    full_rebuild = time.perf_counter() - started
    update_speedup = full_rebuild / incremental_update

    stats = collection.stats()
    results = {
        "benchmark": "store_coldstart",
        "num_sets": stats.num_sets,
        "num_unique_elements": stats.num_unique_elements,
        "json_cold_seconds": round(json_seconds, 3),
        "snapshot_cold_seconds": round(snap_seconds, 3),
        "coldstart_speedup": round(coldstart_speedup, 2),
        "incremental_update_seconds": round(incremental_update, 4),
        "full_rebuild_seconds": round(full_rebuild, 3),
        "update_speedup": round(update_speedup, 1),
    }

    report()
    report(
        f"store cold start — {stats.num_sets} sets, "
        f"{stats.num_unique_elements} tokens, dim={DIM}"
    )
    report(f"{'path':<30}{'seconds':>9}{'speedup':>9}")
    report(f"{'JSON load + rebuild':<30}{json_seconds:>9.2f}{1.0:>9.2f}")
    report(
        f"{'snapshot load':<30}{snap_seconds:>9.2f}"
        f"{coldstart_speedup:>9.2f}"
    )
    report(
        f"{'full rebuild (1 update)':<30}{full_rebuild:>9.2f}{1.0:>9.2f}"
    )
    report(
        f"{'incremental update':<30}{incremental_update:>9.4f}"
        f"{update_speedup:>9.2f}"
    )
    report(json.dumps(results))

    assert coldstart_speedup >= REQUIRED_COLDSTART_SPEEDUP, (
        f"snapshot cold start only {coldstart_speedup:.2f}x faster than "
        f"JSON re-index (needs >= {REQUIRED_COLDSTART_SPEEDUP}x)"
    )
    assert incremental_update < full_rebuild, results

    # Timed artifact: a snapshot cold start through the full load path.
    benchmark(lambda: cold_start_from_snapshot(snap_path))
