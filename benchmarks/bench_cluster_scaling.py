"""Cluster scaling: multi-process scatter-gather vs the threaded pool.

The GIL is the ceiling on the single-process serving stack: the KOIOS
filter/verify hot path is pure Python, so ``EnginePool`` with
``parallel_shards=True`` time-slices one core no matter how many shard
threads it runs. ``ClusterPool`` puts each partition in its own
process; per-query work divides across real cores while the merge (and
the exactness contract) stays identical.

Both systems run the *same shard layout* under one seed on the same
Zipf workload, and every cluster answer is verified bitwise against the
baseline inside :func:`~repro.cluster.bench.run_scaling_bench` — a
diverging result aborts the benchmark.

Acceptance gate: >= 2x queries/sec at 4 worker processes vs the
threaded single-process pool. True multi-core speedup physically
requires cores, so the gate is asserted when the machine has >= 4 CPUs
(and the run is not ``--smoke``); on smaller machines the benchmark
still runs, verifies exactness, and reports the measured curve.
"""

from __future__ import annotations

import json

from repro.cluster.bench import (
    format_report,
    run_scaling_bench,
    zipf_queries,
)
from repro.datasets import SMALL_PROFILES, TINY_PROFILES, generate_dataset

DATASET_SEED = 7
WORKLOAD_SEED = 13
K = 10
ALPHA = 0.8
REQUIRED_SPEEDUP = 2.0
GATE_WORKERS = 4
MIN_CORES_FOR_GATE = 4

SUBSTRATE = {
    "kind": "hashing-cosine",
    "dim": 32,
    "n_min": 3,
    "n_max": 5,
    "salt": "hashing-embedding",
    "batch_size": 100,
}

FULL = {
    "profile": SMALL_PROFILES["opendata"],
    "requests": 40,
    "distinct": 20,
    "worker_counts": (1, 2, GATE_WORKERS),
}
SMOKE = {
    "profile": TINY_PROFILES["opendata"],
    "requests": 8,
    "distinct": 6,
    "worker_counts": (2,),
}


def test_cluster_scaling_vs_threaded_pool(smoke, report, benchmark):
    params = SMOKE if smoke else FULL
    collection = generate_dataset(
        params["profile"], seed=DATASET_SEED
    ).collection
    queries = zipf_queries(
        collection,
        distinct=params["distinct"],
        requests=params["requests"],
        seed=WORKLOAD_SEED,
    )
    # run_scaling_bench raises ClusterError on any bitwise divergence,
    # so reaching the report means every answer was exact.
    results = run_scaling_bench(
        collection,
        SUBSTRATE,
        queries,
        k=K,
        alpha=ALPHA,
        worker_counts=params["worker_counts"],
    )

    report()
    for line in format_report(results):
        report(line)
    report(json.dumps(results))

    cores = results["cpu_count"]
    gated_row = next(
        (
            row
            for row in results["rows"]
            if row["workers"] == GATE_WORKERS
        ),
        None,
    )
    if not smoke and cores >= MIN_CORES_FOR_GATE and gated_row:
        assert gated_row["speedup"] >= REQUIRED_SPEEDUP, (
            f"cluster at {GATE_WORKERS} workers reached only "
            f"{gated_row['speedup']:.2f}x the threaded pool "
            f"(needs >= {REQUIRED_SPEEDUP}x on {cores} cores)"
        )
    else:
        report(
            f"# speedup gate skipped: smoke={smoke}, cores={cores} "
            f"(gate needs a full run on >= {MIN_CORES_FOR_GATE} cores)"
        )

    # Timed artifact: one scatter-gather through a warm 2-worker fleet.
    from repro.cluster import ClusterPool
    from repro.cluster.worker import substrate_from_descriptor

    token_index, sim = substrate_from_descriptor(
        SUBSTRATE, collection.vocabulary
    )
    with ClusterPool(
        collection,
        token_index,
        sim,
        alpha=ALPHA,
        workers=2,
        substrate=SUBSTRATE,
    ) as cluster:
        cluster.search(queries[0], K)  # warm
        benchmark(cluster.search, queries[0], K)
