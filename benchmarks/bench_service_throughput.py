"""Service throughput: queries/sec through the serving stack vs the
sequential one-shot engine.

The workload models what a long-lived deployment actually sees: a
Zipf-skewed stream of requests (popular queries recur — the "millions of
users" regime of the ROADMAP) rather than a benchmark of all-distinct
queries. The serving layer's wins come from exactly the three mechanisms
it exists for: the result cache absorbs repeats, in-flight dedup
collapses simultaneous identical queries, and micro-batching amortizes
token-stream drains. The sequential baseline pays full price for every
request, which is what the seed repo's one-`search()`-per-call usage
did.

Acceptance gate: >= 2x queries/sec at 4 workers vs the 1-worker
sequential path.
"""

from __future__ import annotations

import time

import pytest

from repro.datasets import TINY_PROFILES, generate_dataset
from repro.experiments import build_stack
from repro.service import (
    EnginePool,
    QueryScheduler,
    ResultCache,
    SearchRequest,
)
from repro.utils.rng import make_rng

DATASET_SEED = 7
WORKLOAD_SEED = 13
DISTINCT_QUERIES = 40
REQUESTS = 150
K = 10
ALPHA = 0.8
WAVE = 25                  # requests arriving per burst
WORKER_COUNTS = (1, 4, 8)
REQUIRED_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def stack():
    return build_stack(
        generate_dataset(TINY_PROFILES["opendata"], seed=DATASET_SEED)
    )


@pytest.fixture(scope="module")
def workload(stack):
    """A Zipf-skewed request stream over the collection's own sets."""
    collection = stack.collection
    rng = make_rng(WORKLOAD_SEED)
    pool_ids = rng.choice(
        len(collection), size=DISTINCT_QUERIES, replace=False
    )
    ranks = 1.0 / (1.0 + rng.permutation(DISTINCT_QUERIES))
    probabilities = ranks / ranks.sum()
    picks = rng.choice(pool_ids, size=REQUESTS, p=probabilities)
    return [frozenset(collection[int(set_id)]) for set_id in picks]


def _sequential_qps(stack, workload):
    engine = stack.engine(alpha=ALPHA)
    started = time.perf_counter()
    results = [engine.search(query, K) for query in workload]
    elapsed = time.perf_counter() - started
    return len(workload) / elapsed, elapsed, results


def _service_qps(stack, workload, *, workers: int):
    pool = EnginePool(
        stack.collection, stack.index, stack.sim, alpha=ALPHA, shards=1
    )
    requests = [
        SearchRequest(query=query, k=K, request_id=str(i))
        for i, query in enumerate(workload)
    ]
    with QueryScheduler(
        pool, cache=ResultCache(256), max_batch=8, workers=workers
    ) as scheduler:
        started = time.perf_counter()
        responses = []
        # Arrivals come in waves: repeats inside one wave collapse via
        # in-flight dedup, repeats across waves hit the result cache.
        for wave_start in range(0, len(requests), WAVE):
            responses.extend(
                scheduler.answer_many(requests[wave_start:wave_start + WAVE])
            )
        elapsed = time.perf_counter() - started
        snapshot = dict(scheduler.metrics.snapshot())
    return len(workload) / elapsed, elapsed, responses, snapshot


def test_service_throughput_vs_sequential(stack, workload, report, benchmark):
    sequential_qps, sequential_s, sequential_results = _sequential_qps(
        stack, workload
    )

    rows = []
    speedups = {}
    for workers in WORKER_COUNTS:
        qps, elapsed, responses, snapshot = _service_qps(
            stack, workload, workers=workers
        )
        # Serving must not change answers: scores are byte-identical to
        # the sequential engine on every request.
        for response, expected in zip(responses, sequential_results):
            assert [h.score for h in response.hits] == expected.scores()
        speedups[workers] = qps / sequential_qps
        rows.append(
            (workers, elapsed, qps, speedups[workers],
             snapshot["cache_hit_rate"], snapshot["deduplicated"],
             snapshot["mean_batch_occupancy"])
        )

    report()
    report(
        f"service throughput — {REQUESTS} Zipf requests over "
        f"{DISTINCT_QUERIES} distinct queries, k={K}, alpha={ALPHA}"
    )
    report(
        f"{'config':<22}{'seconds':>9}{'qps':>8}{'speedup':>9}"
        f"{'hit_rate':>10}{'dedup':>7}{'occupancy':>11}"
    )
    report(
        f"{'sequential engine':<22}{sequential_s:>9.2f}"
        f"{sequential_qps:>8.1f}{1.0:>9.2f}{'-':>10}{'-':>7}{'-':>11}"
    )
    for workers, elapsed, qps, speedup, hit_rate, dedup, occupancy in rows:
        report(
            f"{f'service x{workers} workers':<22}{elapsed:>9.2f}{qps:>8.1f}"
            f"{speedup:>9.2f}{hit_rate:>10.2f}{dedup:>7d}{occupancy:>11.2f}"
        )

    # The acceptance gate of the serving subsystem.
    assert speedups[4] >= REQUIRED_SPEEDUP, (
        f"service at 4 workers reached only {speedups[4]:.2f}x the "
        f"sequential baseline (needs >= {REQUIRED_SPEEDUP}x)"
    )

    # Timed artifact: one warm cache hit through the full serving path.
    pool = EnginePool(
        stack.collection, stack.index, stack.sim, alpha=ALPHA, shards=1
    )
    with QueryScheduler(pool, cache=ResultCache(16)) as scheduler:
        request = SearchRequest(query=workload[0], k=K)
        scheduler.answer(request)
        benchmark(
            scheduler.answer, SearchRequest(query=workload[0], k=K)
        )
