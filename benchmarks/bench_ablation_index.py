"""Ablation — exact vs approximate (IVF) token stream.

§VIII-E: "Koios returns an exact solution as long as the index returns
exact results." This bench violates that premise deliberately with an
IVF index at decreasing nprobe and measures the recall of the top-k
result against the exact run — quantifying the exactness/speed trade a
Faiss-IVF deployment would make.
"""

from benchmarks.conftest import DEFAULT_ALPHA, DEFAULT_K, QUERY_SEED
from repro.core import KoiosSearchEngine
from repro.datasets import QueryBenchmark
from repro.experiments import format_table
from repro.index import IVFCosineIndex

DATASET = "opendata"
NUM_QUERIES = 5
NPROBE_VALUES = [1, 2, 4, 8]
NLIST = 16


def test_ablation_exact_vs_ivf_index(benchmark, stacks, report):
    stack = stacks[DATASET]
    collection = stack.collection
    bench = QueryBenchmark.uniform(collection, NUM_QUERIES, seed=QUERY_SEED)
    exact_engine = stack.engine(alpha=DEFAULT_ALPHA)
    exact_results = {
        qid: set(exact_engine.search(collection[qid], DEFAULT_K).ids())
        for _, qid, _ in bench
    }

    rows = []
    for nprobe in NPROBE_VALUES:
        ivf = IVFCosineIndex(
            stack.store, stack.dataset.provider,
            nlist=NLIST, nprobe=nprobe,
        )
        engine = KoiosSearchEngine(
            collection, ivf, stack.sim, alpha=DEFAULT_ALPHA
        )
        recalls = []
        for _, qid, tokens in bench:
            got = set(engine.search(tokens, DEFAULT_K).ids())
            want = exact_results[qid]
            recalls.append(len(got & want) / max(1, len(want)))
        rows.append([f"ivf nprobe={nprobe}/{NLIST}",
                     sum(recalls) / len(recalls)])
    rows.append(["exact (flat)", 1.0])

    query = collection[bench.all_query_ids()[0]]
    benchmark(exact_engine.search, query, DEFAULT_K)

    report()
    report(format_table(
        ["index", "top-k recall vs exact"], rows,
        title="Ablation: exact vs IVF-approximate token stream",
    ))

    recall_by_probe = {row[0]: row[1] for row in rows}
    # Recall is monotone-ish in nprobe and full probing recovers ~exact.
    assert recall_by_probe[f"ivf nprobe={NPROBE_VALUES[-1]}/{NLIST}"] >= (
        recall_by_probe[f"ivf nprobe={NPROBE_VALUES[0]}/{NLIST}"] - 0.05
    )
    assert recall_by_probe[f"ivf nprobe={NPROBE_VALUES[-1]}/{NLIST}"] > 0.8
