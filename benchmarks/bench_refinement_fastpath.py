"""Columnar fast paths vs reference engine: refinement AND verification.

The scenario is the ROADMAP's single-core scale-up item: on a >= 50k
set repository with WDC-style posting skew and cluster-structured
similarities, both phases are hot — the refinement phase (stream
generation + Algorithm 1) was made 4.6x faster by the columnar
trajectory engine (:mod:`repro.core.fastpath`), which left the search
verification-bound: Algorithm 2's per-candidate ``cache_view`` /
``build_graph`` construction dominated the end-to-end time. The
columnar verification engine (:mod:`repro.core.fastpath_verify`) builds
every candidate matrix from one batched matmul per phase and must make
verification multiple times faster on one core while returning
bitwise-identical results.

The corpus is built, then the same queries run through two otherwise
identical engines (``FilterConfig.engine = "reference" | "columnar"``).
Measured per engine: refinement-phase seconds (drain + Algorithm 1, via
the phase timer), verification seconds (Algorithm 2 + resolution),
end-to-end wall clock, and refinement tuples/second.

Acceptance gates: bitwise-identical ids/scores/theta_k always; at full
scale columnar must be >= 3x faster in refinement, >= 3x faster in
verification, and >= 2.5x faster end-to-end; in ``--smoke`` mode (CI)
neither phase may be slower than the reference. Results are written to
``BENCH_refinement.json`` (see docs/performance.md for the schema) —
the repository commits the full-scale run as the performance
trajectory's current point.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.config import FilterConfig
from repro.core.koios import KoiosSearchEngine
from repro.core.stats import POSTPROCESSING, REFINEMENT
from repro.datasets.collection import SetCollection
from repro.embedding.provider import VectorStore
from repro.embedding.synthetic import SyntheticEmbeddingModel
from repro.index.vector_index import ExactCosineIndex
from repro.sim.cosine import CosineSimilarity
from repro.utils.rng import make_rng

FULL_SETS = 50_000
SMOKE_SETS = 2_000
CLUSTER_SIZE = 100
PLAIN_TOKENS = 2_000
MIN_SIZE, MAX_SIZE = 10, 30
ZIPF_EXPONENT = 0.8
DIM = 32
CLUSTER_SIMILARITY = 0.85
ALPHA = 0.75
K = 10
NUM_QUERIES = 3
SEED = 17
REQUIRED_FULL_SPEEDUP = 3.0
REQUIRED_FULL_VERIFICATION_SPEEDUP = 3.0
REQUIRED_FULL_END_TO_END_SPEEDUP = 2.5
OUTPUT = Path(os.environ.get("BENCH_REFINEMENT_OUT", "BENCH_refinement.json"))


def build_corpus(num_sets: int):
    """Cluster-structured vocabulary + zipf-skewed memberships.

    50 tokens-per-cluster similarity structure makes streams long (every
    query element releases its whole cluster above alpha) and the zipf
    weights make posting lists long — the regime where refinement, not
    verification, dominates (the paper's WDC pain point).
    """
    rng = make_rng(SEED)
    num_clusters = max(10, num_sets // 1000)
    clusters = {
        f"c{ci}": [f"c{ci}_m{m}" for m in range(CLUSTER_SIZE)]
        for ci in range(num_clusters)
    }
    vocabulary = [
        token for members in clusters.values() for token in members
    ] + [f"plain_{i}" for i in range(PLAIN_TOKENS)]
    weights = 1.0 / np.arange(1, len(vocabulary) + 1) ** ZIPF_EXPONENT
    weights /= weights.sum()
    shuffled = np.array(vocabulary)[rng.permutation(len(vocabulary))]
    sizes = rng.integers(MIN_SIZE, MAX_SIZE + 1, size=num_sets)
    sets = [
        [
            str(shuffled[pick])
            for pick in rng.choice(
                len(shuffled), size=int(size), replace=False, p=weights
            )
        ]
        for size in sizes
    ]
    collection = SetCollection(sets)
    provider = SyntheticEmbeddingModel(
        dim=DIM, clusters=clusters, cluster_similarity=CLUSTER_SIMILARITY
    )
    store = VectorStore(provider, collection.vocabulary)
    index = ExactCosineIndex(store, provider)
    return collection, index, CosineSimilarity(provider)


def run_engine(engine_name, collection, index, sim, queries, *, repeats=1):
    """Best-of-``repeats`` timings for one engine over all queries.

    A warm-up search runs first so one-time costs (columnar CSR
    interning, unit-vector caches) are excluded — the serving scenario
    is warm engines, and at smoke scale the repeat minimum keeps the CI
    gate from tripping on shared-runner timing noise.
    """
    engine = KoiosSearchEngine(
        collection,
        index,
        sim,
        alpha=ALPHA,
        config=FilterConfig.koios(engine=engine_name),
    )
    engine.search(queries[0], K)
    outcomes = []
    refinement = postprocessing = total = None
    tuples = 0
    for _ in range(repeats):
        outcomes = []
        round_refinement = round_postprocessing = 0.0
        tuples = 0
        started = time.perf_counter()
        for query in queries:
            result = engine.search(query, K)
            outcomes.append((result.ids(), result.scores(), result.theta_k))
            round_refinement += result.stats.timer.seconds(REFINEMENT)
            round_postprocessing += result.stats.timer.seconds(POSTPROCESSING)
            tuples += result.stats.stream_tuples
        round_total = time.perf_counter() - started
        # Per-metric best-of-N: each phase (and the wall clock) takes its
        # own minimum, so one noisy round on a shared runner cannot trip
        # a gate for a phase that ran clean in the other round.
        if refinement is None or round_refinement < refinement:
            refinement = round_refinement
        if postprocessing is None or round_postprocessing < postprocessing:
            postprocessing = round_postprocessing
        if total is None or round_total < total:
            total = round_total
    metrics = {
        "refinement_seconds": round(refinement, 4),
        "verification_seconds": round(postprocessing, 4),
        "total_seconds": round(total, 4),
        "stream_tuples": tuples,
        "tuples_per_second": (
            round(tuples / refinement) if refinement > 0 else None
        ),
    }
    return outcomes, metrics, (refinement, postprocessing, total)


def test_columnar_refinement_speedup(smoke, report):
    num_sets = SMOKE_SETS if smoke else FULL_SETS
    collection, index, sim = build_corpus(num_sets)
    rng = make_rng(SEED + 1)
    queries = [
        frozenset(collection[int(set_id)])
        for set_id in rng.integers(0, len(collection), size=NUM_QUERIES)
    ]

    repeats = 2 if smoke else 1
    ref_outcomes, ref_metrics, ref_times = run_engine(
        "reference", collection, index, sim, queries, repeats=repeats
    )
    col_outcomes, col_metrics, col_times = run_engine(
        "columnar", collection, index, sim, queries, repeats=repeats
    )

    identical = ref_outcomes == col_outcomes
    ref_refine, ref_verify, ref_total = ref_times
    col_refine, col_verify, col_total = col_times
    refinement_speedup = ref_refine / col_refine if col_refine > 0 else None
    verification_speedup = ref_verify / col_verify if col_verify > 0 else None
    end_to_end_speedup = ref_total / col_total if col_total > 0 else None

    stats = collection.stats()
    results = {
        "benchmark": "refinement_fastpath",
        "mode": "smoke" if smoke else "full",
        "num_sets": stats.num_sets,
        "vocab_size": stats.num_unique_elements,
        "avg_set_size": round(stats.avg_size, 2),
        "alpha": ALPHA,
        "k": K,
        "queries": len(queries),
        "engines": {
            "reference": ref_metrics,
            "columnar": col_metrics,
        },
        "refinement_speedup": (
            round(refinement_speedup, 2)
            if refinement_speedup is not None else None
        ),
        "verification_speedup": (
            round(verification_speedup, 2)
            if verification_speedup is not None else None
        ),
        "end_to_end_speedup": (
            round(end_to_end_speedup, 2)
            if end_to_end_speedup is not None else None
        ),
        "identical_results": identical,
    }
    OUTPUT.write_text(json.dumps(results, indent=1) + "\n", encoding="utf-8")

    report()
    report(
        f"refinement fast path — {stats.num_sets} sets, "
        f"{stats.num_unique_elements} tokens, alpha={ALPHA}, "
        f"{len(queries)} queries"
    )
    report(f"{'engine':<12}{'refine s':>10}{'verify s':>12}{'total s':>9}")
    for name, metrics in results["engines"].items():
        report(
            f"{name:<12}{metrics['refinement_seconds']:>10.2f}"
            f"{metrics['verification_seconds']:>12.2f}"
            f"{metrics['total_seconds']:>9.2f}"
        )
    report(
        f"refinement speedup {results['refinement_speedup']}x, "
        f"verification {results['verification_speedup']}x, "
        f"end-to-end {results['end_to_end_speedup']}x "
        f"-> {OUTPUT}"
    )
    report(json.dumps(results))

    assert identical, "columnar results diverged from the reference engine"
    assert refinement_speedup is not None
    assert verification_speedup is not None
    if smoke:
        assert refinement_speedup >= 1.0, (
            f"columnar refinement slower than reference "
            f"({refinement_speedup:.2f}x) at smoke scale"
        )
        assert verification_speedup >= 1.0, (
            f"columnar verification slower than reference "
            f"({verification_speedup:.2f}x) at smoke scale"
        )
    else:
        assert refinement_speedup >= REQUIRED_FULL_SPEEDUP, (
            f"columnar refinement only {refinement_speedup:.2f}x faster "
            f"(needs >= {REQUIRED_FULL_SPEEDUP}x)"
        )
        assert verification_speedup >= REQUIRED_FULL_VERIFICATION_SPEEDUP, (
            f"columnar verification only {verification_speedup:.2f}x faster "
            f"(needs >= {REQUIRED_FULL_VERIFICATION_SPEEDUP}x)"
        )
        assert end_to_end_speedup >= REQUIRED_FULL_END_TO_END_SPEEDUP, (
            f"columnar end-to-end only {end_to_end_speedup:.2f}x faster "
            f"(needs >= {REQUIRED_FULL_END_TO_END_SPEEDUP}x)"
        )
