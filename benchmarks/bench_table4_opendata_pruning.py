"""Table IV — OpenData: filter attribution per query-cardinality interval.

For every interval of the OpenData-like benchmark: mean candidate count,
sets pruned by the iUB-Filter, sets resolved without matching (No-EM),
early-terminated matchings, and completed matchings. Paper shape: the
candidate count grows with query cardinality while the *fraction*
surviving refinement shrinks — iUB pruning is strongest for large queries.
"""

from benchmarks.conftest import DEFAULT_ALPHA, DEFAULT_K
from repro.experiments import (
    TABLE45_HEADERS,
    format_table,
    koios_search_fn,
    run_benchmark,
    summarize,
    table45_rows,
)

#: Paper Table IV (mean counts per interval) for the side-by-side report.
PAPER_ROWS = [
    ["10-750", 1132, 345, 88, 0, 699],
    ["750-1000", 2557, 2422, 85, 2, 48],
    ["1000-1500", 2699, 2571, 83, 4, 41],
    ["1500-2500", 3440, 3328, 84, 2, 26],
    ["2500-5000", 3560, 3451, 82, 4, 23],
    [">=5000", 5706, 5502, 79, 5, 120],
]


def test_table4_opendata_pruning(
    benchmark, stacks, interval_benchmarks, report
):
    stack = stacks["opendata"]
    bench = interval_benchmarks["opendata"]
    engine = stack.engine(alpha=DEFAULT_ALPHA)
    records = run_benchmark(
        koios_search_fn(engine), bench, DEFAULT_K,
        method="koios", dataset_name="opendata",
    )
    rows = table45_rows(records)

    query = stack.collection[bench.groups[-1].query_ids[0]]
    benchmark(engine.search, query, DEFAULT_K)

    report()
    report(format_table(
        TABLE45_HEADERS, rows,
        title="Table IV (measured): OpenData sets pruned by filters",
        float_digits=1,
    ))
    report()
    report(format_table(
        TABLE45_HEADERS, PAPER_ROWS, title="Table IV (paper)",
    ))

    summaries = summarize(records)
    # Shape: candidates increase with query cardinality...
    assert summaries[-1].mean_candidates > summaries[0].mean_candidates
    # ...and the surviving fraction shrinks (iUB strongest on large queries).
    first_survive = summaries[0].postprocessed / max(
        1.0, summaries[0].mean_candidates
    )
    last_survive = summaries[-1].postprocessed / max(
        1.0, summaries[-1].mean_candidates
    )
    assert last_survive < first_survive
    # Paper: medium-to-large queries keep < 20% of candidates (<5% at
    # paper scale; the scaled corpus is a little denser).
    assert last_survive < 0.2
