"""Ablation — vanilla-overlap initialization of candidate bounds (§V).

Koios seeds every new candidate's partial matching with its exact-match
overlap |Q ∩ C|, which lifts theta_lb immediately and handles identical
out-of-vocabulary tokens. Without it, exact matches trickle in one
self-match tuple at a time and theta_lb converges later. Results are
identical; the pruning timeline differs.
"""

import pytest

from benchmarks.conftest import DEFAULT_ALPHA, DEFAULT_K, QUERY_SEED
from repro.core import FilterConfig
from repro.datasets import QueryBenchmark
from repro.experiments import (
    format_table,
    koios_search_fn,
    mean,
    run_benchmark,
)

DATASET = "wdc"
NUM_QUERIES = 5


def test_ablation_vanilla_initialization(benchmark, stacks, report):
    stack = stacks[DATASET]
    bench = QueryBenchmark.uniform(
        stack.collection, NUM_QUERIES, seed=QUERY_SEED
    )
    engine_on = stack.engine(alpha=DEFAULT_ALPHA)
    engine_off = stack.engine(
        alpha=DEFAULT_ALPHA,
        config=FilterConfig.koios().without(vanilla_initialization=False),
    )

    records_on = run_benchmark(
        koios_search_fn(engine_on), bench, DEFAULT_K,
        method="vanilla-init-on", dataset_name=DATASET,
    )
    records_off = run_benchmark(
        koios_search_fn(engine_off), bench, DEFAULT_K,
        method="vanilla-init-off", dataset_name=DATASET,
    )

    for on, off in zip(records_on, records_off):
        assert on.result_scores == pytest.approx(
            off.result_scores, abs=1e-6
        )

    query = stack.collection[bench.all_query_ids()[0]]
    benchmark(engine_on.search, query, DEFAULT_K)

    rows = []
    for name, records in (
        ("vanilla-init-on", records_on),
        ("vanilla-init-off", records_off),
    ):
        rows.append(
            [
                name,
                mean(r.seconds for r in records),
                mean(r.stats.refinement_pruned for r in records),
                mean(r.stats.bucket_moves for r in records),
                mean(r.stats.postprocessed for r in records),
            ]
        )
    report()
    report(format_table(
        ["config", "avg s", "pruned in refinement", "bucket moves",
         "reach postproc"],
        rows,
        title="Ablation: vanilla-overlap initialization on/off",
    ))

    # Without initialization the partial matchings are built edge by
    # edge, so the bucket structure churns more.
    assert rows[1][3] >= rows[0][3]
