"""Fig. 6 — WDC: the four panels of Fig. 5 on the WDC-like profile.

Additional paper shape specific to WDC: the share of time spent in
*refinement* is higher than OpenData's, because the heavy element
frequency skew creates long posting lists and many candidate updates.
"""

from benchmarks.conftest import (
    BASELINE_TIME_BUDGET,
    DEFAULT_ALPHA,
    DEFAULT_K,
)
from repro.baselines import ExhaustiveBaseline
from repro.experiments import (
    format_series,
    koios_search_fn,
    mean,
    response_time_panels,
    run_benchmark,
    successful,
)

DATASET = "wdc"


def test_fig6_wdc_panels(benchmark, stacks, interval_benchmarks, report):
    stack = stacks[DATASET]
    bench = interval_benchmarks[DATASET]
    koios_records = run_benchmark(
        koios_search_fn(stack.engine(alpha=DEFAULT_ALPHA)),
        bench, DEFAULT_K, method="koios", dataset_name=DATASET,
    )
    baseline = ExhaustiveBaseline(
        stack.collection, stack.index, stack.sim, alpha=DEFAULT_ALPHA
    )
    baseline_records = run_benchmark(
        koios_search_fn(baseline, time_budget=BASELINE_TIME_BUDGET),
        bench, DEFAULT_K, method="baseline", dataset_name=DATASET,
    )
    panels = response_time_panels(
        {"koios": koios_records, "baseline": baseline_records}
    )

    engine = stack.engine(alpha=DEFAULT_ALPHA)
    query = stack.collection[bench.groups[0].query_ids[0]]
    benchmark(engine.search, query, DEFAULT_K)

    report()
    report("Fig 6a: mean response time (s) per cardinality interval")
    for method, series in panels.response.items():
        report("  " + format_series(method, series))
    report("Fig 6a annotations: timeouts per interval")
    for method, series in panels.timeouts.items():
        report("  " + format_series(method, series, float_digits=0))
    report("Fig 6b/6c: Koios phase share per interval")
    report("  " + format_series("refinement", panels.refinement_share))
    report("  " + format_series("postprocessing", panels.postproc_share))
    report("Fig 6d: mean memory footprint (MB) per interval")
    for method, series in panels.memory.items():
        report("  " + format_series(method, series))

    koios_resp = dict(panels.response["koios"])
    baseline_resp = dict(panels.response["baseline"])
    koios_timeouts = dict(panels.timeouts["koios"])
    baseline_timeouts = dict(panels.timeouts["baseline"])
    for group in koios_resp:
        if group not in baseline_resp:
            continue
        if baseline_resp[group] == 0.0 and baseline_timeouts[group] > 0:
            # The baseline timed out on the whole interval (the paper's
            # "not enough data" cells) — Koios wins by finishing.
            assert koios_timeouts[group] <= baseline_timeouts[group]
            continue
        assert koios_resp[group] <= baseline_resp[group] * 1.05


def test_fig6_wdc_refinement_share_exceeds_opendata(
    benchmark, stacks, interval_benchmarks, report
):
    """§VIII-B: 'the share of work of WDC in the refinement is higher
    than OpenData, because of its sheer number of sets and the high
    frequency of elements.'"""
    shares = {}
    for name in ("opendata", "wdc"):
        stack = stacks[name]
        records = run_benchmark(
            koios_search_fn(stack.engine(alpha=DEFAULT_ALPHA)),
            interval_benchmarks[name],
            DEFAULT_K,
            method="koios",
            dataset_name=name,
        )
        done = successful(records)
        refinement = mean(r.refinement_seconds for r in done)
        total = refinement + mean(r.postproc_seconds for r in done)
        shares[name] = refinement / total if total else 0.0

    benchmark(lambda: None)
    report()
    report(
        f"refinement share of response time: "
        f"opendata={shares['opendata']:.2f} wdc={shares['wdc']:.2f}"
    )
    assert shares["wdc"] > shares["opendata"]
