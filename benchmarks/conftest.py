"""Shared fixtures for the benchmark harness.

Every bench file regenerates one table or figure of the paper on the
laptop-scale Table-I profiles (``SMALL_PROFILES``). Datasets, stacks, and
oracles are built once per session; ``report`` prints through pytest's
capture so the regenerated tables always appear in the terminal (and in
``bench_output.txt``).
"""

from __future__ import annotations

import pytest

from repro.datasets import (
    QueryBenchmark,
    SMALL_PROFILES,
    generate_dataset,
)
from repro.experiments import SearchStack, build_stack

#: Benchmark scale knobs — one place to trade fidelity for runtime.
DATASET_SEED = 7
QUERY_SEED = 3
UNIFORM_QUERIES = 6          # per dataset (Tables II/III)
INTERVALS = 5                # cardinality strata (Tables IV/V, Figs 5/6)
QUERIES_PER_INTERVAL = 3
BASELINE_TIME_BUDGET = 20.0  # seconds per baseline query before "timeout"
DEFAULT_K = 10
DEFAULT_ALPHA = 0.8


@pytest.fixture(scope="session")
def stacks() -> dict[str, SearchStack]:
    """One wired search stack per small Table-I profile."""
    return {
        name: build_stack(generate_dataset(profile, seed=DATASET_SEED))
        for name, profile in SMALL_PROFILES.items()
    }


@pytest.fixture(scope="session")
def uniform_benchmarks(stacks) -> dict[str, QueryBenchmark]:
    """DBLP/Twitter-style uniform query benchmarks, one per dataset."""
    return {
        name: QueryBenchmark.uniform(
            stack.collection, UNIFORM_QUERIES, seed=QUERY_SEED
        )
        for name, stack in stacks.items()
    }


#: Explicit cardinality strata for the size-skewed profiles — the
#: paper's OpenData/WDC interval scheme scaled to the small corpora
#: (their maxima are ~400-450). The top strata isolate the large
#: queries on which the paper's filters shine.
EXPLICIT_INTERVALS = {
    "opendata": [(3, 10), (10, 25), (25, 60), (60, 150), (150, None)],
    "wdc": [(3, 10), (10, 25), (25, 60), (60, 150), (150, None)],
}


@pytest.fixture(scope="session")
def interval_benchmarks(stacks) -> dict[str, QueryBenchmark]:
    """OpenData/WDC-style per-cardinality-interval benchmarks; datasets
    without explicit strata fall back to cardinality quantiles."""
    from repro.datasets import CardinalityInterval

    benchmarks = {}
    for name, stack in stacks.items():
        explicit = EXPLICIT_INTERVALS.get(name)
        if explicit:
            intervals = [CardinalityInterval(lo, hi) for lo, hi in explicit]
            benchmarks[name] = QueryBenchmark.by_intervals(
                stack.collection,
                intervals,
                QUERIES_PER_INTERVAL,
                seed=QUERY_SEED,
            )
        else:
            benchmarks[name] = QueryBenchmark.by_quantiles(
                stack.collection,
                INTERVALS,
                QUERIES_PER_INTERVAL,
                seed=QUERY_SEED,
            )
    return benchmarks


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run scale-sensitive benches at smoke size (CI keeps the "
        "code path alive without paying full-corpus runtimes)",
    )


@pytest.fixture(scope="session")
def smoke(request) -> bool:
    return request.config.getoption("--smoke")


@pytest.fixture()
def report(capsys):
    """Print through pytest's output capture (tables stay visible)."""

    def emit(text: str = "") -> None:
        with capsys.disabled():
            print(text)

    return emit
