"""Table III — average response time and memory, Koios vs Baseline.

The headline claim: Koios is at least several times faster than the
Baseline on every dataset, with a comparable memory footprint. Absolute
numbers differ from the paper (pure-Python simulator vs the authors' C++
on a 64-core box); the speedup column is the reproduced shape.
"""

from benchmarks.conftest import (
    BASELINE_TIME_BUDGET,
    DEFAULT_ALPHA,
    DEFAULT_K,
)
from repro.baselines import ExhaustiveBaseline
from repro.experiments import (
    TABLE3_HEADERS,
    TABLE3_PAPER,
    format_table,
    koios_search_fn,
    run_benchmark,
    table3_row,
)

DATASETS = ["dblp", "opendata", "twitter", "wdc"]


def test_table3_response_time_and_memory(
    benchmark, stacks, uniform_benchmarks, report
):
    rows = []
    speedups = {}
    for name in DATASETS:
        stack = stacks[name]
        bench = uniform_benchmarks[name]
        koios_records = run_benchmark(
            koios_search_fn(stack.engine(alpha=DEFAULT_ALPHA)),
            bench, DEFAULT_K, method="koios", dataset_name=name,
        )
        baseline = ExhaustiveBaseline(
            stack.collection, stack.index, stack.sim, alpha=DEFAULT_ALPHA
        )
        baseline_records = run_benchmark(
            koios_search_fn(baseline, time_budget=BASELINE_TIME_BUDGET),
            bench, DEFAULT_K, method="baseline", dataset_name=name,
        )
        row = table3_row(name, koios_records, baseline_records)
        rows.append(row)
        speedups[name] = row[-1]

    # Benchmark a representative Koios query (the timed artifact).
    stack = stacks["dblp"]
    engine = stack.engine(alpha=DEFAULT_ALPHA)
    query = stack.collection[uniform_benchmarks["dblp"].all_query_ids()[0]]
    benchmark(engine.search, query, DEFAULT_K)

    paper_rows = [
        [name, *TABLE3_PAPER[name], TABLE3_PAPER[name][4] / TABLE3_PAPER[name][2]]
        for name in DATASETS
    ]
    report()
    report(format_table(
        TABLE3_HEADERS, rows,
        title="Table III (measured): avg response time and memory",
    ))
    report()
    report(format_table(
        TABLE3_HEADERS, paper_rows,
        title="Table III (paper; speedup derived)",
    ))

    # Shape: Koios beats the baseline on every dataset.
    for name in DATASETS:
        assert speedups[name] > 1.0, (name, speedups[name])
    # Paper: "at least 5x speedup over the baseline across all datasets".
    assert max(speedups.values()) >= 5.0
