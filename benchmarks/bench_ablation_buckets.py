"""Ablation — bucketized iUB maintenance vs no iUB filtering.

DESIGN.md §5: the bucket structure exists so that a stream tuple only
touches the candidates that contain the token, while everyone else is
still pruned by a per-bucket threshold scan. This bench quantifies what
the filter buys: verification work and end-to-end time with the
iUB-Filter on vs off (results are identical either way).
"""

import pytest

from benchmarks.conftest import DEFAULT_ALPHA, DEFAULT_K, QUERY_SEED
from repro.core import FilterConfig
from repro.datasets import QueryBenchmark
from repro.experiments import (
    format_table,
    koios_search_fn,
    mean,
    run_benchmark,
)

DATASET = "opendata"
NUM_QUERIES = 5


def test_ablation_iub_buckets(benchmark, stacks, report):
    stack = stacks[DATASET]
    bench = QueryBenchmark.uniform(
        stack.collection, NUM_QUERIES, seed=QUERY_SEED
    )
    with_iub = stack.engine(alpha=DEFAULT_ALPHA)
    without_iub = stack.engine(
        alpha=DEFAULT_ALPHA,
        config=FilterConfig.koios().without(
            use_iub_buckets=False, use_first_sight_ub=False
        ),
    )

    records_on = run_benchmark(
        koios_search_fn(with_iub), bench, DEFAULT_K,
        method="iub-on", dataset_name=DATASET,
    )
    records_off = run_benchmark(
        koios_search_fn(without_iub), bench, DEFAULT_K,
        method="iub-off", dataset_name=DATASET,
    )

    # Identical answers.
    for on, off in zip(records_on, records_off):
        assert on.result_scores == pytest.approx(
            off.result_scores, abs=1e-6
        )

    query = stack.collection[bench.all_query_ids()[0]]
    benchmark(with_iub.search, query, DEFAULT_K)

    rows = []
    for name, records in (("iub-on", records_on), ("iub-off", records_off)):
        rows.append(
            [
                name,
                mean(r.seconds for r in records),
                mean(r.stats.refinement_pruned for r in records),
                mean(r.stats.postprocessed for r in records),
                mean(r.stats.em_full + r.stats.em_early_terminated
                     for r in records),
            ]
        )
    report()
    report(format_table(
        ["config", "avg s", "pruned in refinement", "reach postproc",
         "matchings started"],
        rows,
        title="Ablation: iUB bucket filter on/off",
    ))

    pruned_on = rows[0][2]
    pruned_off = rows[1][2]
    assert pruned_on > 0
    assert pruned_off == 0
    # Fewer sets reach post-processing with the filter on.
    assert rows[0][3] < rows[1][3]
